#!/usr/bin/env python3
"""Prostate plan with two parallel-opposed beams, solved with L-BFGS.

The prostate companion to the liver example, showing the second Table I
case end to end: lateral opposed beams through the femoral heads, bladder
and rectum sparing, and the projected L-BFGS solver.  Also demonstrates
running the optimization's forward dose products through a *simulated*
kernel (the problem accepts any kernel from the registry), accruing
modelled GPU time as the optimizer iterates.

Run:  python examples/prostate_plan_optimization.py
"""

import numpy as np

from repro import (
    Beam,
    CompositeObjective,
    HalfDoubleKernel,
    MaxDoseObjective,
    PlanOptimizationProblem,
    UniformDoseObjective,
    build_prostate_phantom,
    compute_dvh,
)
from repro.dose import build_deposition_matrix
from repro.dose.dvh import homogeneity_index
from repro.opt import MeanDoseObjective, solve_lbfgs
from repro.plans.cases import PROSTATE_GANTRY_DEG
from repro.util.units import format_time

PRESCRIPTION_GY = 74.0


def main() -> None:
    phantom = build_prostate_phantom(shape=(20, 18, 10), spacing=(12.0, 12.0, 16.0))
    iso = phantom.grid.voxel_centers()[phantom.target.voxel_indices].mean(axis=0)

    print("building the two lateral beams...")
    beams = []
    for name, gantry in PROSTATE_GANTRY_DEG.items():
        beam = Beam(name, gantry_angle_deg=gantry, isocenter_mm=tuple(iso))
        dep = build_deposition_matrix(
            phantom, beam, spot_spacing_mm=13.0, layer_spacing_mm=16.0
        )
        beams.append(dep)
        print(f"  {name}: {dep.n_spots} spots, {dep.matrix.nnz} non-zeros")

    objective = CompositeObjective(
        [
            UniformDoseObjective(phantom.target, PRESCRIPTION_GY, weight=120.0),
            MaxDoseObjective(phantom.structures["rectum"], 45.0, weight=25.0),
            MaxDoseObjective(phantom.structures["bladder"], 50.0, weight=10.0),
            MeanDoseObjective(phantom.structures["femoral_head_r"], 15.0, weight=4.0),
            MeanDoseObjective(phantom.structures["femoral_head_l"], 15.0, weight=4.0),
            MaxDoseObjective(phantom.structures["body"], 80.0, weight=1.0),
        ]
    )

    # Route the forward dose products through the simulated half/double
    # kernel: the optimizer is agnostic, and the accounting records the
    # modelled GPU time every iteration would cost on a real A100.
    problem = PlanOptimizationProblem(beams, objective, kernel=HalfDoubleKernel())

    w0 = np.ones(problem.n_weights)
    d0 = problem.dose(w0)
    w0 *= PRESCRIPTION_GY / max(d0[phantom.target.voxel_indices].mean(), 1e-9)

    print("\noptimizing spot weights (projected L-BFGS)...")
    result = solve_lbfgs(problem, w0=w0, max_iterations=50, tolerance=1e-4)
    print(f"  converged={result.converged} after {result.iterations} iterations, "
          f"objective {result.objective:.4g}")

    dose = problem.dose(result.weights)
    print("\nplan quality:")
    print(f"  target homogeneity index: {homogeneity_index(dose, phantom.target):.3f}"
          " (lower = more uniform)")
    for name in ("target", "rectum", "bladder", "femoral_head_r", "femoral_head_l"):
        dvh = compute_dvh(dose, phantom.structures[name])
        print(f"  {name:15s} mean {dvh.mean_dose:5.1f} Gy  max {dvh.max_dose:5.1f} Gy"
              f"  V50 {100 * dvh.v_at(50.0):5.1f}%")

    acc = problem.accounting
    print(f"\nforward dose calculations: {acc.n_forward} "
          f"(+ {acc.n_transpose} gradient transposes)")
    print(f"modelled A100 SpMV time accrued: "
          f"{format_time(acc.modelled_spmv_seconds)}")


if __name__ == "__main__":
    main()
