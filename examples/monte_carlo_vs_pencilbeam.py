#!/usr/bin/env python3
"""Monte Carlo vs analytic pencil beam — where the matrix's noise comes from.

The paper's deposition matrices come from RayStation's Monte Carlo engine
and carry statistical noise that "can lead to an artificial increase of
the non-zero values" (Section II-A).  This script compares our two dose
engines on a single spot:

1. the analytic pencil-beam kernel (smooth, compact support);
2. the stochastic Monte Carlo transport at increasing particle counts —
   converging to the analytic answer while scattering a tail of tiny
   deposits into extra voxels (the nnz inflation).

Run:  python examples/monte_carlo_vs_pencilbeam.py
"""

import numpy as np

from repro import Beam, build_liver_phantom
from repro.dose import (
    MCConfig,
    bragg_curve,
    compute_beam_geometry,
    mc_spot_dose,
    spot_dose,
)


def main() -> None:
    phantom = build_liver_phantom(shape=(24, 24, 16), spacing=(11.0, 11.0, 15.0))
    iso = phantom.grid.voxel_centers()[phantom.target.voxel_indices].mean(axis=0)
    beam = Beam("demo", gantry_angle_deg=0.0, isocenter_mm=tuple(iso))
    geometry = compute_beam_geometry(phantom, beam)

    # One mid-target energy layer.
    target_wed = geometry.wed_mm[phantom.target.voxel_indices]
    from repro.dose import energy_from_range_mm
    energy = float(energy_from_range_mm(float(np.median(target_wed))))
    curve = bragg_curve(energy)
    print(f"spot energy {energy:.1f} MeV, range {curve.range_mm:.0f} mm water, "
          f"Bragg peak at {curve.peak_depth_mm:.0f} mm")

    analytic = spot_dose(geometry, curve, 0.0, 0.0, relative_cutoff=1e-4)
    a_dense = np.zeros(phantom.grid.n_voxels)
    a_dense[analytic.voxel_indices] = analytic.dose
    print(f"\nanalytic pencil beam: {analytic.voxel_indices.size} voxels receive dose")

    print(f"\n{'particles':>10s} {'voxels':>7s} {'extra nnz':>9s} "
          f"{'rel L2 error':>12s}")
    for n in (200, 1000, 5000, 20000):
        mc = mc_spot_dose(
            phantom, geometry, curve, 0.0, 0.0,
            config=MCConfig(n_particles=n), rng=7,
        )
        m_dense = np.zeros(phantom.grid.n_voxels)
        m_dense[mc.voxel_indices] = mc.dose
        # Compare on the analytic support; normalize scales (the two
        # engines use different per-particle normalizations).
        scale = a_dense[analytic.voxel_indices].sum() / max(
            m_dense[analytic.voxel_indices].sum(), 1e-300
        )
        err = np.linalg.norm(m_dense * scale - a_dense) / np.linalg.norm(a_dense)
        extra = np.setdiff1d(mc.voxel_indices, analytic.voxel_indices).size
        print(f"{n:>10d} {mc.voxel_indices.size:>7d} {extra:>9d} {err:>12.3f}")

    print("\nThe statistical part of the MC error falls like 1/sqrt(N); the "
          "remaining plateau is the methodological gap between point "
          "sampling (analytic kernel at voxel centers) and path "
          "integration (MC deposits along 2 mm steps) on these coarse "
          "demo voxels.  Meanwhile the MC column keeps growing a halo of "
          "extra non-zeros — the matrix-inflating noise the paper "
          "attributes to its Monte Carlo dose engine.")


if __name__ == "__main__":
    main()
