#!/usr/bin/env python3
"""Quickstart: build a dose deposition matrix and run the paper's kernel.

Walks the paper's whole pipeline in one page:

1. build a liver phantom and a treatment beam;
2. let the dose engine assemble the deposition matrix (voxels x spots);
3. store it in half precision and compute the dose with the contributed
   warp-per-row mixed-precision kernel on a simulated A100;
4. compare against the GPU port of the clinical baseline and the CPU
   implementation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CPURayStationKernel,
    GPUBaselineKernel,
    HalfDoubleKernel,
    build_case_matrix,
    csr_to_rscf,
)
from repro.util.units import format_bandwidth, format_time

CASE = "Liver 1"


def main() -> None:
    # The 'tiny' preset keeps this demo under a few seconds; 'bench' is
    # what the benchmark suite uses, and both preserve the paper's matrix
    # structure (Table I ratios).
    dep = build_case_matrix(CASE, preset="tiny")
    matrix = dep.matrix
    print(f"{CASE}: {matrix.n_rows} voxels x {matrix.n_cols} spots, "
          f"{matrix.nnz} non-zeros ({100 * matrix.density:.2f}% dense)")

    # Spot weights are what the optimizer adjusts; any non-negative vector
    # works as SpMV input.
    weights = np.full(matrix.n_cols, 1.0)

    # The paper's contribution: matrix stored in half, vectors in double,
    # one warp per row, cooperative-group tree reduction.
    ours = HalfDoubleKernel().run(dep.as_half(), weights)
    print(f"\nhalf/double kernel on {ours.device.name}:")
    print(f"  modelled time      {format_time(ours.timing.time_s)}")
    print(f"  modelled rate      {ours.gflops:.1f} GFLOP/s")
    print(f"  DRAM bandwidth     {format_bandwidth(ours.dram_bandwidth)} "
          f"({100 * ours.timing.bandwidth_fraction(ours.device):.0f}% of peak)")
    print(f"  op. intensity      {ours.operational_intensity:.3f} flop/byte")

    # The clinical algorithm, ported to GPU with atomics (the paper's
    # baseline — fast, but not bitwise reproducible).
    rscf = csr_to_rscf(matrix)
    baseline = GPUBaselineKernel().run(rscf, weights, rng=0)
    print(f"\nGPU baseline: {format_time(baseline.timing.time_s)} "
          f"-> our kernel is {baseline.timing.time_s / ours.timing.time_s:.1f}x faster")

    # The clinical CPU implementation.
    cpu = CPURayStationKernel().run(rscf, weights)
    print(f"CPU (i9-7940X): {format_time(cpu.timing.time_s)} "
          f"-> our kernel is {cpu.timing.time_s / ours.timing.time_s:.0f}x faster")

    # Numerics: all three agree to half-precision storage accuracy.
    ref = matrix.matvec(weights)
    for name, res in [("ours", ours), ("baseline", baseline), ("cpu", cpu)]:
        err = np.linalg.norm(res.y - ref) / np.linalg.norm(ref)
        print(f"  {name:9s} relative error vs reference: {err:.2e}")


if __name__ == "__main__":
    main()
