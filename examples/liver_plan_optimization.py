#!/usr/bin/env python3
"""Four-beam liver plan optimization — the workload that motivates the paper.

Builds the liver case's four beams, formulates the clinical objective
(uniform prescription dose in the target, sparing liver, lung and spinal
cord) and solves the spot-weight problem with projected gradient descent.
Every optimizer iteration evaluates the dose ``d = sum_b A_b w_b`` — the
SpMV the paper ports to GPU — so at the end the script reports how much
dose-calculation time the whole optimization would cost on the clinical
CPU implementation vs the paper's A100 kernel.

Run:  python examples/liver_plan_optimization.py
"""

import numpy as np

from repro import (
    Beam,
    CompositeObjective,
    HalfDoubleKernel,
    MaxDoseObjective,
    PlanOptimizationProblem,
    UniformDoseObjective,
    build_liver_phantom,
    compute_dvh,
)
from repro.dose import build_deposition_matrix
from repro.kernels import CPURayStationKernel
from repro.opt import solve_projected_gradient
from repro.plans.cases import LIVER_GANTRY_DEG
from repro.sparse import csr_to_rscf
from repro.util.units import format_time

PRESCRIPTION_GY = 60.0


def main() -> None:
    phantom = build_liver_phantom(shape=(24, 24, 16), spacing=(11.0, 11.0, 15.0))
    iso = phantom.grid.voxel_centers()[phantom.target.voxel_indices].mean(axis=0)

    print("building four beams' dose deposition matrices...")
    beams = []
    for name, gantry in LIVER_GANTRY_DEG.items():
        beam = Beam(name, gantry_angle_deg=gantry, isocenter_mm=tuple(iso))
        dep = build_deposition_matrix(
            phantom, beam, spot_spacing_mm=11.0, layer_spacing_mm=14.0
        )
        beams.append(dep)
        print(f"  {name}: {dep.n_spots} spots, {dep.matrix.nnz} non-zeros")

    objective = CompositeObjective(
        [
            UniformDoseObjective(phantom.target, PRESCRIPTION_GY, weight=100.0),
            MaxDoseObjective(phantom.structures["liver"], 30.0, weight=8.0),
            MaxDoseObjective(phantom.structures["spinal_cord"], 20.0, weight=20.0),
            MaxDoseObjective(phantom.structures["lung"], 15.0, weight=6.0),
            MaxDoseObjective(phantom.structures["body"], 66.0, weight=1.0),
        ]
    )
    problem = PlanOptimizationProblem(beams, objective)

    # Scale the initial weights so the mean target dose starts near the
    # prescription — standard warm start.
    w0 = np.ones(problem.n_weights)
    d0 = problem.dose(w0)
    mean_target = d0[phantom.target.voxel_indices].mean()
    w0 *= PRESCRIPTION_GY / max(mean_target, 1e-9)

    print("\noptimizing spot weights (projected gradient, BB steps)...")
    result = solve_projected_gradient(
        problem, w0=w0, max_iterations=60, tolerance=1e-4
    )
    print(f"  converged={result.converged} after {result.iterations} iterations, "
          f"objective {result.objective:.4g}")

    dose = problem.dose(result.weights)
    print("\nplan quality (DVH statistics):")
    for name, roi in phantom.structures.items():
        if name == "body":
            continue
        dvh = compute_dvh(dose, roi)
        print(f"  {name:12s} mean {dvh.mean_dose:5.1f} Gy   "
              f"max {dvh.max_dose:5.1f} Gy   D95 {dvh.d_at(0.95):5.1f} Gy")

    # The paper's punchline at the application level: what does all that
    # dose calculation cost on CPU vs GPU?
    n_spmv = problem.accounting.n_forward
    rscf = [csr_to_rscf(b.matrix) for b in beams]
    w_parts = problem.split_weights(result.weights)
    cpu_t = sum(
        CPURayStationKernel().run(r, np.asarray(w, float)).timing.time_s
        for r, w in zip(rscf, w_parts)
    )
    gpu_t = sum(
        HalfDoubleKernel().run(b.as_half(), np.asarray(w, float)).timing.time_s
        for b, w in zip(beams, w_parts)
    )
    print(f"\ndose calculations during optimization: {n_spmv}")
    print(f"modelled SpMV time per optimization:")
    print(f"  RayStation CPU : {format_time(cpu_t * n_spmv / len(beams))}")
    print(f"  A100 half/dbl  : {format_time(gpu_t * n_spmv / len(beams))} "
          f"({cpu_t / gpu_t:.0f}x faster)")


if __name__ == "__main__":
    main()
