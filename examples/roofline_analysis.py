#!/usr/bin/env python3
"""Roofline analysis of the SpMV kernels (the paper's Figure 3 + Section V).

Reproduces three analyses from the paper:

1. the analytic traffic model ``6*nnz + 12*nr + 8*nc`` and its 0.332
   flop/byte operational-intensity bound for liver beam 1;
2. the measured-vs-analytic OI comparison (they nearly coincide because
   the nnz term dominates and the input vector fits in L2);
3. the column-index observation: 4-byte indices are a large share of
   traffic, so 16-bit indices (the paper's future work, implemented here
   as the ``half_double_u16`` kernel) buy a higher OI.

Run:  python examples/roofline_analysis.py
"""

from repro import A100, Roofline, spmv_traffic_model
from repro.bench import run_spmv_experiment
from repro.plans.cases import PAPER_TABLE1
from repro.precision import HALF_DOUBLE, HALF_DOUBLE_SHORT_INDEX, SINGLE
from repro.roofline import column_index_traffic_share
from repro.roofline.model import RooflinePoint, ascii_roofline


def main() -> None:
    paper = PAPER_TABLE1["Liver 1"]

    print("=== analytic traffic model (liver beam 1, paper scale) ===")
    for label, prec in [
        ("half/double          ", HALF_DOUBLE),
        ("single               ", SINGLE),
        ("half/double + uint16 ", HALF_DOUBLE_SHORT_INDEX),
    ]:
        t = spmv_traffic_model(paper.nnz, paper.rows, paper.cols, prec)
        share = column_index_traffic_share(
            paper.nnz, paper.rows, paper.cols, prec
        )
        print(f"  {label} traffic {t.total_bytes / 1e9:6.2f} GB   "
              f"OI {t.operational_intensity:.3f} flop/byte   "
              f"col-index share {100 * share:.0f}%")
    print("  (the paper quotes the 0.332 bound for half/double)")

    print("\n=== measured placement on the A100 roofline ===")
    roof = Roofline.for_device(A100)
    points = []
    for kernel in ("half_double", "half_double_u16", "single",
                   "cusparse", "ginkgo", "scalar_csr"):
        row = run_spmv_experiment(kernel, "Liver 1", device=A100)
        points.append(
            RooflinePoint(kernel, row.operational_intensity, row.gflops)
        )
        print(f"  {kernel:16s} OI {row.operational_intensity:.3f}  "
              f"{row.gflops:6.1f} GFLOP/s  "
              f"BW {100 * row.bandwidth_fraction:3.0f}% of peak  "
              f"limited by {row.limiter}")
    print()
    print(ascii_roofline(roof, points))

    print("\nAll kernels sit far left of the ridge point "
          f"({roof.ridge_point:.2f} flop/byte): dose-deposition SpMV is "
          "memory bound, so the mixed-precision OI gain translates "
          "directly into speed — the paper's core argument.")


if __name__ == "__main__":
    main()
