#!/usr/bin/env python3
"""Bitwise reproducibility — RayStation's hard requirement (Section II-D).

The paper's kernel must return *bit-identical* dose vectors on every run;
atomics-based reductions cannot guarantee this because their commit order
varies.  This script runs both kernels repeatedly and compares results at
the bit level:

* the half/double vector-CSR kernel (fixed warp-tree reduction order):
  bitwise identical across runs;
* the GPU baseline (atomicAdd with per-run commit order): results differ
  in the low-order bits run to run — fine numerically, unacceptable for a
  clinical optimizer that must be auditable.

Run:  python examples/reproducibility_check.py
"""

import numpy as np

from repro import GPUBaselineKernel, HalfDoubleKernel, build_case_matrix, csr_to_rscf
from repro.precision import ReproducibilityChecker

RUNS = 7


def main() -> None:
    dep = build_case_matrix("Prostate 1", preset="tiny")
    half = dep.as_half()
    rscf = csr_to_rscf(dep.matrix)
    rng = np.random.default_rng(42)
    weights = 0.5 + rng.random(dep.n_spots)

    checker = ReproducibilityChecker(n_runs=RUNS)

    ours = HalfDoubleKernel()
    report = checker.check(lambda run: ours.run(half, weights).y)
    print(f"half/double kernel over {RUNS} runs: {report}")
    assert report.bitwise_identical, "contributed kernel must be reproducible"

    baseline = GPUBaselineKernel()
    # Each run gets a fresh RNG — modelling real atomics, whose commit
    # order the hardware scheduler decides anew every launch.
    report = checker.check(
        lambda run: baseline.run(rscf, weights, rng=1000 + run).y
    )
    print(f"GPU baseline   over {RUNS} runs: {report}")
    if report.bitwise_identical:
        print("  (unexpectedly identical — tiny matrix; try a larger preset)")
    else:
        print("  -> different low-order bits each run: numerically harmless, "
              "clinically disqualifying.")

    # The spread is small in absolute terms (non-associativity, not error):
    print(f"  max absolute spread between runs: {report.max_abs_spread:.3e} Gy")


if __name__ == "__main__":
    main()
