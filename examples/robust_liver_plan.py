#!/usr/bin/env python3
"""Robust optimization under setup errors — why dose calculation speed matters.

Section II-A of the paper motivates GPU-fast SpMV with "robust
optimization, where uncertainties in treatment delivery ... can be taken
into account".  This script shows exactly that trade:

1. optimize a nominal liver plan (1 scenario);
2. optimize a minimax-robust plan over 7 setup-error scenarios
   (nominal +- 6 axis shifts) — 7x the dose calculations per iteration;
3. evaluate BOTH plans under every scenario: the nominal plan's target
   coverage collapses under shifts, the robust plan holds.

Run:  python examples/robust_liver_plan.py
"""

import numpy as np

from repro import (
    Beam,
    CompositeObjective,
    MaxDoseObjective,
    UniformDoseObjective,
    build_liver_phantom,
    compute_dvh,
)
from repro.opt import solve_projected_gradient
from repro.opt.robust import (
    RobustPlanProblem,
    build_scenario_matrices,
    setup_error_scenarios,
)
from repro.plans.cases import LIVER_GANTRY_DEG

PRESCRIPTION_GY = 60.0
SHIFT_MM = 12.0


def main() -> None:
    phantom = build_liver_phantom(shape=(22, 22, 14), spacing=(12.0, 12.0, 17.0))
    iso = phantom.grid.voxel_centers()[phantom.target.voxel_indices].mean(axis=0)
    beams = [
        Beam(name, gantry_angle_deg=g, isocenter_mm=tuple(iso))
        for name, g in LIVER_GANTRY_DEG.items()
    ]
    scenarios = setup_error_scenarios(SHIFT_MM)
    print(f"building {len(scenarios)} scenarios x {len(beams)} beams "
          f"of deposition matrices...")
    scenario_beams = build_scenario_matrices(phantom, beams, scenarios)

    objective = CompositeObjective(
        [
            UniformDoseObjective(phantom.target, PRESCRIPTION_GY, weight=100.0),
            MaxDoseObjective(phantom.structures["spinal_cord"], 20.0, weight=20.0),
            MaxDoseObjective(phantom.structures["body"], 70.0, weight=1.0),
        ]
    )

    # Nominal problem: only the nominal scenario participates.
    nominal_problem = RobustPlanProblem(
        {"nominal": scenario_beams["nominal"]},
        [s for s in scenarios if s.name == "nominal"],
        objective,
        aggregation="expected",
    )
    robust_problem = RobustPlanProblem(
        scenario_beams, scenarios, objective, aggregation="worst_case"
    )

    w0 = np.ones(nominal_problem.n_weights)
    d0 = nominal_problem.dose(w0)
    w0 *= PRESCRIPTION_GY / max(d0[phantom.target.voxel_indices].mean(), 1e-9)

    print("optimizing nominal plan...")
    nominal = solve_projected_gradient(nominal_problem, w0=w0, max_iterations=50)
    print("optimizing robust plan (7 scenarios per iteration)...")
    robust = solve_projected_gradient(robust_problem, w0=w0, max_iterations=50)

    print(f"\ndose calculations: nominal plan "
          f"{nominal_problem.accounting.n_forward}, robust plan "
          f"{robust_problem.accounting.n_forward} "
          f"(~{robust_problem.accounting.n_forward / max(nominal_problem.accounting.n_forward, 1):.0f}x)")

    print(f"\ntarget D95 (Gy) under each scenario   [prescription "
          f"{PRESCRIPTION_GY:.0f} Gy, shifts {SHIFT_MM:.0f} mm]:")
    print(f"  {'scenario':10s} {'nominal plan':>13s} {'robust plan':>12s}")
    worst = {"nominal-plan": np.inf, "robust-plan": np.inf}
    for s in scenarios:
        row = []
        for label, weights in (("nominal-plan", nominal.weights),
                               ("robust-plan", robust.weights)):
            dose = robust_problem.scenario_dose(s.name, weights)
            d95 = compute_dvh(dose, phantom.target).d_at(0.95)
            worst[label] = min(worst[label], d95)
            row.append(d95)
        print(f"  {s.name:10s} {row[0]:13.1f} {row[1]:12.1f}")
    print(f"\nworst-case target D95: nominal plan {worst['nominal-plan']:.1f} Gy,"
          f" robust plan {worst['robust-plan']:.1f} Gy")
    if worst["robust-plan"] > worst["nominal-plan"]:
        print("-> the robust plan protects coverage under setup errors, at "
              "the price of many more dose calculations per iteration — "
              "the workload the paper's GPU kernel accelerates.")


if __name__ == "__main__":
    main()
