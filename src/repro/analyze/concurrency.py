"""Static concurrency-contract analysis (rules RL501–RL506).

The serving stack's headline guarantees — bitwise-deterministic served
doses, deterministic artifact ordering under concurrent enrichment —
rest on lock discipline that, before this pass, nothing checked.  This
lint parses every module in the concurrency scope (the functional dirs
plus ``obs``, ``bench`` and ``analyze``), extracts the declared locks
and the attributes each one guards, and enforces:

* **RL501** — every lock attribute must carry a
  ``# analyze: lock-guards[attr, ...]`` declaration on its assignment
  line naming the attributes it guards (empty brackets for
  pure-exclusion locks).  Conditions built *from* a declared lock are
  aliases and need no declaration of their own;
* **RL502** — a public method that reads or writes a guarded attribute
  without holding the guarding lock races every locked writer;
* **RL503** — lock acquisitions inside already-locked regions feed an
  inter-module lock-order graph; a cycle in that graph is a potential
  deadlock (the classic AB/BA inversion);
* **RL504** — blocking calls (queue ``get``, ``join``, ``sleep``, lock
  acquisition, kernel execution/compilation) made while holding a lock
  serialize unrelated threads behind the slow operation.
  ``Condition.wait`` on the *held* lock is exempt — wait releases it;
* **RL505** — ``threading.Thread`` targets that capture mutable state
  (lambdas, closures mutating free variables, bound methods of classes
  with no declared lock) race their creator unless ownership is
  documented;
* **RL506** — re-acquiring a held non-reentrant lock self-deadlocks.

Locks are recognised when created via ``threading.Lock``/``RLock``/
``Condition`` or the sanctioned :func:`repro.obs.lockwitness.
guarded_lock` factory — including ``dataclasses.field(default_factory=
threading.Lock)`` declarations.

**Scope and honesty.** The pass is lexical: it resolves lock
acquisitions through ``self``, through ``self.<attr>`` whose class is
statically known (constructor calls, parameter/attribute annotations),
and through own-method calls one level deep.  Dynamically dispatched
acquisitions it cannot resolve are *not* guessed at — that is what the
runtime witness (:mod:`repro.obs.lockwitness`) is for; the two are one
contract checked twice.  All rules honour inline
``# analyze: allow[RULE]`` suppressions on the flagged line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple,
)

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import Rule, RuleRegistry
from repro.analyze.source_lint import (
    FUNCTIONAL_DIRS, _dotted_path, _ImportMap, _line_allows,
)

RL501 = Rule(
    "RL501",
    "undeclared-lock",
    Severity.WARNING,
    "A lock attribute has no '# analyze: lock-guards[...]' declaration; "
    "the analyzer cannot check what it protects.",
    "Annotate the lock assignment line with "
    "'# analyze: lock-guards[attr, ...]' naming the attributes the lock "
    "guards (empty brackets for pure-exclusion locks).",
)
RL502 = Rule(
    "RL502",
    "unguarded-guarded-attribute",
    Severity.ERROR,
    "A public method reads or writes a guarded attribute without "
    "holding the lock declared to guard it; this races every locked "
    "writer.",
    "Wrap the access in 'with self.<lock>:', or suppress with "
    "'# analyze: allow[RL502]' plus a justification when the access is "
    "deliberately unsynchronized (e.g. a single atomic store).",
)
RL503 = Rule(
    "RL503",
    "lock-order-cycle",
    Severity.ERROR,
    "Lock acquisitions form a cycle in the inter-module lock-order "
    "graph; two threads interleaving these orders can deadlock.",
    "Acquire locks in one global order (DESIGN.md lock hierarchy: "
    "scheduler -> queue -> cache -> metrics -> artifact sink), or "
    "restructure so the inner acquisition happens after releasing the "
    "outer lock.",
)
RL504 = Rule(
    "RL504",
    "blocking-call-under-lock",
    Severity.WARNING,
    "A blocking call (queue get, join, sleep, lock acquisition, kernel "
    "execution) runs while holding a lock; every thread needing that "
    "lock stalls behind it.",
    "Move the blocking call outside the locked region (copy state "
    "under the lock, block after releasing), or suppress with "
    "'# analyze: allow[RL504]' plus a justification when blocking "
    "under the lock is the design (e.g. single-flight compilation).",
)
RL505 = Rule(
    "RL505",
    "thread-captures-mutable-state",
    Severity.WARNING,
    "A threading.Thread target captures mutable state not owned by a "
    "documented thread-safe class; writes race the creating thread.",
    "Give the state a declared lock (lock-guards annotation), pass "
    "immutable arguments instead, or suppress with "
    "'# analyze: allow[RL505]' plus a justification documenting the "
    "ownership argument.",
)
RL506 = Rule(
    "RL506",
    "self-deadlock",
    Severity.ERROR,
    "A held non-reentrant lock is re-acquired on the same thread; this "
    "deadlocks immediately.",
    "Split the method so the locked region calls an unlocked helper "
    "(the _locked-suffix pattern), or make the lock an RLock if "
    "re-entry is genuinely required.",
)

#: package-relative directories in the concurrency scope: the
#: functional path plus the observability/bench/analyze layers whose
#: locks the functional path takes while holding its own.
CONCURRENCY_DIRS: Tuple[str, ...] = FUNCTIONAL_DIRS + (
    "obs", "bench", "analyze",
)

#: the lock-guards declaration, on the lock-assignment line.
_LOCK_GUARDS_RE = re.compile(
    r"#\s*analyze:\s*lock-guards\[([A-Za-z0-9_,\s]*)\]"
)

#: dotted paths that construct a lock.
_LOCK_FACTORY_PATHS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})
_REENTRANT_FACTORIES = frozenset({"threading.RLock"})

#: attribute-call names that block (RL504).
_BLOCKING_ATTR_CALLS = frozenset({"acquire", "join", "sleep"})

#: call names that execute or compile kernels (RL504): holding a lock
#: across a modeled device execution serializes the whole service.
_KERNEL_EXEC_CALLS = frozenset({
    "run", "run_multi_spmv", "run_batch", "execute_plan",
    "execute_plan_multi", "prepare_plan", "compile_plan",
    "get_or_compile", "matvec", "evaluate",
})

#: dotted call paths that block (RL504).
_BLOCKING_DOTTED_CALLS = frozenset({"time.sleep"})

#: method names that mutate their receiver (RL505 capture check).
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "add", "update", "insert",
    "setdefault", "remove", "clear", "popleft",
})

#: dunders that run before the object is shared between threads.
_LIFECYCLE_DUNDERS = frozenset({
    "__init__", "__post_init__", "__new__", "__del__",
    "__init_subclass__", "__set_name__",
})


# --------------------------------------------------------------------- #
# pass 1: per-class facts
# --------------------------------------------------------------------- #


@dataclass
class LockDecl:
    """One declared lock attribute."""

    attr: str
    lineno: int
    guards: Tuple[str, ...] = ()
    annotated: bool = False
    #: for Conditions built from another declared lock: that lock.
    alias_of: Optional[str] = None
    reentrant: bool = False


@dataclass
class ClassInfo:
    """What pass 1 learned about one class."""

    name: str
    lineno: int
    location: str
    lines: List[str] = field(default_factory=list)
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    #: self-attribute -> class name, where statically resolvable.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: method name -> canonical own-lock attrs it directly acquires.
    method_acquires: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    node: Optional[ast.ClassDef] = None

    def canonical(self, attr: str) -> Optional[str]:
        """Resolve Condition aliases to the canonical lock attribute."""
        seen = set()
        while attr in self.locks and attr not in seen:
            seen.add(attr)
            alias = self.locks[attr].alias_of
            if alias is None:
                return attr
            attr = alias
        return attr if attr in self.locks else None

    def guard_map(self) -> Dict[str, FrozenSet[str]]:
        """Guarded attribute -> canonical locks declared to guard it."""
        out: Dict[str, set] = {}
        for attr, decl in self.locks.items():
            canon = self.canonical(attr)
            if canon is None:
                continue
            for guarded in decl.guards:
                out.setdefault(guarded, set()).add(canon)
        return {k: frozenset(v) for k, v in out.items()}

    @property
    def has_declared_lock(self) -> bool:
        """True when the class documents thread-safety via any
        annotated lock declaration (RL505's ownership test)."""
        return any(d.annotated for d in self.locks.values())


def _type_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of an annotation or call target."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[")[0]
        return text.split(".")[-1].strip() or None
    if isinstance(node, ast.Subscript):
        base = _type_name(node.value)
        if base in {"Optional", "Final", "ClassVar"}:
            return _type_name(node.slice)
    return None


def _walk_skipping_defs(node: ast.AST) -> Iterable[ast.AST]:
    """ast.walk, but do not descend into nested function bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


def _lock_factory(
    value: ast.expr, imports: Dict[str, str]
) -> Optional[str]:
    """The factory dotted path when ``value`` constructs a lock."""
    if not isinstance(value, ast.Call):
        return None
    path = _dotted_path(value.func, imports)
    if path is None:
        return None
    if path in _LOCK_FACTORY_PATHS or path.endswith(".guarded_lock") \
            or path == "guarded_lock":
        return path
    return None


def _parse_guards(
    lines: List[str], lineno: int
) -> Tuple[bool, Tuple[str, ...]]:
    """(annotated, guarded attrs) from the declaration's source line."""
    if not (1 <= lineno <= len(lines)):
        return False, ()
    match = _LOCK_GUARDS_RE.search(lines[lineno - 1])
    if match is None:
        return False, ()
    attrs = tuple(
        a.strip() for a in match.group(1).split(",") if a.strip()
    )
    return True, attrs


def _self_attr(expr: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _collect_class(
    node: ast.ClassDef,
    imports: Dict[str, str],
    location: str,
    lines: List[str],
) -> ClassInfo:
    info = ClassInfo(
        name=node.name, lineno=node.lineno, location=location,
        lines=lines, node=node,
    )
    # --- class-body dataclass fields: locks and attribute types ------- #
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        attr = stmt.target.id
        factory = None
        if isinstance(stmt.value, ast.Call):
            func_name = _type_name(stmt.value.func)
            if func_name == "field":
                for kw in stmt.value.keywords:
                    if kw.arg == "default_factory":
                        path = _dotted_path(kw.value, imports)
                        if path in _LOCK_FACTORY_PATHS:
                            factory = path
        if factory is not None:
            annotated, guards = _parse_guards(lines, stmt.lineno)
            info.locks[attr] = LockDecl(
                attr=attr, lineno=stmt.lineno, guards=guards,
                annotated=annotated,
                reentrant=factory in _REENTRANT_FACTORIES,
            )
        else:
            tname = _type_name(stmt.annotation)
            if tname and tname[:1].isupper():
                info.attr_types.setdefault(attr, tname)
    # --- method bodies: lock assignments and attribute types ---------- #
    methods = [
        s for s in node.body
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for method in methods:
        param_types: Dict[str, Optional[str]] = {
            arg.arg: _type_name(arg.annotation)
            for arg in method.args.args
        }
        for sub in _walk_skipping_defs(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                target, value = sub.target, sub.value
            if target is None or value is None:
                continue
            attr = _self_attr(target)
            if attr is None:
                continue
            factory = _lock_factory(value, imports)
            if factory is not None:
                alias_of = None
                if factory == "threading.Condition" and isinstance(
                    value, ast.Call
                ) and value.args:
                    alias_of = _self_attr(value.args[0])
                annotated, guards = _parse_guards(lines, sub.lineno)
                info.locks.setdefault(attr, LockDecl(
                    attr=attr, lineno=sub.lineno, guards=guards,
                    annotated=annotated, alias_of=alias_of,
                    reentrant=factory in _REENTRANT_FACTORIES,
                ))
                continue
            tname: Optional[str] = None
            if isinstance(value, ast.Call):
                tname = _type_name(value.func)
            elif isinstance(value, ast.Name):
                tname = param_types.get(value.id)
            elif isinstance(sub, ast.AnnAssign):
                tname = _type_name(sub.annotation)
            if tname and tname[:1].isupper():
                info.attr_types.setdefault(attr, tname)
    # --- direct own-lock acquisitions per method ---------------------- #
    for method in methods:
        acquired: set = set()
        for sub in _walk_skipping_defs(method):
            if isinstance(sub, ast.With):
                for item in sub.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None:
                        canon = info.canonical(attr)
                        if canon is not None:
                            acquired.add(canon)
        info.method_acquires[method.name] = frozenset(acquired)
    return info


# --------------------------------------------------------------------- #
# pass 2: per-method discipline checks + lock-order graph
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Held:
    """One entry on the lexical held-locks stack."""

    node_id: str
    #: canonical own-lock attribute when this is ``self``'s lock.
    own_attr: Optional[str]
    reentrant: bool


@dataclass
class _EdgeSite:
    """Where an ordered pair of lock acquisitions was first seen."""

    location: str
    lineno: int
    lines: List[str]


class _LockGraph:
    """Name-keyed inter-module lock-order graph."""

    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str], _EdgeSite] = {}
        self.adjacency: Dict[str, set] = {}

    def add_edge(
        self, src: str, dst: str, location: str, lineno: int,
        lines: List[str],
    ) -> None:
        key = (src, dst)
        if key not in self.edges:
            self.edges[key] = _EdgeSite(location, lineno, lines)
        self.adjacency.setdefault(src, set()).add(dst)

    def find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """A path ``src -> ... -> dst``, or None."""
        if src == dst:
            return [src]
        seen = {src}
        frontier: List[Tuple[str, List[str]]] = [(src, [src])]
        while frontier:
            node, path = frontier.pop()
            for nxt in sorted(self.adjacency.get(node, ())):
                if nxt == dst:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, path + [nxt]))
        return None


def _is_public_method(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return name not in _LIFECYCLE_DUNDERS
    return not name.startswith("_")


def _resolve_lock_operand(
    expr: ast.expr, info: ClassInfo, classes: Dict[str, ClassInfo]
) -> Optional[_Held]:
    """A ``with``-operand (or acquire receiver) as a held-lock entry.

    Resolves ``self.<lock>`` and ``self.<attr>.<lock>`` where the
    attribute's class is statically known.
    """
    attr = _self_attr(expr)
    if attr is not None:
        canon = info.canonical(attr)
        if canon is not None:
            decl = info.locks[canon]
            return _Held(f"{info.name}.{canon}", canon, decl.reentrant)
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Attribute)
        and isinstance(expr.value.value, ast.Name)
        and expr.value.value.id == "self"
    ):
        tname = info.attr_types.get(expr.value.attr)
        target = classes.get(tname) if tname else None
        if target is not None:
            canon = target.canonical(expr.attr)
            if canon is not None:
                decl = target.locks[canon]
                return _Held(
                    f"{target.name}.{canon}", None, decl.reentrant
                )
    return None


def _call_acquisitions(
    call: ast.Call, info: ClassInfo, classes: Dict[str, ClassInfo]
) -> Tuple[Optional[ClassInfo], FrozenSet[str]]:
    """(owning class, canonical locks) a method call acquires.

    Resolves ``self.m()`` through ``info`` and ``self.<attr>.m()``
    through the attribute's statically known class; one level deep.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None, frozenset()
    receiver = func.value
    if isinstance(receiver, ast.Name) and receiver.id == "self":
        acquired = info.method_acquires.get(func.attr)
        if acquired:
            return info, acquired
        return None, frozenset()
    if (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
    ):
        tname = info.attr_types.get(receiver.attr)
        target = classes.get(tname) if tname else None
        if target is not None:
            acquired = target.method_acquires.get(func.attr)
            if acquired:
                return target, acquired
    return None, frozenset()


def _blocking_call_reason(
    call: ast.Call,
    imports: Dict[str, str],
    info: ClassInfo,
    own_held: FrozenSet[str],
) -> Optional[str]:
    """Why this call blocks, or None (RL504)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
        if name == "wait":
            attr = _self_attr(func.value)
            if attr is not None and info.canonical(attr) in own_held:
                return None  # Condition.wait on the held lock releases it
            return "wait() blocks until another thread signals"
        if name in _BLOCKING_ATTR_CALLS:
            return f"{name}() blocks the calling thread"
        if name == "get" and not call.args and not call.keywords:
            return "zero-argument get() is a blocking queue read"
        if name in _KERNEL_EXEC_CALLS:
            return f"{name}() executes/compiles a kernel"
        path = _dotted_path(func, imports)
        if path in _BLOCKING_DOTTED_CALLS:
            return f"{path}() blocks the calling thread"
        return None
    if isinstance(func, ast.Name):
        resolved = imports.get(func.id, func.id)
        if resolved in _BLOCKING_DOTTED_CALLS:
            return f"{resolved}() blocks the calling thread"
        if func.id in _KERNEL_EXEC_CALLS:
            return f"{func.id}() executes/compiles a kernel"
    return None


class _MethodLinter:
    """Walks one method body with the lexical held-locks stack."""

    def __init__(
        self,
        info: ClassInfo,
        method: ast.FunctionDef,
        classes: Dict[str, ClassInfo],
        imports: Dict[str, str],
        graph: _LockGraph,
        emit,  # Callable[[Rule, int, str], None]
    ) -> None:
        self.info = info
        self.method = method
        self.classes = classes
        self.imports = imports
        self.graph = graph
        self.emit = emit
        self.check_guards = _is_public_method(method.name)
        self.guard_map = info.guard_map()

    def run(self) -> None:
        for stmt in self.method.body:
            self._walk(stmt, ())

    def _walk(self, node: ast.AST, held: Tuple[_Held, ...]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return  # closures run later; their lock context is unknowable
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._walk_with(node, held)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, held)
        elif isinstance(node, ast.Attribute):
            self._check_attribute(node, held)
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    def _walk_with(self, node: ast.AST, held: Tuple[_Held, ...]) -> None:
        new_held = held
        for item in node.items:  # type: ignore[attr-defined]
            entry = _resolve_lock_operand(
                item.context_expr, self.info, self.classes
            )
            if entry is None:
                # not a lock acquisition; still lint the expression.
                self._walk(item.context_expr, new_held)
                continue
            self._record_acquisition(entry, new_held, node.lineno)
            new_held = new_held + (entry,)
        for stmt in node.body:  # type: ignore[attr-defined]
            self._walk(stmt, new_held)

    def _record_acquisition(
        self, entry: _Held, held: Tuple[_Held, ...], lineno: int
    ) -> None:
        own_held = frozenset(
            h.own_attr for h in held if h.own_attr is not None
        )
        if (
            entry.own_attr is not None
            and entry.own_attr in own_held
            and not entry.reentrant
        ):
            self.emit(
                RL506, lineno,
                f"{self.info.name}.{self.method.name} re-acquires held "
                f"non-reentrant lock self.{entry.own_attr}",
            )
            return
        for h in held:
            if h.node_id == entry.node_id and entry.own_attr is not None:
                continue
            self.graph.add_edge(
                h.node_id, entry.node_id, self.info.location, lineno,
                self.info.lines,
            )

    def _check_call(
        self, node: ast.Call, held: Tuple[_Held, ...]
    ) -> None:
        own_held = frozenset(
            h.own_attr for h in held if h.own_attr is not None
        )
        owner, acquired = _call_acquisitions(
            node, self.info, self.classes
        )
        if owner is not None:
            for lock_attr in sorted(acquired):
                if (
                    owner is self.info
                    and lock_attr in own_held
                    and not owner.locks[lock_attr].reentrant
                ):
                    self.emit(
                        RL506, node.lineno,
                        f"{self.info.name}.{self.method.name} calls "
                        f"{ast.unparse(node.func)}() which re-acquires "
                        f"held non-reentrant lock self.{lock_attr}",
                    )
                    continue
                for h in held:
                    self.graph.add_edge(
                        h.node_id, f"{owner.name}.{lock_attr}",
                        self.info.location, node.lineno, self.info.lines,
                    )
        if held:
            reason = _blocking_call_reason(
                node, self.imports, self.info, own_held
            )
            if reason is not None:
                held_names = ", ".join(h.node_id for h in held)
                self.emit(
                    RL504, node.lineno,
                    f"blocking call {ast.unparse(node.func)}(...) while "
                    f"holding {held_names}: {reason}",
                )

    def _check_attribute(
        self, node: ast.Attribute, held: Tuple[_Held, ...]
    ) -> None:
        if not self.check_guards or not self.guard_map:
            return
        attr = _self_attr(node)
        if attr is None or attr not in self.guard_map:
            return
        own_held = frozenset(
            h.own_attr for h in held if h.own_attr is not None
        )
        guards = self.guard_map[attr]
        if guards & own_held:
            return
        locks = ", ".join(f"self.{g}" for g in sorted(guards))
        action = "writes" if isinstance(
            node.ctx, (ast.Store, ast.Del)
        ) else "reads"
        self.emit(
            RL502, node.lineno,
            f"public method {self.info.name}.{self.method.name} "
            f"{action} guarded attribute self.{attr} without holding "
            f"{locks}",
        )


# --------------------------------------------------------------------- #
# RL505: thread targets capturing mutable state
# --------------------------------------------------------------------- #


def _root_name(expr: ast.AST) -> Optional[str]:
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _closure_mutates_free_state(closure: ast.FunctionDef) -> Optional[str]:
    """The first free variable the closure mutates, or None."""
    local = {arg.arg for arg in closure.args.args}
    nonlocal_names: set = set()
    for sub in _walk_skipping_defs(closure):
        if isinstance(sub, ast.Nonlocal):
            nonlocal_names.update(sub.names)
        elif isinstance(sub, ast.Assign):
            for t in sub.targets:
                if isinstance(t, ast.Name):
                    local.add(t.id)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(sub.target, ast.Name):
                local.add(sub.target.id)
        elif isinstance(sub, ast.For) and isinstance(sub.target, ast.Name):
            local.add(sub.target.id)
        elif isinstance(sub, ast.withitem) and isinstance(
            sub.optional_vars, ast.Name
        ):
            local.add(sub.optional_vars.id)
    local -= nonlocal_names
    for sub in _walk_skipping_defs(closure):
        targets: List[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, ast.AugAssign):
            targets = [sub.target]
        for t in targets:
            if isinstance(t, (ast.Subscript, ast.Attribute)):
                root = _root_name(t)
                if root and root != "self" and root not in local:
                    return root
            elif isinstance(t, ast.Name) and t.id in nonlocal_names:
                return t.id
        if isinstance(sub, ast.Call) and isinstance(
            sub.func, ast.Attribute
        ) and sub.func.attr in _MUTATING_METHODS:
            root = _root_name(sub.func.value)
            if root and root != "self" and root not in local:
                return root
    return None


def _method_stores_self_state(
    info: ClassInfo, method_name: str, depth: int = 1
) -> Optional[str]:
    """A self attribute the method (or a direct self-call) stores."""
    if info.node is None:
        return None
    method = next(
        (
            s for s in info.node.body
            if isinstance(s, ast.FunctionDef) and s.name == method_name
        ),
        None,
    )
    if method is None:
        return None
    callees: List[str] = []
    for sub in _walk_skipping_defs(method):
        targets: List[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        for t in targets:
            attr = _self_attr(t)
            if attr is not None:
                return attr
            if isinstance(t, ast.Subscript):
                attr = _self_attr(t.value)
                if attr is not None:
                    return attr
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == "self"
        ):
            callees.append(sub.func.attr)
    if depth > 0:
        for callee in callees:
            stored = _method_stores_self_state(info, callee, depth - 1)
            if stored is not None:
                return stored
    return None


def _lint_thread_targets(
    tree: ast.Module,
    imports: Dict[str, str],
    classes: Dict[str, ClassInfo],
    emit,  # Callable[[Rule, int, str], None]
) -> None:
    def scan(
        node: ast.AST,
        func_stack: Tuple[ast.FunctionDef, ...],
        class_name: Optional[str],
    ) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                scan(child, func_stack, node.name)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                scan(child, func_stack + (node,), class_name)
            return
        if isinstance(node, ast.Call):
            path = _dotted_path(node.func, imports)
            if path == "threading.Thread":
                _check_target(node, func_stack, class_name)
        for child in ast.iter_child_nodes(node):
            scan(child, func_stack, class_name)

    def _check_target(
        call: ast.Call,
        func_stack: Tuple[ast.FunctionDef, ...],
        class_name: Optional[str],
    ) -> None:
        target = next(
            (kw.value for kw in call.keywords if kw.arg == "target"),
            None,
        )
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            emit(
                RL505, call.lineno,
                "Thread target is a lambda; captured state has no "
                "documented owner",
            )
            return
        if isinstance(target, ast.Name):
            for enclosing in reversed(func_stack):
                closure = next(
                    (
                        s for s in enclosing.body
                        if isinstance(s, ast.FunctionDef)
                        and s.name == target.id
                    ),
                    None,
                )
                if closure is not None:
                    mutated = _closure_mutates_free_state(closure)
                    if mutated is not None:
                        emit(
                            RL505, call.lineno,
                            f"Thread target {target.id}() mutates "
                            f"captured variable '{mutated}' with no "
                            "declared lock",
                        )
                    return
            return  # module-level function: no captured state
        attr = _self_attr(target)
        if attr is not None and class_name is not None:
            info = classes.get(class_name)
            if info is None or info.has_declared_lock:
                return  # documented thread-safe class owns its state
            stored = _method_stores_self_state(info, attr)
            if stored is not None:
                emit(
                    RL505, call.lineno,
                    f"Thread target self.{attr} stores "
                    f"self.{stored} but {class_name} declares no lock "
                    "(no lock-guards annotation)",
                )

    scan(tree, (), None)


# --------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------- #


@dataclass
class _Module:
    source: str
    rel_path: str
    location: str
    tree: ast.Module
    lines: List[str]
    imports: Dict[str, str]


def lint_concurrency_sources(
    named_sources: Sequence[Tuple[str, str, str]],
) -> List[Finding]:
    """Lint ``(source, rel_path, location)`` triples as one program.

    All modules share one class registry and one lock-order graph, so
    inversions *between* modules (the interesting deadlocks) are caught.
    """
    findings: List[Finding] = []

    def emitter(location: str, lines: List[str]):
        def emit(rule: Rule, lineno: int, message: str) -> None:
            if not _line_allows(lines, lineno, rule.rule_id):
                findings.append(
                    rule.finding(location, message, line=lineno)
                )
        return emit

    modules: List[_Module] = []
    for source, rel_path, location in named_sources:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:  # pragma: no cover - repo parses
            findings.append(
                RL501.finding(
                    location, f"cannot parse module: {exc}",
                    line=exc.lineno,
                    remediation="Fix the syntax error.",
                )
            )
            continue
        imports = _ImportMap()
        imports.visit(tree)
        modules.append(_Module(
            source=source, rel_path=rel_path, location=location,
            tree=tree, lines=source.splitlines(),
            imports=imports.names,
        ))

    # pass 1: class facts across every module.
    classes: Dict[str, ClassInfo] = {}
    module_classes: Dict[int, List[ClassInfo]] = {}
    for idx, mod in enumerate(modules):
        infos = [
            _collect_class(node, mod.imports, mod.location, mod.lines)
            for node in mod.tree.body
            if isinstance(node, ast.ClassDef)
        ]
        module_classes[idx] = infos
        for info in infos:
            classes[info.name] = info

    # pass 2: per-class discipline + the shared lock-order graph.
    graph = _LockGraph()
    for idx, mod in enumerate(modules):
        emit = emitter(mod.location, mod.lines)
        for info in module_classes[idx]:
            for attr, decl in sorted(info.locks.items()):
                if not decl.annotated and decl.alias_of is None:
                    emit(
                        RL501, decl.lineno,
                        f"lock {info.name}.{attr} has no "
                        "'# analyze: lock-guards[...]' declaration",
                    )
            if info.node is None:
                continue
            for stmt in info.node.body:
                if isinstance(stmt, ast.FunctionDef):
                    _MethodLinter(
                        info, stmt, classes, mod.imports, graph, emit
                    ).run()
        _lint_thread_targets(mod.tree, mod.imports, classes, emit)

    # RL503: cycles in the assembled graph.
    reported: set = set()
    for (src, dst), site in sorted(graph.edges.items()):
        path = graph.find_path(dst, src)
        if path is None:
            continue
        cycle = [src] + path
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        back_site = graph.edges.get((path[0], path[1])) if len(
            path
        ) > 1 else site
        emit = emitter(site.location, site.lines)
        where = (
            f"{back_site.location}:{back_site.lineno}"
            if back_site is not None else "<unknown>"
        )
        emit(
            RL503, site.lineno,
            f"lock-order cycle {' -> '.join(cycle)} (reverse edge "
            f"recorded at {where}); concurrent threads interleaving "
            "these orders can deadlock",
        )
    return findings


def _in_scope(rel_path: str) -> bool:
    parts = Path(rel_path).parts
    return len(parts) >= 2 and parts[0] in CONCURRENCY_DIRS


def lint_concurrency_source(
    source: str, rel_path: str, location: Optional[str] = None
) -> List[Finding]:
    """Single-module convenience wrapper (unit tests)."""
    return lint_concurrency_sources(
        [(source, rel_path, location or rel_path)]
    )


def lint_package(
    package_root: Path, extra_paths: Sequence[Path] = ()
) -> List[Finding]:
    """Lint the concurrency scope under ``package_root``.

    ``extra_paths`` (files or directories) join the same program —
    the CLI's ``analyze --include`` hook for out-of-tree fixtures.
    """
    named: List[Tuple[str, str, str]] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if not _in_scope(rel):
            continue
        named.append(
            (path.read_text(encoding="utf-8"), rel, f"src/repro/{rel}")
        )
    for extra in extra_paths:
        extra = Path(extra)
        files = sorted(extra.rglob("*.py")) if extra.is_dir() else [extra]
        for file in files:
            named.append(
                (file.read_text(encoding="utf-8"), file.name, str(file))
            )
    return lint_concurrency_sources(named)


def _check_concurrency(context: object) -> List[Finding]:
    root = Path(getattr(context, "package_root"))
    extra = tuple(getattr(context, "extra_lint_paths", ()) or ())
    return lint_package(root, extra)


#: rule ids this checker may emit (shared with tests).
CONCURRENCY_RULES: FrozenSet[str] = frozenset(
    {"RL501", "RL502", "RL503", "RL504", "RL505", "RL506"}
)


def register(registry: RuleRegistry) -> None:
    """Register the concurrency rules and checker."""
    for rule in (RL501, RL502, RL503, RL504, RL505, RL506):
        registry.add_rule(rule)
    registry.add_checker(
        "concurrency", CONCURRENCY_RULES, _check_concurrency
    )
