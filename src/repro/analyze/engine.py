"""Analysis engine: run every registered checker and collect findings.

The engine owns run orchestration and policy (suppression, metrics,
exit codes); checkers own detection.  ``repro-rtdose analyze`` and the CI
gate are thin wrappers over :func:`run_analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analyze.findings import AnalysisReport, Finding
from repro.analyze.rules import get_registry, validate_suppressions
from repro.obs import artifact, metrics
from repro.obs.trace import span as _trace_span


def default_package_root() -> Path:
    """The installed ``repro`` package directory (lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


@dataclass
class AnalysisContext:
    """Shared inputs the checkers read.

    ``cuda_source_provider`` and ``kernel_factory`` exist so tests can
    seed violations (e.g. inject an ``atomicAdd`` into the emitted CUDA
    source) without touching the real modules.
    """

    #: root directory of the ``repro`` package to lint.
    package_root: Path = field(default_factory=default_package_root)
    #: override for CUDA source generation, ``f(precision) -> source``.
    cuda_source_provider: Optional[Callable[[object], str]] = None
    #: override for kernel instantiation, ``f(name) -> kernel``.
    kernel_factory: Optional[Callable[[str], object]] = None
    #: extra files/directories the source lints include beyond the
    #: package root (``analyze --include``; seeded-violation fixtures).
    extra_lint_paths: Tuple[Path, ...] = ()


def run_analysis(
    context: Optional[AnalysisContext] = None,
    suppress: Sequence[str] = (),
    checkers: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run all (or the named) checkers and return the combined report.

    ``suppress`` drops findings of the given rule ids (counted, not
    silently discarded); unknown ids raise so typos cannot disable
    nothing.  Results are mirrored into the process metrics registry
    under ``analyze.*``.
    """
    context = context or AnalysisContext()
    suppressed_ids = set(validate_suppressions(suppress))
    registry = get_registry()
    report = AnalysisReport()
    selected = registry.checkers()
    if checkers is not None:
        wanted = set(checkers)
        unknown = wanted - {c.name for c in selected}
        if unknown:
            raise KeyError(
                f"unknown checkers {sorted(unknown)}; available: "
                f"{[c.name for c in selected]}"
            )
        selected = [c for c in selected if c.name in wanted]

    with _trace_span("analyze.run", checkers=len(selected)):
        for checker in selected:
            with _trace_span("analyze.checker", checker=checker.name):
                findings: List[Finding] = list(checker.fn(context))
            report.checkers_run.append(checker.name)
            report.rules_run.extend(
                sorted(checker.rule_ids - suppressed_ids)
            )
            for finding in findings:
                if finding.rule_id in suppressed_ids:
                    report.suppressed += 1
                    continue
                report.findings.append(finding)
            metrics.counter("analyze.checkers_run").inc()

    for finding in report.findings:
        metrics.counter(
            f"analyze.findings.{finding.severity.value}"
        ).inc()
    metrics.counter("analyze.suppressed").inc(report.suppressed)
    metrics.counter("analyze.runs").inc()
    if artifact.enabled():
        by_severity: dict = {}
        for finding in report.findings:
            key = finding.severity.value
            by_severity[key] = by_severity.get(key, 0) + 1
        artifact.record(
            "analyze",
            checkers=sorted(report.checkers_run),
            findings=len(report.findings),
            by_severity=by_severity,
            suppressed=report.suppressed,
        )
    return report
