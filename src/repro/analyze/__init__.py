"""repro.analyze — static contract checking for the paper's invariants.

The kernel this repository reproduces is clinically acceptable only
because of properties the code can silently lose in a refactor: bitwise
reproducibility (fixed tree-order reduction, atomics forbidden), the
exact half/double precision combination, and byte traffic that follows
the analytic model ``6*nnz + 12*nr + 8*nc``.  This package turns those
paper-level contracts into machine-checked gates:

* :mod:`repro.analyze.source_lint` — AST reproducibility lint
  (RA101–RA104: atomics imports, unseeded ``numpy.random``, wall-clock
  reads, mutable module state);
* :mod:`repro.analyze.cuda_check` — emitted CUDA source checks
  (RC201–RC203: atomic intrinsics, cooperative-groups idiom, C types vs
  the declared precision triple);
* :mod:`repro.analyze.contracts` — precision-contract checks
  (RP301–RP304: dtype enforcement, accumulation width, reproducibility
  claims verified by execution);
* :mod:`repro.analyze.traffic_check` — traffic-model consistency
  (RT401–RT402: model coefficients and kernel counters vs the analytic
  model);
* :mod:`repro.analyze.concurrency` — lock-discipline lint
  (RL501–RL506: undeclared locks, unguarded accesses to guarded
  attributes, lock-order cycles, blocking calls under locks, thread
  targets capturing mutable state, self-deadlocks), paired with the
  runtime witness in :mod:`repro.obs.lockwitness`.

Run via ``repro-rtdose analyze [--strict] [--format json] [--suppress
RULE]``; suppress single lines with ``# analyze: allow[RULE]``.
"""

from repro.analyze.engine import (
    AnalysisContext,
    default_package_root,
    run_analysis,
)
from repro.analyze.findings import AnalysisReport, Finding, Severity
from repro.analyze.rules import (
    Checker,
    Rule,
    RuleRegistry,
    get_registry,
    reset_registry,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Checker",
    "Finding",
    "Rule",
    "RuleRegistry",
    "Severity",
    "default_package_root",
    "get_registry",
    "reset_registry",
    "run_analysis",
]
