"""Traffic-model consistency checker (rules RT401–RT402).

The paper's Section V derives the analytic minimum DRAM traffic of one
SpMV — ``6*nnz + 12*nr + 8*nc`` for the Half/Double configuration — and
every performance claim downstream (roofline placement, bandwidth
fractions, the 16-bit-index projection) leans on it.  Two invariants keep
the code honest:

* **RT401** — :func:`repro.roofline.analytic.spmv_traffic_model` must
  derive its per-nnz/per-row/per-column coefficients from the declared
  :class:`~repro.precision.types.MixedPrecision` exactly (and reproduce
  the literal ``(6, 12, 8)`` for Half/Double);
* **RT402** — each CSR-family kernel's simulated DRAM counters
  (``dram_bytes_nnz + dram_bytes_rows + dram_bytes_cols``) must agree
  with the analytic model on a long-row probe matrix to within a small
  sector-alignment tolerance.  A refactor that books traffic against the
  wrong structural dimension — or silently changes a stored width —
  diverges immediately.

Both rules additionally sweep the workload registry
(:mod:`repro.workloads`): every registered family's per-nnz DRAM
coefficient must derive from its declared value dtype (RT401), and its
traffic probe's actual storage must match that declaration (RT402).
The banded float32 photon rows are the motivating case — they cost
8 B/nnz, not the PBS Half/Double 6 — and every workload finding names
the offending family.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional

import numpy as np

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import Rule, RuleRegistry
from repro.roofline.analytic import spmv_traffic_model
from repro.util.rng import make_rng, stable_seed

RT401 = Rule(
    "RT401",
    "traffic-coefficients-diverged",
    Severity.ERROR,
    "The analytic traffic model's coefficients no longer follow from the "
    "declared precision configuration.",
    "Keep spmv_traffic_model deriving bytes/nnz, bytes/row and bytes/col "
    "from MixedPrecision (value+index, 4+vector, vector).",
)
RT402 = Rule(
    "RT402",
    "kernel-counters-diverge-from-model",
    Severity.ERROR,
    "A CSR-family kernel's simulated DRAM counters diverge from the "
    "analytic traffic model beyond the alignment tolerance.",
    "Re-derive the kernel's _counters accounting from the analytic model "
    "(or set traffic_model_exact=False with justification).",
)

#: the paper's Half/Double coefficients (Section V).
PAPER_HALF_DOUBLE_COEFFS = (6.0, 12.0, 8.0)

#: relative divergence allowed between counters and the analytic model on
#: the long-row probe (sector rounding + per-row alignment slack).
TRAFFIC_TOLERANCE = 0.03

#: probe geometry: long contiguous rows so per-row slack is amortized the
#: way it is on the paper-scale matrices.
_TRAFFIC_ROWS, _TRAFFIC_COLS, _TRAFFIC_BAND = 96, 2048, 480


def check_model_coefficients() -> List[Finding]:
    """RT401 over every precision configuration the registry declares."""
    from repro.analyze.cuda_check import registry_precisions

    findings: List[Finding] = []
    for precision in registry_precisions():
        location = f"traffic[{precision.name}/idx{precision.index_bytes * 8}]"
        estimate = spmv_traffic_model(1.0, 1.0, 1.0, precision)
        expected = (
            float(precision.bytes_per_nonzero()),
            4.0 + float(precision.vector.nbytes),
            float(precision.vector.nbytes),
        )
        observed = (
            estimate.bytes_per_nnz,
            estimate.bytes_per_row,
            estimate.bytes_per_col,
        )
        if observed != expected:
            findings.append(
                RT401.finding(
                    location,
                    f"model coefficients {observed} != {expected} derived "
                    "from the precision declaration",
                )
            )
        if (
            precision.matrix.value == "half"
            and precision.vector.value == "double"
            and precision.index_bytes == 4
            and observed != PAPER_HALF_DOUBLE_COEFFS
        ):
            findings.append(
                RT401.finding(
                    location,
                    f"Half/Double coefficients {observed} != the paper's "
                    f"{PAPER_HALF_DOUBLE_COEFFS}",
                )
            )
    return findings


def _traffic_probe(name: str, value_dtype: np.dtype) -> object:
    from repro.sparse.synth import banded

    return banded(
        _TRAFFIC_ROWS,
        _TRAFFIC_COLS,
        bandwidth=_TRAFFIC_BAND,
        value_dtype=value_dtype,
        rng=make_rng(stable_seed("analyze.traffic", name)),
    )


def check_workload_coefficients() -> List[Finding]:
    """RT401 over the workload registry: coefficients follow structure.

    Every registered workload family declares a value dtype and a row
    cost model; the model's per-nnz coefficient is a DRAM byte count and
    must *derive* from the declared storage (value width + 4-byte column
    index), not inherit the paper's PBS Half/Double constant.  The
    photon finite-pencil-beam family is the motivating case: its banded
    float32 rows cost 8 B/nnz, so modeling it with the PBS ``6`` would
    misplace it on the roofline — and the finding names the workload so
    the violation is attributable.
    """
    from repro.workloads import get_workload, workload_names

    findings: List[Finding] = []
    for name in workload_names():
        spec = get_workload(name)
        value_bytes = float(np.dtype(spec.value_dtype).itemsize)
        expected_nnz_cost = value_bytes + 4.0
        model = spec.cost_model
        location = f"workload[{name}]"
        if model.nnz_cost != expected_nnz_cost:
            findings.append(
                RT401.finding(
                    location,
                    f"cost model {model.name!r} books {model.nnz_cost} "
                    f"B/nnz, but the registered {spec.value_dtype} values "
                    f"demand {expected_nnz_cost} B/nnz (value + 4 B "
                    "index); per-workload coefficients must derive from "
                    "the declared structure, not reuse the PBS constant",
                )
            )
        if model.row_cost <= 0.0:
            findings.append(
                RT401.finding(
                    location,
                    f"cost model {model.name!r} declares a non-positive "
                    f"per-row cost {model.row_cost}; row pointers and "
                    "output doses always cost bytes",
                )
            )
    return findings


def check_workload_probe_traffic() -> List[Finding]:
    """RT402 over the workload registry: probes match their declaration.

    Each family's traffic probe generates a real (tiny) matrix.  The
    master must honour the float32 master-matrix contract; casting it to
    the declared served dtype must keep every value finite (no silent
    half overflow) and must store exactly the registered bytes/nnz — a
    generator that widens values, or a registration that lies about the
    served width, diverges here with the workload named.
    """
    from repro.workloads import get_workload, workload_names

    findings: List[Finding] = []
    for name in workload_names():
        spec = get_workload(name)
        if spec.traffic_probe is None:
            continue
        matrix = spec.traffic_probe()
        location = f"workload[{name}]"
        if matrix.data.dtype != np.dtype(np.float32):
            findings.append(
                RT402.finding(
                    location,
                    f"traffic probe master stores {matrix.data.dtype} "
                    "values; master deposition matrices are float32 by "
                    "contract (served widths are a conversion)",
                )
            )
            continue
        served = matrix.astype(np.dtype(spec.value_dtype))
        if not np.all(np.isfinite(served.data)):
            findings.append(
                RT402.finding(
                    location,
                    f"casting the probe to the declared {spec.value_dtype} "
                    "overflows to non-finite values; the declared serving "
                    "width cannot represent what the generator builds",
                )
            )
            continue
        stored_per_nnz = (
            served.data.nbytes + served.indices.nbytes
        ) / served.nnz
        if stored_per_nnz != spec.cost_model.nnz_cost:
            findings.append(
                RT402.finding(
                    location,
                    f"probe served as {spec.value_dtype} streams "
                    f"{stored_per_nnz:.1f} B/nnz but the cost model "
                    f"{spec.cost_model.name!r} books "
                    f"{spec.cost_model.nnz_cost} B/nnz",
                )
            )
    return findings


KernelFactory = Callable[[str], object]


def check_kernel_traffic(name: str, kernel: object) -> List[Finding]:
    """RT402 for one kernel (no-op unless it declares model exactness)."""
    contract = kernel.contract()  # type: ignore[attr-defined]
    if not contract.matches_traffic_model or contract.precision is None:
        return []
    precision = contract.precision
    matrix = _traffic_probe(name, precision.matrix.dtype)
    if precision.index_bytes != 4:
        matrix = matrix.with_index_dtype(precision.index_dtype)
    x = 0.5 + make_rng(stable_seed("analyze.traffic.x", name)).random(
        _TRAFFIC_COLS
    )
    result = kernel.run(matrix, x)  # type: ignore[attr-defined]
    counters = result.counters
    measured = (
        counters.dram_bytes_nnz
        + counters.dram_bytes_rows
        + counters.dram_bytes_cols
    )
    analytic = spmv_traffic_model(
        matrix.nnz, matrix.n_rows, matrix.n_cols, precision
    ).total_bytes
    divergence = abs(measured - analytic) / analytic
    if divergence > TRAFFIC_TOLERANCE:
        return [
            RT402.finding(
                f"kernel[{name}]",
                f"DRAM counters {measured:.0f} B diverge from the analytic "
                f"model {analytic:.0f} B by {100 * divergence:.1f}% "
                f"(tolerance {100 * TRAFFIC_TOLERANCE:.0f}%)",
            )
        ]
    return []


def check_all_traffic(
    kernel_factory: Optional[KernelFactory] = None,
    kernel_list: Optional[List[str]] = None,
) -> List[Finding]:
    """RT401 + RT402 over the whole registry."""
    from repro.kernels.dispatch import kernel_names, make_kernel

    factory: KernelFactory = kernel_factory or make_kernel
    names = kernel_list if kernel_list is not None else kernel_names()
    findings = check_model_coefficients()
    findings.extend(check_workload_coefficients())
    findings.extend(check_workload_probe_traffic())
    for name in names:
        findings.extend(check_kernel_traffic(name, factory(name)))
    return findings


def _check_traffic(context: object) -> List[Finding]:
    factory = getattr(context, "kernel_factory", None)
    return check_all_traffic(kernel_factory=factory)


TRAFFIC_RULES: FrozenSet[str] = frozenset({"RT401", "RT402"})


def register(registry: RuleRegistry) -> None:
    """Register the traffic rules and checker."""
    for rule in (RT401, RT402):
        registry.add_rule(rule)
    registry.add_checker("traffic-model", TRAFFIC_RULES, _check_traffic)
