"""AST-based reproducibility lint (rules RA101–RA109).

The paper's kernel is clinically acceptable only because it is bitwise
reproducible (Section II-D), and reproducibility is a *global* property:
one unseeded RNG, one wall-clock read or one atomics call anywhere in a
kernel's functional path silently destroys it.  This lint walks the
package source and enforces:

* **RA101** — modules that declare reproducible kernels must not import or
  call :mod:`repro.gpu.atomics` (the non-associative reduction model that
  defines the *non*-reproducible GPU Baseline);
* **RA102** — stochastic code must flow through :mod:`repro.util.rng`;
  direct ``numpy.random`` construction or sampling anywhere else bypasses
  the single-seed provenance story;
* **RA103** — functional-path modules (kernels, sparse formats, precision,
  GPU substrate, dose, optimization, roofline) must not read wall clocks;
  timing belongs to the harness and :mod:`repro.obs`;
* **RA104** — modules declaring reproducible kernels must not hold mutable
  module-level state (dict/list/set literals), which leaks across runs;
* **RA105** — plan-compilation modules must not mutate compiled plan
  arrays: every ndarray field of a plan dataclass is frozen
  (``writeable=False``) at construction, nothing re-enables writes, and
  executors never subscript-assign into plan attributes;
* **RA106** — modules under ``repro/dist/`` must not concatenate shard
  results in dict/set iteration order: a merge fed from ``.values()`` or
  a set reconstructs the dose in whatever order the container yields,
  which is exactly the nondeterminism the explicit shard-index merge
  exists to exclude;
* **RA107** — run-record-producing modules (the functional path plus
  ``bench``) must not write run records with ``json.dump``/``csv.writer``
  directly: the per-run artifact (:mod:`repro.obs.artifact`) is the
  single source of truth, and files are views rendered from it.  Modules
  that import ``repro.obs.artifact`` are artifact-aware and exempt;
* **RA108** — functional-path modules outside :mod:`repro.tune` must not
  hard-code execution configuration: a literal ``threads_per_block=`` or
  ``n_shards=`` at a call site, or a fresh block-size default binding,
  silently pins a launch shape the autotuner exists to choose.  The
  tuner owns the candidate space; kernels keep their measured Fig-4
  defaults under explicit ``# analyze: allow[RA108]`` markers;
* **RA109** — deposition matrices are constructed only through
  :mod:`repro.workloads` (and the legacy ``dose/`` builders the registry
  wraps).  An ad-hoc ``build_deposition_matrix``/``DoseDepositionMatrix``
  call anywhere else bypasses the registry's structure, cost-model and
  tuning-fingerprint contracts; sanctioned legacy sites carry explicit
  ``# analyze: allow[RA109]`` markers.

All rules honour inline ``# analyze: allow[RULE]`` suppressions on the
flagged line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import Rule, RuleRegistry, inline_allowed_rules

RA101 = Rule(
    "RA101",
    "atomics-in-reproducible-module",
    Severity.ERROR,
    "A module declaring reproducible kernels imports or calls "
    "repro.gpu.atomics.",
    "Move the atomics use into a kernel declared reproducible=False, or "
    "mark the line '# analyze: allow[RA101]' with justification.",
)
RA102 = Rule(
    "RA102",
    "unseeded-numpy-random",
    Severity.ERROR,
    "Direct numpy.random construction/sampling bypasses repro.util.rng.",
    "Thread an rng through repro.util.rng.make_rng/stable_seed instead of "
    "calling numpy.random directly.",
)
RA103 = Rule(
    "RA103",
    "wall-clock-in-functional-path",
    Severity.ERROR,
    "A functional-path module reads a wall clock; results could depend on "
    "when the code runs.",
    "Move timing into the bench harness or repro.obs; functional code "
    "must be a pure function of its inputs.",
)
RA104 = Rule(
    "RA104",
    "mutable-module-state",
    Severity.WARNING,
    "Module-level mutable state in a module declaring reproducible "
    "kernels can carry information between runs.",
    "Make the value immutable (tuple/frozenset/constant) or move it into "
    "instance state.",
)
RA105 = Rule(
    "RA105",
    "mutable-compiled-plan",
    Severity.ERROR,
    "A plan-compilation module constructs or mutates compiled-plan arrays "
    "without freezing them; shared plans must be immutable "
    "(writeable=False).",
    "Freeze every ndarray field in __post_init__ (setflags(write=False) "
    "or a freeze helper), and never subscript-assign into a plan "
    "attribute — write into fresh local arrays instead.",
)
RA106 = Rule(
    "RA106",
    "unordered-shard-merge",
    Severity.ERROR,
    "A repro.dist module concatenates shard results in dict/set "
    "iteration order; the merged dose would depend on container "
    "ordering, not shard index.",
    "Collect (shard_index, array) pairs and merge through "
    "merge_shard_outputs, which sorts by explicit shard index before "
    "any concatenation.",
)
RA107 = Rule(
    "RA107",
    "ad-hoc-run-record-writer",
    Severity.ERROR,
    "A functional-path module writes run records with json.dump/"
    "csv.writer directly, bypassing the per-run ArtifactSink "
    "(repro.obs.artifact) as the single source of truth.",
    "Record the data into the artifact (repro.obs.artifact.record) and "
    "render files as views of it; modules that import "
    "repro.obs.artifact are treated as artifact-aware view renderers. "
    "Mark deliberate exceptions '# analyze: allow[RA107]'.",
)
RA108 = Rule(
    "RA108",
    "hard-coded-execution-config",
    Severity.ERROR,
    "A functional-path module outside repro.tune hard-codes execution "
    "configuration (a literal threads_per_block/n_shards argument or a "
    "block-size default binding); launch shapes belong to the autotuner's "
    "candidate space.",
    "Leave the parameter unset (kernel default), thread a tuned "
    "ExecutionConfig from repro.tune through the call, or mark a kernel's "
    "measured Fig-4 default '# analyze: allow[RA108]' with justification.",
)
RA109 = Rule(
    "RA109",
    "deposition-construction-outside-workloads",
    Severity.ERROR,
    "Deposition-matrix construction (build_deposition_matrix / "
    "DoseDepositionMatrix) outside repro.workloads and the legacy "
    "repro.dose builders; ad-hoc construction bypasses the typed "
    "workload registry's structure, cost-model and fingerprint "
    "contracts.",
    "Generate matrices through repro.workloads (register_workload / "
    "generate), or mark a sanctioned legacy construction site "
    "'# analyze: allow[RA109]' with justification.",
)

#: package-relative directories whose modules are the functional path.
#: ``serve`` is functional-path too: a served dose must be a pure
#: function of (plan, precision, weights) — scheduling time flows only
#: through the injectable :mod:`repro.obs.clock`, never wall clocks.
FUNCTIONAL_DIRS: Tuple[str, ...] = (
    "kernels", "sparse", "precision", "gpu", "dose", "opt", "roofline",
    "plans", "serve", "dist", "tune", "workloads",
)

#: directories allowed to construct deposition matrices (RA109): the
#: typed workload registry and the legacy dose builders it wraps.
DEPOSITION_DIRS: Tuple[str, ...] = ("workloads", "dose")

#: call names that construct a deposition matrix (RA109).
_DEPOSITION_BUILDERS = frozenset({
    "build_deposition_matrix",
    "DoseDepositionMatrix",
})

#: modules exempt from RA102 (the sanctioned RNG plumbing itself).
RNG_EXEMPT_SUFFIXES: Tuple[str, ...] = ("util/rng.py",)

#: modules holding compiled execution plans; RA105 applies to these.
PLAN_MODULE_SUFFIXES: Tuple[str, ...] = ("kernels/plan.py",)

#: directories whose modules produce run records; RA107 applies to
#: these (the functional path plus the bench harness/recording layer).
RUN_RECORD_DIRS: Tuple[str, ...] = FUNCTIONAL_DIRS + ("bench",)

#: calls that write ad-hoc run records (RA107).
_RUN_RECORD_WRITERS = frozenset({"json.dump", "csv.writer"})

#: numpy.random attributes that are types/plumbing, not entropy sources.
_NUMPY_RANDOM_ALLOWED = frozenset({
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
    "numpy.random.SeedSequence",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)

#: call keywords that pin a launch shape (RA108); matched by exact name,
#: so spec fields like ``max_threads_per_block`` stay out of scope.
_EXEC_CONFIG_KEYWORDS = frozenset({"threads_per_block", "n_shards"})

#: bindings that (re)declare a block-size default (RA108); kernels'
#: measured Fig-4 values carry explicit allow markers.
_EXEC_CONFIG_BINDINGS = frozenset({
    "default_threads_per_block",
    "DEFAULT_THREADS_PER_BLOCK",
})

#: calls that assemble shard outputs into one dose vector (RA106).
_CONCAT_FAMILY = frozenset({
    "concatenate", "stack", "hstack", "vstack", "column_stack",
    "tree_merge", "merge_shard_outputs",
})


@dataclass
class ModuleFacts:
    """What one parsed module declares."""

    #: names of kernel classes found, with their reproducible flag.
    kernel_classes: Dict[str, bool] = field(default_factory=dict)

    @property
    def declares_reproducible(self) -> bool:
        """True when every kernel class in the module is reproducible
        (and there is at least one)."""
        return bool(self.kernel_classes) and all(
            self.kernel_classes.values()
        )


class _ImportMap(ast.NodeVisitor):
    """Map local names to the dotted path they were imported from."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.names[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports unused in this package
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"


def _dotted_path(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted path through the imports."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _collect_module_facts(tree: ast.Module) -> ModuleFacts:
    facts = ModuleFacts()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = []
        for base in node.bases:
            path = _dotted_path(base, {})
            if path:
                base_names.append(path.split(".")[-1])
        if not any("Kernel" in b for b in base_names):
            continue
        reproducible = True  # SpMVKernel's default
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "reproducible"
                and isinstance(stmt.value, ast.Constant)
            ):
                reproducible = bool(stmt.value.value)
        facts.kernel_classes[node.name] = reproducible
    return facts


def _is_functional_path(rel_path: str) -> bool:
    parts = Path(rel_path).parts
    return len(parts) >= 2 and parts[0] in FUNCTIONAL_DIRS


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


def _ndarray_field_lines(node: ast.ClassDef) -> List[int]:
    """Line numbers of dataclass fields annotated as ndarrays."""
    lines: List[int] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and "ndarray" in ast.unparse(
            stmt.annotation
        ):
            lines.append(stmt.lineno)
    return lines


def _call_freezes_arrays(call: ast.Call) -> bool:
    """True for ``x.setflags(write=False)`` or a ``*freeze*`` helper call."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "setflags":
        return any(
            kw.arg == "write"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in call.keywords
        )
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return "freeze" in name.lower()


def _post_init_freezes(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "__post_init__"
        ):
            return any(
                isinstance(sub, ast.Call) and _call_freezes_arrays(sub)
                for sub in ast.walk(stmt)
            )
    return False


def _lint_plan_module(
    tree: ast.Module, emit: "Callable[[Rule, int, str], None]"
) -> None:
    """RA105: compiled-plan arrays must be frozen and never mutated.

    Three construction-site checks: (a) every dataclass with ndarray
    fields freezes them in ``__post_init__``; (b) nothing re-enables
    writes via ``setflags(write=True)``; (c) no subscript store targets
    an attribute (``plan.values[...] = ...``) — executors may only
    write into fresh local arrays.
    """
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_dataclass_decorated(node):
            continue
        if _ndarray_field_lines(node) and not _post_init_freezes(node):
            emit(
                RA105, node.lineno,
                f"dataclass {node.name} holds ndarray fields but its "
                "__post_init__ does not freeze them (writeable=False)",
            )
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
            ):
                emit(
                    RA105, node.lineno,
                    "setflags(write=True) re-enables mutation of a plan "
                    "array",
                )
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Attribute
            ):
                emit(
                    RA105, node.lineno,
                    f"subscript store into attribute "
                    f"'{ast.unparse(target.value)}' mutates compiled plan "
                    "state; write into a fresh local array instead",
                )


def _is_dist_module(rel_path: str) -> bool:
    parts = Path(rel_path).parts
    return len(parts) >= 2 and parts[0] == "dist"


def _is_run_record_module(rel_path: str) -> bool:
    parts = Path(rel_path).parts
    return len(parts) >= 2 and parts[0] in RUN_RECORD_DIRS


def _imports_artifact_sink(tree: ast.Module) -> bool:
    """True when the module imports :mod:`repro.obs.artifact`.

    Artifact-aware modules are the sanctioned view renderers: they read
    or enrich the per-run record rather than bypassing it, so RA107
    exempts them wholesale.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module.startswith("repro.obs.artifact")
            or (node.module == "repro.obs"
                and any(a.name == "artifact" for a in node.names))
        ):
            return True
        if isinstance(node, ast.Import) and any(
            a.name.startswith("repro.obs.artifact") for a in node.names
        ):
            return True
    return False


def _yields_container_order(node: ast.expr) -> bool:
    """True when the expression subtree draws values from a dict/set.

    ``d.values()`` and set displays/comprehensions both yield in
    container iteration order — never an acceptable merge order for
    shard outputs.
    """
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "values"
        ):
            return True
    return False


def _lint_dist_module(
    tree: ast.Module, emit: "Callable[[Rule, int, str], None]"
) -> None:
    """RA106: shard results merge by explicit index, never container order."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in _CONCAT_FAMILY:
            continue
        args = list(node.args) + [kw.value for kw in node.keywords]
        if any(_yields_container_order(arg) for arg in args):
            emit(
                RA106, node.lineno,
                f"{name}(...) is fed from dict/set iteration order; "
                "merge shard outputs by explicit shard index instead",
            )


def _lint_exec_config(
    tree: ast.Module, emit: "Callable[[Rule, int, str], None]"
) -> None:
    """RA108: no hard-coded launch shapes outside the tuner.

    Two shapes are flagged: (a) a call-site keyword ``threads_per_block=``
    or ``n_shards=`` whose value is an integer literal — the caller pins a
    launch configuration the tuning cache should choose; (b) a binding of
    a recognized block-size default name — a new Fig-4-style constant
    outside the kernel catalogue.  Booleans and ``None`` (the "use the
    kernel default" sentinel) are not literals in this sense.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg in _EXEC_CONFIG_KEYWORDS
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, int)
                    and not isinstance(kw.value.value, bool)
                ):
                    emit(
                        RA108, kw.value.lineno,
                        f"call hard-codes {kw.arg}={kw.value.value}; "
                        "launch shapes belong to the tuner's candidate "
                        "space (pass a tuned ExecutionConfig or leave "
                        "unset)",
                    )
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in _EXEC_CONFIG_BINDINGS
            ):
                emit(
                    RA108, node.lineno,
                    f"binding {target.id!r} declares a block-size "
                    "default outside the tuner; mark a kernel's measured "
                    "Fig-4 default '# analyze: allow[RA108]'",
                )


def _line_allows(source_lines: List[str], lineno: int, rule_id: str) -> bool:
    if 1 <= lineno <= len(source_lines):
        return rule_id in inline_allowed_rules(source_lines[lineno - 1])
    return False


def lint_source(
    source: str, rel_path: str, location: Optional[str] = None
) -> List[Finding]:
    """Lint one module's source text.

    ``rel_path`` is the path relative to the ``repro`` package root (it
    selects which rules apply); ``location`` overrides the path used in
    findings (defaults to ``rel_path``).
    """
    location = location or rel_path
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - repo parses
        return [
            RA101.finding(
                location, f"cannot parse module: {exc}", line=exc.lineno,
                remediation="Fix the syntax error.",
            )
        ]
    lines = source.splitlines()
    imports = _ImportMap()
    imports.visit(tree)
    facts = _collect_module_facts(tree)
    findings: List[Finding] = []

    def emit(rule: Rule, lineno: int, message: str) -> None:
        if not _line_allows(lines, lineno, rule.rule_id):
            findings.append(rule.finding(location, message, line=lineno))

    # --- RA101: atomics imports in reproducible modules ---------------- #
    if facts.declares_reproducible:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "repro.gpu.atomics"
                or (node.module == "repro.gpu"
                    and any(a.name == "atomics" for a in node.names))
            ):
                emit(
                    RA101, node.lineno,
                    "import of repro.gpu.atomics in a module whose kernels "
                    "are all declared reproducible",
                )
            elif isinstance(node, ast.Import) and any(
                a.name.startswith("repro.gpu.atomics") for a in node.names
            ):
                emit(
                    RA101, node.lineno,
                    "import of repro.gpu.atomics in a module whose kernels "
                    "are all declared reproducible",
                )

    is_rng_exempt = any(rel_path.endswith(s) for s in RNG_EXEMPT_SUFFIXES)
    functional = _is_functional_path(rel_path)
    run_record_scope = (
        _is_run_record_module(rel_path)
        and not _imports_artifact_sink(tree)
    )
    parts = Path(rel_path).parts
    deposition_scope = not (len(parts) >= 2 and parts[0] in DEPOSITION_DIRS)

    # --- RA105: compiled-plan immutability ----------------------------- #
    if any(rel_path.endswith(s) for s in PLAN_MODULE_SUFFIXES):
        _lint_plan_module(tree, emit)

    # --- RA106: ordered shard merges in repro.dist --------------------- #
    if _is_dist_module(rel_path):
        _lint_dist_module(tree, emit)

    # --- RA108: hard-coded execution config outside the tuner ---------- #
    if functional and Path(rel_path).parts[0] != "tune":
        _lint_exec_config(tree, emit)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        path = _dotted_path(node.func, imports.names)
        if path is None:
            continue
        # --- RA101: calls into the atomics model ----------------------- #
        if facts.declares_reproducible and path.startswith(
            "repro.gpu.atomics."
        ):
            emit(
                RA101, node.lineno,
                f"call to {path} in a module whose kernels are all "
                "declared reproducible",
            )
        # --- RA102: direct numpy.random use ---------------------------- #
        if (
            not is_rng_exempt
            and path.startswith("numpy.random.")
            and path not in _NUMPY_RANDOM_ALLOWED
        ):
            emit(
                RA102, node.lineno,
                f"direct call to {path} bypasses repro.util.rng",
            )
        # --- RA103: wall-clock reads in the functional path ------------ #
        if functional and path in _WALL_CLOCK_CALLS:
            emit(
                RA103, node.lineno,
                f"wall-clock read {path}() in functional-path module",
            )
        # --- RA107: ad-hoc run-record writers -------------------------- #
        if run_record_scope and path in _RUN_RECORD_WRITERS:
            emit(
                RA107, node.lineno,
                f"{path}(...) writes a run record outside the "
                "ArtifactSink; record into the artifact and render "
                "files as views of it",
            )
        # --- RA109: deposition construction outside workloads ---------- #
        if (
            deposition_scope
            and path.split(".")[-1] in _DEPOSITION_BUILDERS
        ):
            emit(
                RA109, node.lineno,
                f"{path.split('.')[-1]}(...) constructs a deposition "
                "matrix outside repro.workloads / repro.dose; route "
                "construction through the workload registry",
            )

    # --- RA104: module-level mutable state ----------------------------- #
    if facts.declares_reproducible:
        for node in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not isinstance(value, _MUTABLE_LITERALS):
                continue
            names = ", ".join(
                t.id for t in targets if isinstance(t, ast.Name)
            ) or "<target>"
            emit(
                RA104, node.lineno,
                f"module-level mutable value bound to {names} in a module "
                "declaring reproducible kernels",
            )
    return findings


def lint_package(package_root: Path) -> List[Finding]:
    """Lint every module under the ``repro`` package root."""
    findings: List[Finding] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        source = path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(source, rel, location=f"src/repro/{rel}")
        )
    return findings


def _check_repro_lint(context: object) -> List[Finding]:
    root = getattr(context, "package_root")
    return lint_package(Path(root))


#: rule ids this checker may emit (shared with tests).
SOURCE_LINT_RULES: FrozenSet[str] = frozenset(
    {"RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107",
     "RA108", "RA109"}
)


def register(registry: RuleRegistry) -> None:
    """Register the lint rules and checker."""
    for rule in (RA101, RA102, RA103, RA104, RA105, RA106, RA107, RA108,
                 RA109):
        registry.add_rule(rule)
    registry.add_checker("repro-lint", SOURCE_LINT_RULES, _check_repro_lint)
