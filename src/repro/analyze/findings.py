"""Structured findings: what a checker reports and how it is rendered.

A :class:`Finding` pins one contract violation to a rule, a severity and a
location (``file:line`` where the violation is textual; the kernel or
precision-configuration name where it is behavioural).  Checkers never
print — they return findings, and :class:`AnalysisReport` owns rendering
(terminal table or machine-readable JSON) and the exit-code policy.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.tables import Table


class Severity(enum.Enum):
    """How bad a finding is; the ordering drives the exit-code policy."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One contract violation (or advisory note) from one rule."""

    #: rule identifier, e.g. ``"RA102"``.
    rule_id: str
    #: severity the rule assigns (may be overridden at registration).
    severity: Severity
    #: where: a repo-relative path, a kernel name, or a config name.
    location: str
    #: 1-based source line when the finding is textual; None otherwise.
    line: Optional[int]
    #: what went wrong, in one sentence.
    message: str
    #: how to fix it (or how to suppress it if intentional).
    remediation: str = ""

    def render_location(self) -> str:
        if self.line is not None:
            return f"{self.location}:{self.line}"
        return self.location

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["severity"] = self.severity.value
        return d


@dataclass
class AnalysisReport:
    """Everything one ``repro-rtdose analyze`` run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: rule ids that actually executed (suppressed rules are skipped).
    rules_run: List[str] = field(default_factory=list)
    #: count of findings dropped by CLI/inline suppression.
    suppressed: int = 0
    #: checker names that ran.
    checkers_run: List[str] = field(default_factory=list)

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when errors (or, under ``strict``, warnings)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (-f.severity.rank, f.rule_id, f.location, f.line or 0),
        )

    def render_table(self) -> str:
        """Terminal rendering: one row per finding plus a summary line."""
        table = Table(
            ["rule", "severity", "location", "message", "remediation"],
            title="Static analysis findings",
        )
        for f in self.sorted_findings():
            table.add_row(
                [f.rule_id, f.severity.value, f.render_location(),
                 f.message, f.remediation]
            )
        lines = [table.render()] if self.findings else []
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self) -> str:
        return (
            f"analyze: {len(self.checkers_run)} checkers, "
            f"{len(self.rules_run)} rules, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.by_severity(Severity.INFO))} notes, "
            f"{self.suppressed} suppressed"
        )

    def to_json(self, strict: bool = False, indent: Optional[int] = 2) -> str:
        payload = {
            "schema": "repro.analyze-report/v1",
            "checkers_run": list(self.checkers_run),
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "counts": {
                sev.value: len(self.by_severity(sev)) for sev in Severity
            },
            "exit_code": self.exit_code(strict),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }
        return json.dumps(payload, indent=indent)

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)
