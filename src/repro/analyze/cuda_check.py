"""CUDA source checker (rules RC201–RC203).

:mod:`repro.kernels.cuda_source` emits the real CUDA C++ kernel of the
paper's Listing 1 for users with hardware.  That source carries the same
clinical contract as the simulator: *no atomics* (bitwise-reproducible
cooperative-groups reduction only) and the exact storage/vector/
accumulation C types the :class:`~repro.precision.types.MixedPrecision`
declares.  This checker regenerates the source for **every** precision
configuration the kernel registry uses (plus the named paper
configurations) and rejects:

* **RC201** — any ``atomic*`` intrinsic in the emitted source;
* **RC202** — a missing cooperative-groups reduction idiom (the
  ``cg::reduce`` butterfly over a ``tiled_partition<WARP_SIZE>``);
* **RC203** — emitted C types that do not match the declared precision
  triple (value/index/vector/accumulator).
"""

from __future__ import annotations

import re
from typing import Callable, FrozenSet, List, Optional, Sequence

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import Rule, RuleRegistry
from repro.precision.types import (
    DOUBLE,
    HALF_DOUBLE,
    HALF_DOUBLE_SHORT_INDEX,
    SINGLE,
    MixedPrecision,
)

RC201 = Rule(
    "RC201",
    "cuda-atomics-forbidden",
    Severity.ERROR,
    "The emitted CUDA kernel contains an atomic intrinsic; atomics have "
    "run-dependent commit order and break bitwise reproducibility.",
    "Reduce through cooperative groups (cg::reduce) instead of atomics.",
)
RC202 = Rule(
    "RC202",
    "cuda-coop-reduction-missing",
    Severity.ERROR,
    "The emitted CUDA kernel lacks the cooperative-groups tree-reduction "
    "idiom that guarantees a fixed summation order.",
    "Keep the cg::tiled_partition<WARP_SIZE> + cg::reduce butterfly of "
    "Listing 1.",
)
RC203 = Rule(
    "RC203",
    "cuda-type-mismatch",
    Severity.ERROR,
    "The emitted C types do not match the declared MixedPrecision "
    "(storage/index/vector/accumulation).",
    "Regenerate via repro.kernels.cuda_source.expected_cuda_types and fix "
    "the template parameterization.",
)

#: the four named paper configurations, always checked.
NAMED_CONFIGS: Sequence[MixedPrecision] = (
    HALF_DOUBLE,
    SINGLE,
    DOUBLE,
    HALF_DOUBLE_SHORT_INDEX,
)

_ATOMIC_RE = re.compile(
    r"\batomic(?:Add|Sub|Exch|Min|Max|Inc|Dec|CAS|And|Or|Xor)\b"
)

_COOP_IDIOMS = (
    "#include <cooperative_groups.h>",
    "tiled_partition<WARP_SIZE>",
    "cg::reduce(",
)

SourceProvider = Callable[[MixedPrecision], str]


def _default_provider(precision: MixedPrecision) -> str:
    from repro.kernels.cuda_source import generate_cuda_kernel

    return generate_cuda_kernel(precision)


def _line_of(source: str, needle_match: "re.Match[str]") -> int:
    return source.count("\n", 0, needle_match.start()) + 1


def _config_location(precision: MixedPrecision) -> str:
    return (
        f"cuda_source[{precision.name}"
        f"/idx{precision.index_bytes * 8}]"
    )


def check_cuda_config(
    precision: MixedPrecision,
    source: Optional[str] = None,
    provider: Optional[SourceProvider] = None,
) -> List[Finding]:
    """Check the emitted CUDA source for one precision configuration."""
    if source is None:
        source = (provider or _default_provider)(precision)
    location = _config_location(precision)
    findings: List[Finding] = []

    for match in _ATOMIC_RE.finditer(source):
        findings.append(
            RC201.finding(
                location,
                f"forbidden intrinsic {match.group(0)} in emitted kernel",
                line=_line_of(source, match),
            )
        )

    for idiom in _COOP_IDIOMS:
        if idiom not in source:
            findings.append(
                RC202.finding(
                    location,
                    f"cooperative-groups idiom {idiom!r} missing from "
                    "emitted kernel",
                )
            )

    findings.extend(_check_types(precision, source, location))
    return findings


def _check_types(
    precision: MixedPrecision, source: str, location: str
) -> List[Finding]:
    """Cross-check emitted C types against the declared precision triple."""
    from repro.kernels.cuda_source import expected_cuda_types

    expected = expected_cuda_types(precision)
    observed = {}
    patterns = {
        "value": r"const\s+([\w ]+?)\s*\*__restrict__\s+values",
        "index": r"const\s+([\w ]+?)\s*\*__restrict__\s+col_idx",
        "vector": r"const\s+([\w ]+?)\s*\*__restrict__\s+x",
        "accum": r"^\s*([\w ]+?)\s+sum\s*=",
    }
    findings: List[Finding] = []
    for role, pattern in patterns.items():
        match = re.search(pattern, source, flags=re.MULTILINE)
        if match is None:
            findings.append(
                RC203.finding(
                    location,
                    f"could not locate the {role} declaration in the "
                    "emitted kernel",
                )
            )
            continue
        observed[role] = match.group(1).strip()
        if observed[role] != expected[role]:
            findings.append(
                RC203.finding(
                    location,
                    f"{role} type is {observed[role]!r}, declared "
                    f"precision requires {expected[role]!r}",
                    line=_line_of(source, match),
                )
            )
    return findings


def registry_precisions() -> List[MixedPrecision]:
    """Every distinct precision configuration the kernel registry declares,
    plus the named paper configurations."""
    from repro.kernels.dispatch import kernel_names, make_kernel

    configs: List[MixedPrecision] = list(NAMED_CONFIGS)
    for name in kernel_names():
        precision = getattr(make_kernel(name), "precision", None)
        if precision is not None and precision not in configs:
            configs.append(precision)
    return configs


def check_all_configs(
    provider: Optional[SourceProvider] = None,
) -> List[Finding]:
    """Run the CUDA checks over every known precision configuration."""
    findings: List[Finding] = []
    for precision in registry_precisions():
        findings.extend(check_cuda_config(precision, provider=provider))
    return findings


def _check_cuda(context: object) -> List[Finding]:
    provider = getattr(context, "cuda_source_provider", None)
    return check_all_configs(provider=provider)


CUDA_RULES: FrozenSet[str] = frozenset({"RC201", "RC202", "RC203"})


def register(registry: RuleRegistry) -> None:
    """Register the CUDA rules and checker."""
    for rule in (RC201, RC202, RC203):
        registry.add_rule(rule)
    registry.add_checker("cuda-source", CUDA_RULES, _check_cuda)
