"""Precision-contract checker (rules RP301–RP304).

Every registered kernel declares a :class:`~repro.kernels.base.KernelContract`
(reproducibility flag, precision triple, atomics usage).  Docstrings stating
"half matrix values, double accumulation" enforce nothing; this checker
*executes* each kernel's functional path on a small deterministic probe
matrix and verifies the declaration against observed behaviour:

* **RP301** — a kernel must *reject* a matrix stored in the wrong value
  dtype (a silent float16<->float64 up/downcast changes both results and
  the traffic model without anyone noticing);
* **RP302** — the executed result must honour the declared accumulation
  width (``KernelResult.accum_bytes``) and the float64 reporting contract
  for ``y``;
* **RP303** — a declared precision triple must keep accumulation at least
  as wide as the vectors (the paper's "double accumulation" discipline);
* **RP304** — a kernel declared ``reproducible=True`` must produce
  bit-identical outputs across repeated runs with fresh RNGs, and a
  kernel whose traits use atomics must not claim reproducibility.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional

import numpy as np

from repro.analyze.findings import Finding, Severity
from repro.analyze.rules import Rule, RuleRegistry
from repro.util.errors import DTypeError
from repro.util.rng import make_rng, stable_seed

RP301 = Rule(
    "RP301",
    "storage-dtype-not-enforced",
    Severity.ERROR,
    "A kernel silently accepts matrices stored in a dtype other than its "
    "declared storage precision.",
    "Validate the matrix value dtype in run() and raise DTypeError on "
    "mismatch (convert explicitly with astype at the call site).",
)
RP302 = Rule(
    "RP302",
    "accumulation-width-mismatch",
    Severity.ERROR,
    "The executed result does not honour the declared accumulation "
    "precision or the float64 reporting contract.",
    "Accumulate in the declared dtype and report y as float64.",
)
RP303 = Rule(
    "RP303",
    "accumulation-narrower-than-vector",
    Severity.ERROR,
    "A declared precision triple accumulates narrower than its vectors, "
    "silently downcasting every partial sum.",
    "Declare accumulate at least as wide as vector (the paper uses "
    "double for both).",
)
RP304 = Rule(
    "RP304",
    "reproducibility-claim-violated",
    Severity.ERROR,
    "A kernel declared reproducible produced run-to-run bit differences "
    "(or claims reproducibility while reducing through atomics).",
    "Fix the reduction order to be run-invariant, or declare "
    "reproducible=False and keep the kernel out of clinical paths.",
)

#: probe matrix geometry: small enough to run in milliseconds, wide
#: enough to exercise multi-chunk warp iterations (rows of ~17 nnz).
_PROBE_ROWS, _PROBE_COLS, _PROBE_BAND = 48, 192, 8


def _probe_csr(name: str, value_dtype: np.dtype) -> object:
    from repro.sparse.synth import banded

    return banded(
        _PROBE_ROWS,
        _PROBE_COLS,
        bandwidth=_PROBE_BAND,
        value_dtype=value_dtype,
        rng=make_rng(stable_seed("analyze.probe", name)),
    )


def _probe_for_kernel(
    name: str, kernel: object, value_dtype: np.dtype
) -> object:
    """Build the probe matrix in the storage format ``kernel`` consumes."""
    from repro.sparse.convert import csr_to_ellpack, csr_to_rscf, csr_to_sellcs

    csr = _probe_csr(name, value_dtype)
    kernel_name = getattr(kernel, "name", name)
    if "ellpack" in kernel_name:
        return csr_to_ellpack(csr)
    if "sellcs" in kernel_name:
        return csr_to_sellcs(csr, chunk_size=32, sigma=64)
    if name in ("gpu_baseline", "cpu_raystation"):
        return csr_to_rscf(csr)
    contract = kernel.contract()  # type: ignore[attr-defined]
    if (
        contract.precision is not None
        and contract.precision.index_bytes != 4
    ):
        return csr.with_index_dtype(contract.precision.index_dtype)
    return csr


def _probe_x(name: str) -> np.ndarray:
    rng = make_rng(stable_seed("analyze.weights", name))
    return 0.5 + rng.random(_PROBE_COLS)


KernelFactory = Callable[[str], object]


def _wrong_dtype(declared: np.dtype) -> np.dtype:
    return np.dtype(np.float64 if declared != np.float64 else np.float32)


def check_kernel_contract(name: str, kernel: object) -> List[Finding]:
    """Verify one kernel's declared contract against observed behaviour."""
    findings: List[Finding] = []
    contract = kernel.contract()  # type: ignore[attr-defined]
    location = f"kernel[{name}]"

    # --- RP304 (static half): atomics imply non-reproducibility -------- #
    if contract.uses_atomics and contract.reproducible:
        findings.append(
            RP304.finding(
                location,
                "declared reproducible=True while traits.uses_atomics=True",
            )
        )

    precision = contract.precision
    if precision is not None:
        # --- RP303: triple sanity -------------------------------------- #
        if precision.accumulate.nbytes < precision.vector.nbytes:
            findings.append(
                RP303.finding(
                    location,
                    f"accumulate={precision.accumulate.value} is narrower "
                    f"than vector={precision.vector.value}",
                )
            )
        # --- RP301: wrong-dtype probe must be rejected ----------------- #
        declared = precision.matrix.dtype
        wrong = _probe_for_kernel(name, kernel, _wrong_dtype(declared))
        x = _probe_x(name)
        try:
            kernel.run(wrong, x)  # type: ignore[attr-defined]
        except DTypeError:
            pass
        else:
            findings.append(
                RP301.finding(
                    location,
                    f"accepted a matrix stored in "
                    f"{_wrong_dtype(declared)} despite declaring "
                    f"{declared} storage",
                )
            )

    # --- RP302 + RP304 (dynamic): run the functional path -------------- #
    value_dtype = (
        precision.matrix.dtype if precision is not None else np.dtype(np.float32)
    )
    matrix = _probe_for_kernel(name, kernel, value_dtype)
    x = _probe_x(name)
    result = kernel.run(matrix, x)  # type: ignore[attr-defined]
    if precision is not None:
        if result.accum_bytes != precision.accumulate.nbytes:
            findings.append(
                RP302.finding(
                    location,
                    f"result.accum_bytes={result.accum_bytes} but declared "
                    f"accumulate={precision.accumulate.value} "
                    f"({precision.accumulate.nbytes} bytes)",
                )
            )
    if result.y.dtype != np.float64:
        findings.append(
            RP302.finding(
                location,
                f"y reported as {result.y.dtype}, reporting contract is "
                "float64",
            )
        )
    if contract.reproducible:
        rerun = kernel.run(matrix, x)  # type: ignore[attr-defined]
        identical = (
            rerun.y.shape == result.y.shape
            and rerun.y.dtype == result.y.dtype
            and np.array_equal(
                rerun.y.view(np.uint8), result.y.view(np.uint8)
            )
        )
        if not identical:
            findings.append(
                RP304.finding(
                    location,
                    "declared reproducible=True but repeated runs differ "
                    "bitwise",
                )
            )
    return findings


def check_all_contracts(
    kernel_factory: Optional[KernelFactory] = None,
    kernel_list: Optional[List[str]] = None,
) -> List[Finding]:
    """Run the precision-contract checks over every registered kernel."""
    from repro.kernels.dispatch import kernel_names, make_kernel

    factory: KernelFactory = kernel_factory or make_kernel
    names = kernel_list if kernel_list is not None else kernel_names()
    findings: List[Finding] = []
    for name in names:
        findings.extend(check_kernel_contract(name, factory(name)))
    return findings


def _check_contracts(context: object) -> List[Finding]:
    factory = getattr(context, "kernel_factory", None)
    return check_all_contracts(kernel_factory=factory)


CONTRACT_RULES: FrozenSet[str] = frozenset(
    {"RP301", "RP302", "RP303", "RP304"}
)


def register(registry: RuleRegistry) -> None:
    """Register the precision-contract rules and checker."""
    for rule in (RP301, RP302, RP303, RP304):
        registry.add_rule(rule)
    registry.add_checker(
        "precision-contracts", CONTRACT_RULES, _check_contracts
    )
