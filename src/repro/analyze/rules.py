"""Rule catalogue and checker registry for ``repro.analyze``.

A *rule* is one named invariant (``RA102: unseeded numpy.random use``)
with a default severity and a remediation hint; a *checker* is a function
that inspects the tree and may emit findings for one or more rules.  The
registry is process-global so the CLI, CI and tests see one catalogue —
and resettable (:func:`reset_registry`) so test runs stay
order-independent; built-in rules re-register lazily on next use.

Suppression comes in two layers:

* per-rule, via ``repro-rtdose analyze --suppress RULE`` (the rule's
  findings are dropped and counted);
* per-line, via an inline ``# analyze: allow[RULE]`` comment on the
  flagged source line (multiple rules comma-separated).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.analyze.findings import Finding, Severity

#: matches ``# analyze: allow[RA102]`` / ``# analyze: allow[RA102, RC201]``.
_ALLOW_RE = re.compile(r"#\s*analyze:\s*allow\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Rule:
    """One checkable invariant."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    remediation: str = ""

    def finding(
        self,
        location: str,
        message: str,
        line: Optional[int] = None,
        remediation: Optional[str] = None,
    ) -> Finding:
        """Build a finding carrying this rule's defaults."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            location=location,
            line=line,
            message=message,
            remediation=self.remediation if remediation is None else remediation,
        )


#: A checker takes the analysis context and returns findings.  The context
#: type lives in :mod:`repro.analyze.engine`; ``object`` here avoids the
#: import cycle.
CheckerFn = Callable[[object], List[Finding]]


@dataclass(frozen=True)
class Checker:
    """A registered checker and the rules it may emit."""

    name: str
    rule_ids: FrozenSet[str]
    fn: CheckerFn


@dataclass
class RuleRegistry:
    """Thread-safe store of rules and checkers."""

    _rules: Dict[str, Rule] = field(default_factory=dict)
    _checkers: Dict[str, Checker] = field(default_factory=dict)
    _lock: threading.Lock = field(  # analyze: lock-guards[_rules, _checkers]
        default_factory=threading.Lock, repr=False
    )

    def add_rule(self, rule: Rule, replace: bool = False) -> Rule:
        with self._lock:
            existing = self._rules.get(rule.rule_id)
            if existing is not None and not replace:
                if existing != rule:
                    raise ValueError(
                        f"rule {rule.rule_id!r} already registered with a "
                        "different definition"
                    )
                return existing
            self._rules[rule.rule_id] = rule
            return rule

    def add_checker(
        self,
        name: str,
        rule_ids: Iterable[str],
        fn: CheckerFn,
        replace: bool = False,
    ) -> Checker:
        ids = frozenset(rule_ids)
        with self._lock:
            missing = sorted(i for i in ids if i not in self._rules)
            if missing:
                raise ValueError(
                    f"checker {name!r} references unregistered rules {missing}"
                )
            if name in self._checkers and not replace:
                raise ValueError(f"checker {name!r} already registered")
            checker = Checker(name=name, rule_ids=ids, fn=fn)
            self._checkers[name] = checker
            return checker

    def rule(self, rule_id: str) -> Rule:
        with self._lock:
            try:
                return self._rules[rule_id]
            except KeyError:
                raise KeyError(
                    f"unknown rule {rule_id!r}; known: {sorted(self._rules)}"
                ) from None

    def rules(self) -> List[Rule]:
        with self._lock:
            return [self._rules[k] for k in sorted(self._rules)]

    def checkers(self) -> List[Checker]:
        with self._lock:
            return [self._checkers[k] for k in sorted(self._checkers)]

    def rule_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._rules)

    def clear(self) -> None:
        with self._lock:
            self._rules.clear()
            self._checkers.clear()


_REGISTRY = RuleRegistry()
_BUILTINS_LOADED = False


def get_registry() -> RuleRegistry:
    """The process-wide registry, with built-in rules loaded."""
    ensure_builtin_rules()
    return _REGISTRY


def raw_registry() -> RuleRegistry:
    """The registry without triggering built-in registration (internal)."""
    return _REGISTRY


def reset_registry() -> None:
    """Drop every rule and checker (tests use this between runs).

    Built-in rules re-register on the next :func:`get_registry` call, so a
    reset restores the stock catalogue while discarding anything a test
    added.
    """
    global _BUILTINS_LOADED
    _REGISTRY.clear()
    _BUILTINS_LOADED = False


def ensure_builtin_rules() -> None:
    """Idempotently register the built-in checkers.

    Imported lazily to avoid cycles (checker modules import this module
    for the :class:`Rule` type).
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.analyze import (
        concurrency, contracts, cuda_check, source_lint, traffic_check,
    )

    for mod in (source_lint, concurrency, cuda_check, contracts,
                traffic_check):
        mod.register(_REGISTRY)


def inline_allowed_rules(source_line: str) -> FrozenSet[str]:
    """Rule ids suppressed by an inline ``# analyze: allow[...]`` comment."""
    match = _ALLOW_RE.search(source_line)
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def validate_suppressions(suppress: Iterable[str]) -> List[str]:
    """Check ``--suppress`` arguments against the catalogue.

    Returns the normalized list; raises ``KeyError`` on unknown ids so a
    typo cannot silently disable nothing.
    """
    registry = get_registry()
    known = set(registry.rule_ids())
    normalized = []
    for rule_id in suppress:
        rule_id = rule_id.strip().upper()
        if rule_id not in known:
            raise KeyError(
                f"unknown rule {rule_id!r} in --suppress; known: {sorted(known)}"
            )
        normalized.append(rule_id)
    return normalized
