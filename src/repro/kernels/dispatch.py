"""Kernel registry: look up SpMV implementations by name.

The benchmark harness, CLI and examples refer to kernels by the short
names used throughout the paper's figures: ``half_double``, ``single``,
``gpu_baseline``, ``cpu_raystation``, ``cusparse``, ``ginkgo`` (plus the
ablation kernels).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.kernels.base import SpMVKernel
from repro.kernels.baseline import GPUBaselineKernel
from repro.kernels.cpu_raystation import CPURayStationKernel
from repro.kernels.csr_scalar import ScalarCSRKernel
from repro.kernels.csr_vector import HalfDoubleKernel, SingleKernel, VectorCSRKernel
from repro.kernels.cusparse_model import CuSparseLikeKernel
from repro.kernels.format_kernels import ELLPACKKernel, SellCSigmaKernel
from repro.kernels.ginkgo_model import GinkgoLikeKernel
from repro.obs import metrics
from repro.precision.types import DOUBLE, HALF_DOUBLE_SHORT_INDEX
from repro.util.errors import ReproError

_FACTORIES: Dict[str, Callable[[], SpMVKernel]] = {
    "half_double": HalfDoubleKernel,
    "single": SingleKernel,
    "double": lambda: VectorCSRKernel(DOUBLE, name="double"),
    "half_double_u16": lambda: VectorCSRKernel(
        HALF_DOUBLE_SHORT_INDEX, name="half_double_u16"
    ),
    "scalar_csr": ScalarCSRKernel,
    "gpu_baseline": GPUBaselineKernel,
    "cpu_raystation": CPURayStationKernel,
    "cusparse": CuSparseLikeKernel,
    "ginkgo": GinkgoLikeKernel,
    "ellpack_half_double": ELLPACKKernel,
    "sellcs_half_double": SellCSigmaKernel,
}


def make_kernel(name: str) -> SpMVKernel:
    """Instantiate a kernel by registry name.

    >>> make_kernel("half_double").name
    'half_double'
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        metrics.counter("kernel.lookup_errors").inc()
        raise ReproError(
            f"unknown kernel {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    metrics.counter(f"kernel.instantiated.{name}").inc()
    return factory()


def kernel_names() -> List[str]:
    """All registered kernel names, sorted."""
    return sorted(_FACTORIES)


def register_kernel(
    name: str, factory: Callable[[], SpMVKernel], replace: bool = False
) -> None:
    """Register an additional kernel factory under ``name``.

    Refuses to shadow an existing registration unless ``replace=True`` —
    a silent overwrite would reroute every harness run that refers to
    the name.
    """
    if name in _FACTORIES and not replace:
        metrics.counter("kernel.register_conflicts").inc()
        raise ReproError(
            f"kernel {name!r} is already registered; pass replace=True "
            "to override it deliberately"
        )
    _FACTORIES[name] = factory
    metrics.counter("kernel.registered").inc()


def unregister_kernel(name: str) -> None:
    """Remove a kernel registration (raises ReproError if absent)."""
    if name not in _FACTORIES:
        raise ReproError(
            f"unknown kernel {name!r}; available: {sorted(_FACTORIES)}"
        )
    del _FACTORIES[name]
