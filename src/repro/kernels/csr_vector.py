"""The paper's contributed kernel: vector-CSR SpMV with cooperative groups.

One 32-thread warp processes each matrix row (the Bell & Garland "vector
CSR kernel" adapted to CUDA cooperative groups):

* the warp strides through the row in chunks of 32, so consecutive lanes
  load *consecutive* values/indices — fully coalesced (the paper's central
  optimization over one-thread-per-row);
* each lane keeps a private partial sum over its strided elements;
* a ``cg::reduce`` butterfly tree combines the 32 lane sums;
* lane 0 writes the row result.

The functional half below executes that arithmetic bit-exactly (lane
accumulation in ascending chunk order, then the 5-round butterfly from
:class:`repro.gpu.coop.WarpTile`), vectorized across all warps by grouping
rows with equal iteration counts.  Determinism of the order is what makes
the kernel bitwise reproducible — the RayStation requirement.

Mixed precision: matrix values are stored half (or single/double), widened
to the accumulation precision inside the FMA; input/output vectors are
double in the Half/Double configuration the paper contributes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.coop import WarpTile
from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts, warp_work, workload_profile
from repro.gpu.launch import warp_per_row_launch
from repro.gpu.memory import (
    contiguous_stream_bytes,
    gather_traffic,
    output_write_bytes,
)
from repro.gpu.timing import KernelTraits, TimingEstimate, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.kernels.plan import (
    SpMVPlan,
    execute_plan,
    get_plan_cache,
    validate_plan_for,
)
from repro.precision.types import HALF_DOUBLE, SINGLE, MixedPrecision
from repro.sparse.csr import CSRMatrix
from repro.util.errors import DTypeError, ShapeError
from repro.util.rng import RngLike

WARP = 32


def warp_csr_spmv_exact(
    matrix: CSRMatrix, x: np.ndarray, accum_dtype: np.dtype
) -> np.ndarray:
    """Functional execution with the exact warp reduction order.

    Rows are bucketed by their inner-loop iteration count ``ceil(len/32)``
    and each bucket is executed vectorized: iteration ``j`` adds chunk ``j``
    into the 32 lane accumulators, then one butterfly reduce per row.
    """
    x = np.asarray(x)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(f"x has shape {x.shape}, expected ({matrix.n_cols},)")
    accum_dtype = np.dtype(accum_dtype)
    xa = x.astype(accum_dtype, copy=False)
    tile = WarpTile(WARP)
    lengths = matrix.row_lengths().astype(np.int64)
    indptr = matrix.indptr.astype(np.int64)
    y = np.zeros(matrix.n_rows, dtype=accum_dtype)

    iters = (lengths + WARP - 1) // WARP
    lane_ids = np.arange(WARP, dtype=np.int64)
    for j_count in np.unique(iters):
        if j_count == 0:
            continue  # empty rows: the warp writes y[i] = 0 (already zero)
        rows = np.flatnonzero(iters == j_count)
        base = indptr[rows]
        lens = lengths[rows]
        lane_acc = np.zeros((rows.size, WARP), dtype=accum_dtype)
        for j in range(int(j_count)):
            offset = j * WARP
            pos = base[:, None] + offset + lane_ids[None, :]
            valid = (offset + lane_ids[None, :]) < lens[:, None]
            pos_safe = np.where(valid, pos, 0)
            vals = matrix.data[pos_safe].astype(accum_dtype)
            cols = matrix.indices[pos_safe].astype(np.int64)
            contrib = vals * xa[cols]
            lane_acc += np.where(valid, contrib, accum_dtype.type(0))
        y[rows] = tile.reduce_add(lane_acc)
    return y


class VectorCSRKernel(SpMVKernel):
    """Warp-per-row CSR SpMV with cooperative-group reductions.

    Parameterized by a :class:`MixedPrecision`; the two named
    configurations from the paper are exposed as
    :data:`HalfDoubleKernel` and :data:`SingleKernel` factories below.
    """

    reproducible = True
    #: streams CSR exactly once — counters must match the analytic model.
    traffic_model_exact = True
    #: default block size: the Figure 4 sweep found 512 best for this kernel.
    default_threads_per_block = 512  # analyze: allow[RA108] -- measured Fig-4 default
    #: which precompiled-plan family this kernel executes.
    plan_family = "vector"

    def __init__(self, precision: MixedPrecision, name: Optional[str] = None):
        self.precision = precision
        self.name = name or f"vector_csr[{precision.name}]"
        self.traits = KernelTraits(
            row_overhead_bytes=128.0,
            warp_per_row=True,
            uses_atomics=False,
        )

    # ------------------------------------------------------------------ #

    def _check_matrix(self, matrix: CSRMatrix) -> None:
        if not isinstance(matrix, CSRMatrix):
            raise DTypeError(
                f"{self.name} operates on CSR matrices, got {type(matrix).__name__}"
            )
        if matrix.value_dtype != self.precision.matrix.dtype:
            raise DTypeError(
                f"{self.name} expects matrix values in "
                f"{self.precision.matrix.dtype}, got {matrix.value_dtype}; "
                "convert with CSRMatrix.astype first"
            )

    def _counters(
        self, matrix: CSRMatrix, device: DeviceSpec
    ) -> PerfCounters:
        """Accounting half: DRAM/L2 traffic of the warp-per-row pattern."""
        prec = self.precision
        lengths = matrix.row_lengths()
        n_nonempty = int(np.count_nonzero(lengths))
        work = warp_work(matrix, WARP)
        c = PerfCounters()
        c.flops = 2.0 * matrix.nnz
        # Matrix values and column indices stream through once, coalesced.
        # The payload scales with nnz; the per-row sector-alignment slack
        # (a row may start mid-sector) scales with the row count, so it is
        # booked under dram_bytes_rows to extrapolate correctly.
        c.dram_bytes_nnz = contiguous_stream_bytes(
            matrix.nnz, prec.matrix.nbytes, device.sector_bytes
        ) + contiguous_stream_bytes(matrix.nnz, prec.index_bytes, device.sector_bytes)
        alignment_slack = n_nonempty * device.sector_bytes  # half sector x 2 arrays
        # One row_ptr entry per row (amortized; the paper's 4 bytes/row)
        # plus the output-vector write (8 bytes/row).
        c.dram_bytes_rows = (
            contiguous_stream_bytes(matrix.n_rows + 1, 4, device.sector_bytes)
            + output_write_bytes(
                matrix.n_rows, prec.vector.nbytes, device.sector_bytes
            )
            + alignment_slack
        )
        gather = gather_traffic(
            matrix.indices, prec.vector.nbytes, matrix.n_cols, device
        )
        c.dram_bytes_cols = gather.compulsory_dram_bytes
        c.dram_bytes_refetch = gather.refetch_dram_bytes
        c.l2_bytes = c.dram_bytes_nnz + gather.l2_bytes
        c.l2_bytes_rows = c.dram_bytes_rows
        c.warp_iterations = work.iterations
        c.partial_waste_bytes = work.idle_lane_slots * prec.bytes_per_nonzero()
        c.n_warps = work.n_warps
        c.rows_processed = matrix.n_rows
        # Address arithmetic + loop bookkeeping: ~2 thread-instructions per
        # stored value plus the 5-round reduce per row (the latter scales
        # with the row count when extrapolating).
        c.aux_instructions = 2.0 * matrix.nnz
        c.aux_instructions_rows = 5.0 * WARP * matrix.n_rows
        return c

    def multi_counters(
        self, matrix: CSRMatrix, device: DeviceSpec, batch: int = 1
    ) -> PerfCounters:
        """Traffic of the SpMM path evaluating ``batch`` vectors at once.

        The matrix stream (values, indices, row pointers, alignment
        slack) is paid once for the whole batch; everything proportional
        to a weight vector — FLOPs, the input-vector gather with its
        refetch, the output write, the per-row reduce — scales with
        ``batch``.  At ``batch == 1`` this returns exactly
        :meth:`_counters`, so a degenerate batch reproduces the
        single-vector timing bit for bit.
        """
        if batch < 1:
            raise ShapeError(f"batch must be >= 1, got {batch}")
        c = self._counters(matrix, device)
        if batch == 1:
            return c
        prec = self.precision
        extra = float(batch - 1)
        gather = gather_traffic(
            matrix.indices, prec.vector.nbytes, matrix.n_cols, device
        )
        out_bytes = output_write_bytes(
            matrix.n_rows, prec.vector.nbytes, device.sector_bytes
        )
        c.flops += extra * 2.0 * matrix.nnz
        c.dram_bytes_cols += extra * gather.compulsory_dram_bytes
        c.dram_bytes_refetch += extra * gather.refetch_dram_bytes
        c.dram_bytes_rows += extra * out_bytes
        c.l2_bytes += extra * gather.l2_bytes
        c.l2_bytes_rows += extra * out_bytes
        # One extra FMA's addressing per stored value per extra column
        # (the chunk gather itself is shared), plus one reduce per row
        # per extra column.
        c.aux_instructions += extra * matrix.nnz
        c.aux_instructions_rows += extra * 5.0 * WARP * matrix.n_rows
        return c

    def prepare_plan(self, matrix: CSRMatrix) -> SpMVPlan:
        """Compile (or fetch from the process-global cache) the execution
        plan this kernel needs for ``matrix``."""
        self._check_matrix(matrix)
        return get_plan_cache().get_or_compile(
            matrix, self.plan_family, self.precision.accumulate.dtype
        )

    def model_timing(
        self,
        matrix: CSRMatrix,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        batch: int = 1,
    ) -> TimingEstimate:
        """Timing-only estimate: counters + analytic model, no functional
        execution.

        The sharded evaluator and the autotuner price candidate
        execution configurations with this — timing depends only on the
        matrix structure, the device and the launch configuration, never
        on the weight values, so re-running the arithmetic per candidate
        would be pure waste.  At ``batch == 1`` the estimate equals the
        one :meth:`run` attaches bit for bit.
        """
        self._check_matrix(matrix)
        tpb = threads_per_block or self.default_threads_per_block
        launch = warp_per_row_launch(
            matrix.n_rows, tpb, device.warp_size
        ).validate(device)
        counters = attach_launch_counts(
            self.multi_counters(matrix, device, batch),
            launch,
            device.warp_size,
        )
        profile = workload_profile(matrix)
        return estimate_gpu_time(
            device,
            launch,
            counters,
            self.traits_for(profile),
            profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )

    def run(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
        plan: Optional[SpMVPlan] = None,
    ) -> KernelResult:
        self._check_matrix(matrix)
        tpb = threads_per_block or self.default_threads_per_block
        launch = warp_per_row_launch(matrix.n_rows, tpb, device.warp_size).validate(
            device
        )
        if plan is not None:
            validate_plan_for(
                plan, matrix, self.plan_family, self.precision.accumulate.dtype
            )
            y = execute_plan(plan, x)
        else:
            y = warp_csr_spmv_exact(matrix, x, self.precision.accumulate.dtype)
        counters = attach_launch_counts(
            self._counters(matrix, device), launch, device.warp_size
        )
        profile = workload_profile(matrix)
        traits = self.traits_for(profile)
        timing = estimate_gpu_time(
            device,
            launch,
            counters,
            traits,
            profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )
        return KernelResult(
            kernel=self.name,
            device=device,
            launch=launch,
            y=y.astype(np.float64),
            counters=counters,
            timing=timing,
            traits=traits,
            profile=profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )


def HalfDoubleKernel() -> VectorCSRKernel:
    """The paper's contribution: half-stored matrix, double vectors."""
    return VectorCSRKernel(HALF_DOUBLE, name="half_double")


def SingleKernel() -> VectorCSRKernel:
    """Single-precision variant used for the library comparison (Fig. 6)."""
    return VectorCSRKernel(SINGLE, name="single")
