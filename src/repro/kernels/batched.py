"""Batched plan-level SpMV execution and optimization-time projection.

One optimizer iteration evaluates EVERY beam's dose (Section II: "Dose
distributions from multiple beams ... must be computed in each iteration
of an optimization procedure").  A naive port launches one kernel per
beam per iteration; a production integration batches them (CUDA graphs /
back-to-back launches on one stream), paying the fixed launch latency once
per batch instead of once per kernel.

:func:`run_plan_spmv` executes all beams of a plan through one kernel and
merges counters/timing with that amortization; :func:`project_optimization`
turns per-iteration timings into the quantity the paper's conclusion is
about — "a significant speedup in optimization times and time-to-treatment".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts
from repro.gpu.timing import KERNEL_LAUNCH_OVERHEAD_S, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.kernels.plan import SpMVPlan, execute_plan_multi
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class PlanSpMVResult:
    """Outcome of one batched multi-beam dose calculation."""

    per_beam: List[KernelResult]
    #: total modelled time with launch overhead amortized across the batch.
    batched_time_s: float
    #: sum of stand-alone kernel times (the unbatched comparison).
    unbatched_time_s: float

    @property
    def doses(self) -> List[np.ndarray]:
        return [r.y for r in self.per_beam]

    @property
    def total_dose(self) -> np.ndarray:
        """Summed dose across beams (all beams share the dose grid)."""
        total = np.zeros_like(self.per_beam[0].y)
        for r in self.per_beam:
            total += r.y
        return total

    @property
    def launch_overhead_saved_s(self) -> float:
        return self.unbatched_time_s - self.batched_time_s


def run_plan_spmv(
    kernel: SpMVKernel,
    matrices: Sequence,
    weights: Sequence[np.ndarray],
    device: DeviceSpec = A100,
) -> PlanSpMVResult:
    """Execute one dose calculation for every beam of a plan.

    The batch pays the fixed kernel-launch overhead once; each kernel's
    compute/memory time is unchanged (they run back to back on the same
    stream, not concurrently — SpMV saturates the device on its own).
    """
    if len(matrices) != len(weights):
        raise ShapeError(
            f"{len(matrices)} matrices but {len(weights)} weight vectors"
        )
    if not matrices:
        raise ShapeError("need at least one beam")
    converted: List[np.ndarray] = []
    for i, (matrix, w) in enumerate(zip(matrices, weights)):
        w = np.asarray(w)
        if w.ndim != 1 or matrix.n_cols != w.shape[0]:
            raise ShapeError(
                f"beam {i}: matrix has {matrix.n_cols} columns but weight "
                f"vector has shape {w.shape}"
            )
        converted.append(w)
    results = [
        kernel.run(matrix, w, device=device)
        for matrix, w in zip(matrices, converted)
    ]
    n_rows = {r.y.shape[0] for r in results}
    if len(n_rows) != 1:
        raise ShapeError("all beams must share the dose grid")
    unbatched = sum(r.timing.time_s for r in results)
    batched = unbatched - (len(results) - 1) * KERNEL_LAUNCH_OVERHEAD_S
    return PlanSpMVResult(
        per_beam=results,
        batched_time_s=batched,
        unbatched_time_s=unbatched,
    )


@dataclass(frozen=True)
class MultiVectorSpMVResult:
    """Outcome of one micro-batched multi-vector dose calculation.

    One matrix, many weight vectors — the SpMM view ``D = A @ W`` the
    serving layer's micro-batcher produces when it coalesces same-plan
    evaluation requests.  Each column is evaluated with the kernel's
    exact per-vector reduction order, so every per-request dose is
    bitwise identical to a stand-alone ``A @ w`` evaluation: batching
    changes *when* work runs and what launch overhead costs, never a
    single result bit.
    """

    per_vector: List[KernelResult]
    #: modelled time with launch overhead paid once for the whole batch.
    batched_time_s: float
    #: sum of stand-alone kernel times (the sequential comparison).
    unbatched_time_s: float
    #: True when the batch ran through the precompiled-plan SpMM path
    #: (matrix streamed once for all vectors), False for the
    #: launch-overhead-only back-to-back model.
    spmm: bool = False
    #: number of row shards the evaluation ran across (1 = single device;
    #: >1 means a :class:`repro.dist.ShardedServeBackend` produced it).
    shards: int = 1

    @property
    def doses(self) -> List[np.ndarray]:
        return [r.y for r in self.per_vector]

    @property
    def batch_size(self) -> int:
        return len(self.per_vector)

    @property
    def launch_overhead_saved_s(self) -> float:
        return self.unbatched_time_s - self.batched_time_s

    @property
    def amortization(self) -> float:
        """Sequential time over batched time (>= 1; == 1 for one vector)."""
        return self.unbatched_time_s / self.batched_time_s


def spmm_batched_time(
    kernel: SpMVKernel,
    matrix,
    first: KernelResult,
    batch: int,
    device: DeviceSpec,
) -> float:
    """Modelled time of one SpMM launch evaluating ``batch`` vectors.

    Rebuilds the timing estimate from :meth:`multi_counters` with the
    first result's launch/traits/profile; at ``batch == 1`` the counters
    are exactly the single-vector counters, so the estimate reproduces
    ``first.timing.time_s`` bit for bit.
    """
    counters = attach_launch_counts(
        kernel.multi_counters(matrix, device, batch),
        first.launch,
        device.warp_size,
    )
    timing = estimate_gpu_time(
        device,
        first.launch,
        counters,
        first.traits,
        first.profile,
        accum_bytes=first.accum_bytes,
    )
    return timing.time_s


def run_multi_spmv(
    kernel: SpMVKernel,
    matrix,
    weight_vectors: Sequence[np.ndarray],
    device: DeviceSpec = A100,
    plan: Optional[SpMVPlan] = None,
) -> MultiVectorSpMVResult:
    """Evaluate ``A @ w`` for many weight vectors against one matrix.

    Kernels with a precompiled-plan family take the true SpMM path: the
    plan (passed in, or fetched from the process-global cache) evaluates
    all vectors per gathered chunk via
    :func:`repro.kernels.plan.execute_plan_multi`, streaming the matrix
    once for the whole batch.  Every per-vector dose stays bitwise
    identical to a stand-alone evaluation — the fast path changes cost,
    never results.  Kernels without plan support fall back to
    back-to-back launches whose batch saves only launch overhead.

    This is the execution primitive behind the serving layer's request
    coalescing.
    """
    if not weight_vectors:
        raise ShapeError("need at least one weight vector")
    arrays: List[np.ndarray] = []
    for i, w in enumerate(weight_vectors):
        w = np.asarray(w)
        if w.ndim != 1 or matrix.n_cols != w.shape[0]:
            raise ShapeError(
                f"vector {i}: matrix has {matrix.n_cols} columns but weight "
                f"vector has shape {w.shape}"
            )
        arrays.append(w)
    spmm = plan is not None or hasattr(kernel, "prepare_plan")
    if spmm:
        if plan is None:
            plan = kernel.prepare_plan(matrix)
        first = kernel.run(matrix, arrays[0], device=device, plan=plan)
        results = [first]
        if len(arrays) > 1:
            doses = execute_plan_multi(plan, arrays)
            for b in range(1, len(arrays)):
                results.append(
                    replace(first, y=doses[:, b].astype(np.float64))
                )
        unbatched = len(arrays) * first.timing.time_s
        if hasattr(kernel, "multi_counters"):
            batched = spmm_batched_time(
                kernel, matrix, first, len(arrays), device
            )
        else:
            batched = unbatched - (len(arrays) - 1) * KERNEL_LAUNCH_OVERHEAD_S
    else:
        results = [kernel.run(matrix, w, device=device) for w in arrays]
        unbatched = sum(r.timing.time_s for r in results)
        batched = unbatched - (len(results) - 1) * KERNEL_LAUNCH_OVERHEAD_S
    return MultiVectorSpMVResult(
        per_vector=results,
        batched_time_s=batched,
        unbatched_time_s=unbatched,
        spmm=spmm,
    )


@dataclass(frozen=True)
class OptimizationProjection:
    """Projected dose-calculation time of a full plan optimization."""

    kernel: str
    device: str
    n_iterations: int
    n_beams: int
    #: forward dose products only (gradients cost a comparable transpose
    #: product; ``include_gradients`` doubles the count).
    spmv_time_per_iteration_s: float
    total_time_s: float

    def speedup_vs(self, other: "OptimizationProjection") -> float:
        """other.time / this.time (how much faster this configuration is)."""
        return other.total_time_s / self.total_time_s


def project_optimization(
    plan_result: PlanSpMVResult,
    kernel_name: str,
    device_name: str,
    n_iterations: int = 300,
    include_gradients: bool = True,
) -> OptimizationProjection:
    """Project a full optimization's dose-calculation time.

    ``n_iterations`` defaults to a typical clinical IMPT optimization
    length; gradients require ``A^T`` products of the same size, modelled
    as costing one forward product each.
    """
    if n_iterations <= 0:
        raise ValueError(f"n_iterations must be positive, got {n_iterations}")
    per_iter = plan_result.batched_time_s * (2.0 if include_gradients else 1.0)
    return OptimizationProjection(
        kernel=kernel_name,
        device=device_name,
        n_iterations=n_iterations,
        n_beams=len(plan_result.per_beam),
        spmv_time_per_iteration_s=per_iter,
        total_time_s=per_iter * n_iterations,
    )
