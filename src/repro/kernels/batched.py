"""Batched plan-level SpMV execution and optimization-time projection.

One optimizer iteration evaluates EVERY beam's dose (Section II: "Dose
distributions from multiple beams ... must be computed in each iteration
of an optimization procedure").  A naive port launches one kernel per
beam per iteration; a production integration batches them (CUDA graphs /
back-to-back launches on one stream), paying the fixed launch latency once
per batch instead of once per kernel.

:func:`run_plan_spmv` executes all beams of a plan through one kernel and
merges counters/timing with that amortization; :func:`project_optimization`
turns per-iteration timings into the quantity the paper's conclusion is
about — "a significant speedup in optimization times and time-to-treatment".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.gpu.device import A100, DeviceSpec
from repro.gpu.timing import KERNEL_LAUNCH_OVERHEAD_S
from repro.kernels.base import KernelResult, SpMVKernel
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class PlanSpMVResult:
    """Outcome of one batched multi-beam dose calculation."""

    per_beam: List[KernelResult]
    #: total modelled time with launch overhead amortized across the batch.
    batched_time_s: float
    #: sum of stand-alone kernel times (the unbatched comparison).
    unbatched_time_s: float

    @property
    def doses(self) -> List[np.ndarray]:
        return [r.y for r in self.per_beam]

    @property
    def total_dose(self) -> np.ndarray:
        """Summed dose across beams (all beams share the dose grid)."""
        total = np.zeros_like(self.per_beam[0].y)
        for r in self.per_beam:
            total += r.y
        return total

    @property
    def launch_overhead_saved_s(self) -> float:
        return self.unbatched_time_s - self.batched_time_s


def run_plan_spmv(
    kernel: SpMVKernel,
    matrices: Sequence,
    weights: Sequence[np.ndarray],
    device: DeviceSpec = A100,
) -> PlanSpMVResult:
    """Execute one dose calculation for every beam of a plan.

    The batch pays the fixed kernel-launch overhead once; each kernel's
    compute/memory time is unchanged (they run back to back on the same
    stream, not concurrently — SpMV saturates the device on its own).
    """
    if len(matrices) != len(weights):
        raise ShapeError(
            f"{len(matrices)} matrices but {len(weights)} weight vectors"
        )
    if not matrices:
        raise ShapeError("need at least one beam")
    for i, (matrix, w) in enumerate(zip(matrices, weights)):
        w = np.asarray(w)
        if w.ndim != 1 or matrix.n_cols != w.shape[0]:
            raise ShapeError(
                f"beam {i}: matrix has {matrix.n_cols} columns but weight "
                f"vector has shape {w.shape}"
            )
    results = [
        kernel.run(matrix, w, device=device)
        for matrix, w in zip(matrices, weights)
    ]
    n_rows = {r.y.shape[0] for r in results}
    if len(n_rows) != 1:
        raise ShapeError("all beams must share the dose grid")
    unbatched = sum(r.timing.time_s for r in results)
    batched = unbatched - (len(results) - 1) * KERNEL_LAUNCH_OVERHEAD_S
    return PlanSpMVResult(
        per_beam=results,
        batched_time_s=batched,
        unbatched_time_s=unbatched,
    )


@dataclass(frozen=True)
class MultiVectorSpMVResult:
    """Outcome of one micro-batched multi-vector dose calculation.

    One matrix, many weight vectors — the SpMM view ``D = A @ W`` the
    serving layer's micro-batcher produces when it coalesces same-plan
    evaluation requests.  Each column is evaluated with the kernel's
    exact per-vector reduction order, so every per-request dose is
    bitwise identical to a stand-alone ``A @ w`` evaluation: batching
    changes *when* work runs and what launch overhead costs, never a
    single result bit.
    """

    per_vector: List[KernelResult]
    #: modelled time with launch overhead paid once for the whole batch.
    batched_time_s: float
    #: sum of stand-alone kernel times (the sequential comparison).
    unbatched_time_s: float

    @property
    def doses(self) -> List[np.ndarray]:
        return [r.y for r in self.per_vector]

    @property
    def batch_size(self) -> int:
        return len(self.per_vector)

    @property
    def launch_overhead_saved_s(self) -> float:
        return self.unbatched_time_s - self.batched_time_s

    @property
    def amortization(self) -> float:
        """Sequential time over batched time (>= 1; == 1 for one vector)."""
        return self.unbatched_time_s / self.batched_time_s


def run_multi_spmv(
    kernel: SpMVKernel,
    matrix,
    weight_vectors: Sequence[np.ndarray],
    device: DeviceSpec = A100,
) -> MultiVectorSpMVResult:
    """Evaluate ``A @ w`` for many weight vectors against one matrix.

    The batch pays the fixed kernel-launch overhead once (back-to-back
    launches on one stream); each vector's compute/memory time is
    unchanged.  This is the execution primitive behind the serving
    layer's request coalescing.
    """
    if not weight_vectors:
        raise ShapeError("need at least one weight vector")
    for i, w in enumerate(weight_vectors):
        w = np.asarray(w)
        if w.ndim != 1 or matrix.n_cols != w.shape[0]:
            raise ShapeError(
                f"vector {i}: matrix has {matrix.n_cols} columns but weight "
                f"vector has shape {w.shape}"
            )
    results = [kernel.run(matrix, w, device=device) for w in weight_vectors]
    unbatched = sum(r.timing.time_s for r in results)
    batched = unbatched - (len(results) - 1) * KERNEL_LAUNCH_OVERHEAD_S
    return MultiVectorSpMVResult(
        per_vector=results,
        batched_time_s=batched,
        unbatched_time_s=unbatched,
    )


@dataclass(frozen=True)
class OptimizationProjection:
    """Projected dose-calculation time of a full plan optimization."""

    kernel: str
    device: str
    n_iterations: int
    n_beams: int
    #: forward dose products only (gradients cost a comparable transpose
    #: product; ``include_gradients`` doubles the count).
    spmv_time_per_iteration_s: float
    total_time_s: float

    def speedup_vs(self, other: "OptimizationProjection") -> float:
        """other.time / this.time (how much faster this configuration is)."""
        return other.total_time_s / self.total_time_s


def project_optimization(
    plan_result: PlanSpMVResult,
    kernel_name: str,
    device_name: str,
    n_iterations: int = 300,
    include_gradients: bool = True,
) -> OptimizationProjection:
    """Project a full optimization's dose-calculation time.

    ``n_iterations`` defaults to a typical clinical IMPT optimization
    length; gradients require ``A^T`` products of the same size, modelled
    as costing one forward product each.
    """
    if n_iterations <= 0:
        raise ValueError(f"n_iterations must be positive, got {n_iterations}")
    per_iter = plan_result.batched_time_s * (2.0 if include_gradients else 1.0)
    return OptimizationProjection(
        kernel=kernel_name,
        device=device_name,
        n_iterations=n_iterations,
        n_beams=len(plan_result.per_beam),
        spmv_time_per_iteration_s=per_iter,
        total_time_s=per_iter * n_iterations,
    )
