"""Scalar-CSR SpMV: one thread per row (Bell & Garland's naive kernel).

Included as the ablation contrast motivating the paper's warp-per-row
choice.  With one thread per row, at each inner-loop step the 32 threads of
a warp read elements from 32 *different* rows — nothing coalesces, every
load becomes its own sector transaction, and the warp runs as long as its
longest row (lane divergence).  On the heavy-tailed dose deposition
matrices both effects are severe, which is exactly why the paper assigns a
full warp per row instead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts, workload_profile
from repro.gpu.launch import thread_per_item_launch
from repro.gpu.memory import (
    contiguous_stream_bytes,
    gather_traffic,
    output_write_bytes,
)
from repro.gpu.timing import KernelTraits, TimingEstimate, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.kernels.plan import (
    SpMVPlan,
    execute_plan,
    get_plan_cache,
    validate_plan_for,
)
from repro.precision.types import SINGLE, MixedPrecision
from repro.sparse.csr import CSRMatrix
from repro.util.errors import DTypeError, ShapeError
from repro.util.rng import RngLike

WARP = 32


def scalar_csr_spmv_exact(
    matrix: CSRMatrix, x: np.ndarray, accum_dtype: np.dtype
) -> np.ndarray:
    """Functional execution: strict left-to-right accumulation per row.

    A single thread walks its row sequentially, so the summation order is
    sequential — deterministic, hence this kernel is also reproducible
    (its problem is performance, not correctness).
    """
    accum_dtype = np.dtype(accum_dtype)
    xa = np.asarray(x).astype(accum_dtype, copy=False)
    lengths = matrix.row_lengths().astype(np.int64)
    indptr = matrix.indptr.astype(np.int64)
    y = np.zeros(matrix.n_rows, dtype=accum_dtype)
    # Vectorize the sequential order: process "step k of every row" in one
    # shot; within a row, steps are applied in ascending k, which is
    # exactly the per-thread sequential order.
    max_len = int(lengths.max(initial=0))
    active_rows = np.flatnonzero(lengths > 0)
    acc = np.zeros(active_rows.size, dtype=accum_dtype)
    for k in range(max_len):
        live = lengths[active_rows] > k
        rows = active_rows[live]
        if rows.size == 0:
            break
        pos = indptr[rows] + k
        vals = matrix.data[pos].astype(accum_dtype)
        cols = matrix.indices[pos].astype(np.int64)
        acc_live = acc[live]
        acc[live] = acc_live + vals * xa[cols]
    y[active_rows] = acc
    return y


class ScalarCSRKernel(SpMVKernel):
    """One-thread-per-row CSR SpMV (the uncoalesced contrast kernel)."""

    reproducible = True
    traffic_model_exact = True
    default_threads_per_block = 128  # analyze: allow[RA108] -- measured Fig-4 default
    #: which precompiled-plan family this kernel executes.
    plan_family = "scalar"

    def __init__(self, precision: MixedPrecision = SINGLE):
        self.precision = precision
        self.name = f"scalar_csr[{precision.name}]"
        self.traits = KernelTraits(
            row_overhead_bytes=32.0,  # no warp reduce; just pointer + write
            warp_per_row=False,
            uses_atomics=False,
        )

    def _counters(self, matrix: CSRMatrix, device: DeviceSpec) -> PerfCounters:
        prec = self.precision
        lengths = matrix.row_lengths().astype(np.int64)
        c = PerfCounters()
        c.flops = 2.0 * matrix.nnz
        # Each load is its own sector transaction (no intra-warp
        # coalescing), but a thread reuses its row's sector for the
        # ``sector/elem`` consecutive elements it covers, so *DRAM*
        # compulsory traffic matches the footprint while L2 sees one
        # transaction per element.
        c.dram_bytes_nnz = (
            contiguous_stream_bytes(matrix.nnz, prec.matrix.nbytes)
            + contiguous_stream_bytes(matrix.nnz, prec.index_bytes)
        )
        c.dram_bytes_rows = contiguous_stream_bytes(
            matrix.n_rows + 1, 4
        ) + output_write_bytes(matrix.n_rows, prec.vector.nbytes)
        gather = gather_traffic(
            matrix.indices, prec.vector.nbytes, matrix.n_cols, device
        )
        c.dram_bytes_cols = gather.compulsory_dram_bytes
        c.dram_bytes_refetch = gather.refetch_dram_bytes
        # One full sector of L2 traffic per element load: the uncoalesced
        # penalty that makes this kernel L2-transaction bound.
        c.l2_bytes = 2.0 * matrix.nnz * device.sector_bytes + gather.l2_bytes
        c.l2_bytes_rows = c.dram_bytes_rows
        # Divergence: each warp of 32 consecutive rows runs for the longest
        # row among them.
        n_warps = (matrix.n_rows + WARP - 1) // WARP
        pad = np.zeros(n_warps * WARP, dtype=np.int64)
        pad[: matrix.n_rows] = lengths
        warp_max = pad.reshape(n_warps, WARP).max(axis=1)
        executed_slots = float(warp_max.sum()) * WARP
        c.warp_iterations = float(warp_max.sum())
        c.partial_waste_bytes = (
            executed_slots - float(matrix.nnz)
        ) * prec.bytes_per_nonzero()
        c.n_warps = n_warps
        c.rows_processed = matrix.n_rows
        c.aux_instructions = 2.0 * matrix.nnz
        return c

    def _check_matrix(self, matrix: CSRMatrix) -> None:
        if not isinstance(matrix, CSRMatrix):
            raise DTypeError(
                f"{self.name} operates on CSR matrices, got {type(matrix).__name__}"
            )
        if matrix.value_dtype != self.precision.matrix.dtype:
            raise DTypeError(
                f"{self.name} expects {self.precision.matrix.dtype} values, "
                f"got {matrix.value_dtype}"
            )

    def prepare_plan(self, matrix: CSRMatrix) -> SpMVPlan:
        """Compile (or fetch from the process-global cache) the execution
        plan this kernel needs for ``matrix``."""
        self._check_matrix(matrix)
        return get_plan_cache().get_or_compile(
            matrix, self.plan_family, self.precision.accumulate.dtype
        )

    def model_timing(
        self,
        matrix: CSRMatrix,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        batch: int = 1,
    ) -> TimingEstimate:
        """Timing-only estimate (no functional execution); ``batch == 1``
        equals the estimate :meth:`run` attaches bit for bit.

        The scalar kernel has no SpMM traffic model, so a ``batch > 1``
        estimate is refused — the sharded evaluator falls back to its
        launch-amortization formula for kernels without one.
        """
        self._check_matrix(matrix)
        if batch != 1:
            raise ShapeError(
                f"{self.name} models single-vector timing only, got batch={batch}"
            )
        tpb = threads_per_block or self.default_threads_per_block
        launch = thread_per_item_launch(matrix.n_rows, tpb).validate(device)
        counters = attach_launch_counts(
            self._counters(matrix, device), launch, device.warp_size
        )
        return estimate_gpu_time(
            device,
            launch,
            counters,
            self.traits,
            workload_profile(matrix),
            accum_bytes=self.precision.accumulate.nbytes,
        )

    def run(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
        plan: Optional[SpMVPlan] = None,
    ) -> KernelResult:
        self._check_matrix(matrix)
        tpb = threads_per_block or self.default_threads_per_block
        launch = thread_per_item_launch(matrix.n_rows, tpb).validate(device)
        if plan is not None:
            validate_plan_for(
                plan, matrix, self.plan_family, self.precision.accumulate.dtype
            )
            y = execute_plan(plan, x)
        else:
            y = scalar_csr_spmv_exact(matrix, x, self.precision.accumulate.dtype)
        counters = attach_launch_counts(
            self._counters(matrix, device), launch, device.warp_size
        )
        profile = workload_profile(matrix)
        timing = estimate_gpu_time(
            device,
            launch,
            counters,
            self.traits,
            profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )
        return KernelResult(
            kernel=self.name,
            device=device,
            launch=launch,
            y=y.astype(np.float64),
            counters=counters,
            timing=timing,
            traits=self.traits,
            profile=profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )
