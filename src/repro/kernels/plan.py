"""Precompiled, immutable SpMV execution plans and the true SpMM path.

The paper's workload evaluates ``d = A @ w`` thousands of times per
optimization against a *fixed* deposition matrix, yet the per-call
functional kernels re-derive everything that depends only on ``A`` on
every evaluation: row-length bucketing, ``ceil(len/32)`` iteration
counts, gather-position arithmetic, tail masks, and the half->double
widening of every stored value.  An :class:`SpMVPlan` hoists all of that
into a one-time compile (the structure-exploiting preprocessing Ginkgo
and cuSPARSE apply on ``Analysis``/``apply`` splits), so a repeated
evaluation only gathers, multiplies, and reduces.

Two executors consume a plan:

* :func:`execute_plan` — one weight vector, bitwise identical to the
  per-call kernels (:func:`repro.kernels.csr_vector.warp_csr_spmv_exact`
  / :func:`repro.kernels.csr_scalar.scalar_csr_spmv_exact`);
* :func:`execute_plan_multi` — the SpMM fast path: all ``B`` weight
  vectors of a micro-batch are evaluated per gathered chunk (one index
  gather shared across columns, lane accumulators carrying a leading
  batch axis), while every arithmetic step stays an elementwise
  broadcast of the single-vector step.  Each output column is therefore
  bitwise identical to a stand-alone ``A @ w`` — batching never changes
  a result bit, which is what lets the serving layer batch clinical
  traffic at all.

Plans are immutable: every ndarray a plan holds is frozen with
``writeable=False`` at construction (rule RA105 checks this statically),
so a compiled plan can be shared across worker threads without locks.

A process-global :class:`PlanCache` (LRU, single-flight) deduplicates
compilation; it reports ``plan.cache.{hit,miss,evictions}`` counters and
compilation runs under a ``plan.compile`` span.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.coop import WarpTile
from repro.obs import artifact, metrics
from repro.obs.lockwitness import guarded_lock
from repro.obs.trace import span as trace_span
from repro.sparse.csr import CSRMatrix
from repro.util.errors import DTypeError, PlanMismatchError, ShapeError

WARP = 32

#: kernel families a plan can target (one warp per row / one thread per
#: row — the two deterministic reduction orders in the kernel library).
PLAN_FAMILIES: Tuple[str, ...] = ("vector", "scalar")


def _freeze_arrays(obj: object) -> None:
    """Set ``writeable=False`` on every ndarray field of a dataclass."""
    for f in fields(obj):  # type: ignore[arg-type]
        value = getattr(obj, f.name)
        if isinstance(value, np.ndarray):
            value.setflags(write=False)


@dataclass(frozen=True)
class WarpRowGroup:
    """All rows sharing one inner-loop iteration count, fully precomputed.

    For ``n`` rows needing ``iterations`` chunks of 32, the arrays hold
    chunk ``j`` of row ``r`` at ``[r, j, :]`` — exactly the operands the
    per-call kernel recomputes from ``indptr`` on every evaluation:

    * ``cols``   — clamped gather positions into the input vector;
    * ``values`` — stored values pre-widened to the accumulation dtype
      (the half->double ``astype`` that dominates the per-call cost);
    * ``valid``  — tail mask for lanes past the end of the row.
    """

    iterations: int
    rows: np.ndarray  # (n,) int64 row indices
    cols: np.ndarray  # (n, iterations, WARP) int64 column indices
    values: np.ndarray  # (n, iterations, WARP) accumulation dtype
    valid: np.ndarray  # (n, iterations, WARP) bool tail masks

    def __post_init__(self) -> None:
        _freeze_arrays(self)


@dataclass(frozen=True)
class ScalarStep:
    """Step ``k`` of the scalar kernel's sequential row walk.

    ``live`` indexes the rows (within the plan's active-row array) whose
    length exceeds ``k``; ``values``/``cols`` are the pre-widened element
    and its gather position for each live row.
    """

    live: np.ndarray  # (m,) int64 indices into the active-row accumulator
    values: np.ndarray  # (m,) accumulation dtype
    cols: np.ndarray  # (m,) int64 column indices

    def __post_init__(self) -> None:
        _freeze_arrays(self)


@dataclass(frozen=True)
class SpMVPlan:
    """An immutable compiled execution plan for one (matrix, family,
    accumulation precision) triple.

    The plan keeps strong references to the source matrix's ``data`` and
    ``indices`` arrays: :meth:`matches` is an identity check, and the
    references guarantee the identity stays unambiguous for the plan's
    lifetime (an ``id`` cannot be recycled while the plan is alive).
    """

    family: str
    n_rows: int
    n_cols: int
    nnz: int
    value_dtype: np.dtype
    accum_dtype: np.dtype
    #: vector family: one group per distinct iteration count.
    groups: Tuple[WarpRowGroup, ...]
    #: scalar family: one step per inner-loop trip, plus the active rows.
    scalar_steps: Tuple[ScalarStep, ...]
    scalar_rows: np.ndarray
    #: identity anchors into the source matrix (see class docstring).
    source_data: np.ndarray
    source_indices: np.ndarray

    def __post_init__(self) -> None:
        _freeze_arrays(self)

    def matches(self, matrix: CSRMatrix) -> bool:
        """True when this plan was compiled from exactly ``matrix``."""
        return (
            self.source_data is matrix.data
            and self.source_indices is matrix.indices
        )

    @property
    def nbytes(self) -> int:
        """Resident size of the compiled arrays (excluding the source)."""
        total = int(self.scalar_rows.nbytes)
        for g in self.groups:
            total += g.rows.nbytes + g.cols.nbytes
            total += g.values.nbytes + g.valid.nbytes
        for s in self.scalar_steps:
            total += s.live.nbytes + s.values.nbytes + s.cols.nbytes
        return total


# --------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------- #


def _compile_vector_groups(
    matrix: CSRMatrix, accum_dtype: np.dtype
) -> Tuple[WarpRowGroup, ...]:
    """Replicate the warp kernel's bucketing with chunk operands hoisted."""
    lengths = matrix.row_lengths().astype(np.int64)
    indptr = matrix.indptr.astype(np.int64)
    iters = (lengths + WARP - 1) // WARP
    lane_ids = np.arange(WARP, dtype=np.int64)
    groups: List[WarpRowGroup] = []
    for j_count in np.unique(iters):
        if j_count == 0:
            continue  # empty rows: the warp writes y[i] = 0 (already zero)
        rows = np.flatnonzero(iters == j_count)
        base = indptr[rows]
        lens = lengths[rows]
        # offsets[j, lane] = j*WARP + lane, the in-row element index each
        # lane touches on iteration j — the quantity the per-call kernel
        # recomputes inside its chunk loop.
        offsets = (
            np.arange(int(j_count), dtype=np.int64)[:, None] * WARP
            + lane_ids[None, :]
        )
        pos = base[:, None, None] + offsets[None, :, :]
        valid = offsets[None, :, :] < lens[:, None, None]
        pos_safe = np.where(valid, pos, 0)
        groups.append(
            WarpRowGroup(
                iterations=int(j_count),
                rows=rows,
                cols=matrix.indices[pos_safe].astype(np.int64),
                values=matrix.data[pos_safe].astype(accum_dtype),
                valid=valid,
            )
        )
    return tuple(groups)


def _compile_scalar_steps(
    matrix: CSRMatrix, accum_dtype: np.dtype
) -> Tuple[Tuple[ScalarStep, ...], np.ndarray]:
    """Precompute the scalar kernel's per-step live sets and operands."""
    lengths = matrix.row_lengths().astype(np.int64)
    indptr = matrix.indptr.astype(np.int64)
    active_rows = np.flatnonzero(lengths > 0)
    active_lens = lengths[active_rows]
    active_base = indptr[active_rows]
    steps: List[ScalarStep] = []
    for k in range(int(lengths.max(initial=0))):
        live = np.flatnonzero(active_lens > k)
        if live.size == 0:
            break
        pos = active_base[live] + k
        steps.append(
            ScalarStep(
                live=live,
                values=matrix.data[pos].astype(accum_dtype),
                cols=matrix.indices[pos].astype(np.int64),
            )
        )
    return tuple(steps), active_rows


def compile_plan(
    matrix: CSRMatrix,
    family: str = "vector",
    accum_dtype: Union[np.dtype, type] = np.float64,
) -> SpMVPlan:
    """Compile an immutable execution plan for ``matrix``.

    Everything that depends only on the matrix — bucketing, gather
    positions, tail masks, value widening — is done here, once; the
    executors below never touch ``indptr`` again.
    """
    if family not in PLAN_FAMILIES:
        raise ValueError(
            f"unknown plan family {family!r}; expected one of {PLAN_FAMILIES}"
        )
    if not isinstance(matrix, CSRMatrix):
        raise DTypeError(
            f"plans compile from CSR matrices, got {type(matrix).__name__}"
        )
    accum = np.dtype(accum_dtype)
    with trace_span(
        "plan.compile",
        family=family,
        accum=accum.name,
        rows=matrix.n_rows,
        nnz=matrix.nnz,
    ) as sp:
        if family == "vector":
            groups = _compile_vector_groups(matrix, accum)
            steps: Tuple[ScalarStep, ...] = ()
            active = np.empty(0, dtype=np.int64)
        else:
            groups = ()
            steps, active = _compile_scalar_steps(matrix, accum)
        plan = SpMVPlan(
            family=family,
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
            nnz=matrix.nnz,
            value_dtype=np.dtype(matrix.value_dtype),
            accum_dtype=accum,
            groups=groups,
            scalar_steps=steps,
            scalar_rows=active,
            source_data=matrix.data,
            source_indices=matrix.indices,
        )
        sp.set_attrs(groups=len(groups), steps=len(steps),
                     plan_bytes=plan.nbytes)
    metrics.counter("plan.compiled").inc()
    if artifact.enabled():
        artifact.record(
            "plan_compile",
            family=family, accum=accum.name,
            n_rows=matrix.n_rows, n_cols=matrix.n_cols, nnz=matrix.nnz,
            value_dtype=np.dtype(matrix.value_dtype).name,
            groups=len(plan.groups), steps=len(plan.scalar_steps),
            plan_bytes=plan.nbytes,
            matrix_fingerprint=artifact.matrix_fingerprint(matrix),
        )
    return plan


def validate_plan_for(
    plan: SpMVPlan,
    matrix: CSRMatrix,
    family: str,
    accum_dtype: Union[np.dtype, type],
) -> None:
    """Raise :class:`PlanMismatchError` unless ``plan`` fits the call."""
    if plan.family != family:
        raise PlanMismatchError(
            f"plan was compiled for the {plan.family!r} family, kernel "
            f"needs {family!r}"
        )
    if plan.accum_dtype != np.dtype(accum_dtype):
        raise PlanMismatchError(
            f"plan accumulates in {plan.accum_dtype}, kernel needs "
            f"{np.dtype(accum_dtype)}"
        )
    if not plan.matches(matrix):
        raise PlanMismatchError(
            "plan was compiled from a different matrix object; recompile "
            "with compile_plan(matrix) or fetch via the plan cache"
        )


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #


def execute_plan_into(plan: SpMVPlan, xa: np.ndarray, out: np.ndarray) -> None:
    """Evaluate one plan into a caller-owned output view.

    ``xa`` must already be cast to the plan's accumulation dtype (the
    sharded executors hoist that cast so it happens once per evaluation,
    not once per shard); ``out`` is a zero-initialized 1-D view of
    length ``plan.n_rows``.  Every accumulation happens in the plan's
    accumulation dtype; only the final per-row assignment stores into
    ``out``, so a float64 output buffer receives bitwise the same values
    ``execute_plan`` returns (float32 accumulators embed exactly).
    """
    zero = plan.accum_dtype.type(0)
    if plan.family == "vector":
        tile = WarpTile(WARP)
        for g in plan.groups:
            lane_acc = np.zeros((g.rows.size, WARP), dtype=plan.accum_dtype)
            for j in range(g.iterations):
                contrib = g.values[:, j, :] * xa[g.cols[:, j, :]]
                lane_acc += np.where(g.valid[:, j, :], contrib, zero)
            out[g.rows] = tile.reduce_add(lane_acc)
    else:
        acc = np.zeros(plan.scalar_rows.size, dtype=plan.accum_dtype)
        for step in plan.scalar_steps:
            acc[step.live] = acc[step.live] + step.values * xa[step.cols]
        out[plan.scalar_rows] = acc


def execute_plan(plan: SpMVPlan, x: np.ndarray) -> np.ndarray:
    """Evaluate ``A @ x`` from a compiled plan, bitwise identical to the
    per-call kernel of the plan's family."""
    x = np.asarray(x)
    if x.shape != (plan.n_cols,):
        raise ShapeError(f"x has shape {x.shape}, expected ({plan.n_cols},)")
    xa = x.astype(plan.accum_dtype, copy=False)
    y = np.zeros(plan.n_rows, dtype=plan.accum_dtype)
    execute_plan_into(plan, xa, y)
    return y


def execute_plan_multi(
    plan: SpMVPlan,
    weights: Union[np.ndarray, Sequence[np.ndarray]],
) -> np.ndarray:
    """The SpMM fast path: evaluate all ``B`` weight vectors per chunk.

    ``weights`` is a sequence of ``B`` vectors of length ``n_cols`` (or a
    ``(n_cols, B)`` array).  Returns the dose matrix ``(n_rows, B)``;
    column ``b`` is bitwise identical to ``execute_plan(plan, W[:, b])``.

    Per chunk the column-index gather is performed *once* and shared by
    every weight vector; the lane accumulators carry a leading batch
    axis, so each per-(row, lane) operation is an elementwise broadcast
    of the single-vector operation — same multiply, same masked add,
    same 5-round butterfly, in the same order, for every column.
    """
    if isinstance(weights, np.ndarray) and weights.ndim == 2:
        columns = [weights[:, b] for b in range(weights.shape[1])]
    else:
        columns = [np.asarray(w) for w in weights]
    if not columns:
        raise ShapeError("need at least one weight vector")
    for i, w in enumerate(columns):
        if w.shape != (plan.n_cols,):
            raise ShapeError(
                f"vector {i}: expected shape ({plan.n_cols},), got {w.shape}"
            )
    batch = len(columns)
    xt = np.empty((batch, plan.n_cols), dtype=plan.accum_dtype)
    for b, w in enumerate(columns):
        xt[b] = w.astype(plan.accum_dtype, copy=False)
    out = np.zeros((batch, plan.n_rows), dtype=plan.accum_dtype)
    execute_plan_multi_into(plan, xt, out)
    return out.T


def execute_plan_multi_into(
    plan: SpMVPlan, xt: np.ndarray, out: np.ndarray
) -> None:
    """The SpMM fast path into a caller-owned ``(B, n_rows)`` view.

    ``xt`` is the pre-cast ``(B, n_cols)`` weight block (one cast per
    evaluation, shared across shards); ``out`` is zero-initialized.
    Arithmetic is identical to :func:`execute_plan_multi` — each
    per-(row, lane) operation is an elementwise broadcast of the
    single-vector operation — only the destination differs.
    """
    batch = xt.shape[0]
    zero = plan.accum_dtype.type(0)
    if plan.family == "vector":
        tile = WarpTile(WARP)
        for g in plan.groups:
            lane_acc = np.zeros(
                (batch, g.rows.size, WARP), dtype=plan.accum_dtype
            )
            for j in range(g.iterations):
                cols_j = g.cols[:, j, :]
                gathered = xt[:, cols_j]  # one gather, all B columns
                contrib = g.values[None, :, j, :] * gathered
                lane_acc += np.where(g.valid[None, :, j, :], contrib, zero)
            out[:, g.rows] = tile.reduce_add(lane_acc)
    else:
        acc = np.zeros((batch, plan.scalar_rows.size), dtype=plan.accum_dtype)
        for step in plan.scalar_steps:
            acc[:, step.live] = (
                acc[:, step.live] + step.values[None, :] * xt[:, step.cols]
            )
        out[:, plan.scalar_rows] = acc


# --------------------------------------------------------------------- #
# transpose plans (the adjoint product A^T @ r)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TransposePlan:
    """A compiled plan for the adjoint product ``A^T @ r``.

    The optimizer's backward pass evaluates ``grad_w = A^T grad_d``
    every iteration — the same traffic volume as the forward dose
    calculation, previously served only by the exact-but-unplanned
    :meth:`repro.sparse.csr.CSRMatrix.transpose_matvec`.  A transpose
    plan materializes ``A^T`` in CSR layout once (a deterministic
    counting sort, so the transpose's bits are a pure function of
    ``A``'s) and compiles a regular :class:`SpMVPlan` for it, making the
    adjoint a first-class planned operation with the same bitwise
    contract as the forward path: each output component is reduced by
    one warp (or one sequential row walk) in a fixed order.

    ``matrix`` is the explicit transpose (``A^T`` as CSR, same value
    dtype as ``A``); ``plan`` is its compiled plan.  The identity
    anchors reference the *source* matrix ``A``, so :meth:`matches`
    answers "was this transpose plan built from exactly that forward
    matrix" — the question callers holding ``A`` actually ask.
    """

    matrix: CSRMatrix
    plan: SpMVPlan
    #: identity anchors into the forward (source) matrix ``A``.
    source_data: np.ndarray
    source_indices: np.ndarray

    def __post_init__(self) -> None:
        _freeze_arrays(self)

    @property
    def n_rows(self) -> int:
        """Rows of ``A^T`` == columns (spots) of the forward matrix."""
        return self.plan.n_rows

    @property
    def n_cols(self) -> int:
        """Columns of ``A^T`` == rows (voxels) of the forward matrix."""
        return self.plan.n_cols

    def matches(self, matrix: CSRMatrix) -> bool:
        """True when this plan was compiled from exactly ``matrix``."""
        return (
            self.source_data is matrix.data
            and self.source_indices is matrix.indices
        )


def compile_transpose_plan(
    matrix: CSRMatrix,
    family: str = "vector",
    accum_dtype: Union[np.dtype, type] = np.float64,
) -> TransposePlan:
    """Compile a plan evaluating ``A^T @ r`` for the forward matrix ``A``.

    The transpose is materialized via :meth:`CSRMatrix.transposed`
    (stable counting sort — bitwise deterministic) and compiled through
    the ordinary :func:`compile_plan` machinery, so the adjoint inherits
    every plan property: immutability (RA105), the bitwise equivalence
    with the per-call kernels, and the SpMM fast path.
    """
    if not isinstance(matrix, CSRMatrix):
        raise DTypeError(
            f"plans compile from CSR matrices, got {type(matrix).__name__}"
        )
    with trace_span(
        "plan.compile_transpose",
        family=family,
        rows=matrix.n_rows,
        nnz=matrix.nnz,
    ):
        transposed = matrix.transposed()
        plan = compile_plan(transposed, family, accum_dtype)
    metrics.counter("plan.transpose_compiled").inc()
    return TransposePlan(
        matrix=transposed,
        plan=plan,
        source_data=matrix.data,
        source_indices=matrix.indices,
    )


def execute_transpose_plan(tplan: TransposePlan, r: np.ndarray) -> np.ndarray:
    """Evaluate ``A^T @ r`` from a compiled transpose plan.

    Bitwise identical to running the plan's family kernel on the
    explicitly transposed matrix — the contract test pins this.
    """
    r = np.asarray(r)
    if r.shape != (tplan.n_cols,):
        raise ShapeError(
            f"r has shape {r.shape}, expected ({tplan.n_cols},) — the "
            "adjoint consumes a residual over the forward matrix's rows"
        )
    return execute_plan(tplan.plan, r)


# --------------------------------------------------------------------- #
# sharded plans (fused multi-shard dispatch)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlanSlice:
    """One shard of a :class:`ShardedPlan`: a compiled plan plus the row
    range its output occupies in the merged dose vector."""

    index: int
    row_start: int
    row_end: int
    plan: SpMVPlan

    @property
    def n_rows(self) -> int:
        return self.row_end - self.row_start


@dataclass(frozen=True)
class ShardedPlan:
    """All per-shard plans of one sharded matrix, compiled once, with
    merge-ordered output slices.

    The fused executors below allocate the full dose array once and let
    every slice write directly into its ``[row_start, row_end)`` view —
    the tree merge degenerates to a zero-copy index-ordered write.  The
    bitwise argument is unchanged from the concatenating merge: slices
    are disjoint contiguous row blocks, each row's bits are produced by
    the same fixed-order reduction as in the full matrix, and no
    floating-point arithmetic happens between a slice's reduction and
    its resting place in the output (writes are ordered by the explicit
    slice index, never by completion or container order — rule RA106).

    Identity anchors reference the *source* matrix the sharding was cut
    from, so :meth:`matches` answers the question evaluator caches ask.
    """

    family: str
    n_rows: int
    n_cols: int
    nnz: int
    accum_dtype: np.dtype
    slices: Tuple[PlanSlice, ...]
    #: identity anchors into the source (unsharded) matrix.
    source_data: np.ndarray
    source_indices: np.ndarray

    def __post_init__(self) -> None:
        _freeze_arrays(self)

    @property
    def n_slices(self) -> int:
        return len(self.slices)

    def matches(self, matrix: CSRMatrix) -> bool:
        """True when this plan was compiled from exactly ``matrix``."""
        return (
            self.source_data is matrix.data
            and self.source_indices is matrix.indices
        )

    @property
    def nbytes(self) -> int:
        """Resident size of all compiled slice plans."""
        return sum(s.plan.nbytes for s in self.slices)


def compile_sharded_plan(
    source: CSRMatrix,
    blocks: Sequence[Tuple[int, int, CSRMatrix]],
    family: str = "vector",
    accum_dtype: Union[np.dtype, type] = np.float64,
) -> ShardedPlan:
    """Compile one :class:`ShardedPlan` from contiguous row blocks.

    ``blocks`` is a sequence of ``(row_start, row_end, block)`` triples
    ordered by shard index; the ranges must tile ``[0, source.n_rows)``
    exactly — gaps, overlaps or reorderings are structural errors, not
    merge-time surprises.
    """
    if not blocks:
        raise ShapeError("sharded plan needs at least one row block")
    accum = np.dtype(accum_dtype)
    expected_start = 0
    slices: List[PlanSlice] = []
    with trace_span(
        "plan.compile_sharded",
        family=family,
        shards=len(blocks),
        rows=source.n_rows,
        nnz=source.nnz,
    ):
        for k, (start, end, block) in enumerate(blocks):
            if start != expected_start:
                raise ShapeError(
                    f"slice {k} starts at row {start}, expected "
                    f"{expected_start}; slices must tile the source rows "
                    "in ascending shard order"
                )
            if block.n_rows != end - start or block.n_cols != source.n_cols:
                raise ShapeError(
                    f"slice {k} block shape ({block.n_rows}, {block.n_cols}) "
                    f"does not match range [{start}, {end}) over "
                    f"{source.n_cols} columns"
                )
            expected_start = end
            slices.append(
                PlanSlice(
                    index=k,
                    row_start=start,
                    row_end=end,
                    plan=compile_plan(block, family, accum),
                )
            )
        if expected_start != source.n_rows:
            raise ShapeError(
                f"slices cover rows [0, {expected_start}) of a "
                f"{source.n_rows}-row matrix"
            )
    metrics.counter("plan.sharded_compiled").inc()
    return ShardedPlan(
        family=family,
        n_rows=source.n_rows,
        n_cols=source.n_cols,
        nnz=source.nnz,
        accum_dtype=accum,
        slices=tuple(slices),
        source_data=source.data,
        source_indices=source.indices,
    )


def execute_sharded_plan(
    splan: ShardedPlan, x: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Evaluate ``A @ x`` through every slice of a sharded plan.

    One input cast, one output allocation, one in-order pass over the
    slices — bitwise identical to ``execute_plan`` on the full matrix
    (each row is reduced by the same fixed-order kernel arithmetic; the
    slice write is pure placement).  ``out`` may be a caller-owned
    float64 buffer of shape ``(n_rows,)`` for allocation-free repeats.
    """
    x = np.asarray(x)
    if x.shape != (splan.n_cols,):
        raise ShapeError(f"x has shape {x.shape}, expected ({splan.n_cols},)")
    if out is None:
        out = np.zeros(splan.n_rows, dtype=np.float64)
    else:
        if out.shape != (splan.n_rows,):
            raise ShapeError(
                f"out has shape {out.shape}, expected ({splan.n_rows},)"
            )
        out[:] = 0.0
    xa = x.astype(splan.accum_dtype, copy=False)
    for s in splan.slices:
        execute_plan_into(s.plan, xa, out[s.row_start:s.row_end])
    return out


def execute_sharded_plan_multi(
    splan: ShardedPlan,
    weights: Union[np.ndarray, Sequence[np.ndarray]],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The sharded SpMM path: all ``B`` vectors through every slice in
    one dispatch.

    Returns ``(n_rows, B)``; column ``b`` is bitwise identical to
    ``execute_sharded_plan(splan, W[:, b])`` — and therefore to the
    single-device per-call kernel — by the same broadcast argument as
    :func:`execute_plan_multi`.
    """
    if isinstance(weights, np.ndarray) and weights.ndim == 2:
        columns = [weights[:, b] for b in range(weights.shape[1])]
    else:
        columns = [np.asarray(w) for w in weights]
    if not columns:
        raise ShapeError("need at least one weight vector")
    for i, w in enumerate(columns):
        if w.shape != (splan.n_cols,):
            raise ShapeError(
                f"vector {i}: expected shape ({splan.n_cols},), got {w.shape}"
            )
    batch = len(columns)
    xt = np.empty((batch, splan.n_cols), dtype=splan.accum_dtype)
    for b, w in enumerate(columns):
        xt[b] = w.astype(splan.accum_dtype, copy=False)
    if out is None:
        out = np.zeros((splan.n_rows, batch), dtype=np.float64)
    else:
        if out.shape != (splan.n_rows, batch):
            raise ShapeError(
                f"out has shape {out.shape}, expected "
                f"({splan.n_rows}, {batch})"
            )
        out[:] = 0.0
    for s in splan.slices:
        execute_plan_multi_into(
            s.plan, xt, out[s.row_start:s.row_end, :].T
        )
    return out


# --------------------------------------------------------------------- #
# process-global plan cache
# --------------------------------------------------------------------- #


class PlanCache:
    """Bounded LRU of compiled plans, keyed by matrix identity.

    The key is ``(id(matrix.data), family, accum dtype)``; because every
    cached plan holds a strong reference to its source arrays, a key's
    ``id`` cannot be recycled while its entry is alive, and
    :meth:`SpMVPlan.matches` re-verifies identity on every hit anyway.
    Compilation runs under the cache lock, so concurrent requests for
    one matrix compile exactly once (single-flight).

    Reports ``plan.cache.{hit,miss,evictions}`` counters and a
    ``plan.cache.size`` gauge.
    """

    def __init__(self, capacity: int = 16):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = guarded_lock(  # analyze: lock-guards[_plans]
            "kernels.plan.PlanCache"
        )
        self._plans: "OrderedDict[Tuple[int, str, str], SpMVPlan]" = (
            OrderedDict()
        )

    def get_or_compile(
        self,
        matrix: CSRMatrix,
        family: str,
        accum_dtype: Union[np.dtype, type],
    ) -> SpMVPlan:
        accum = np.dtype(accum_dtype)
        key = (id(matrix.data), family, accum.str)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None and plan.matches(matrix):
                self._plans.move_to_end(key)
                metrics.counter("plan.cache.hit").inc()
                return plan
            metrics.counter("plan.cache.miss").inc()
            plan = compile_plan(matrix, family, accum)  # analyze: allow[RL504] -- deliberate single-flight: compiling under the lock is what guarantees one compilation per key; plan compilation is bounded CPU work, not unbounded blocking
            # cache bookkeeping, not a plan-array mutation
            self._plans[key] = plan  # analyze: allow[RA105]
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                metrics.counter("plan.cache.evictions").inc()
            metrics.gauge("plan.cache.size").set(len(self._plans))
            return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            metrics.gauge("plan.cache.size").set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


_PLAN_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-global plan cache shared by kernels/harness/serving."""
    return _PLAN_CACHE


def clear_plan_cache() -> None:
    """Drop every cached plan (tests and the bench harness use this)."""
    _PLAN_CACHE.clear()
