"""Dose-calculation SpMV kernels.

* :func:`HalfDoubleKernel` — the paper's contribution (warp-per-row CSR,
  cooperative-group reductions, half-stored matrix, double vectors).
* :func:`SingleKernel` — same kernel in single precision (library
  comparison configuration).
* :class:`GPUBaselineKernel` — the RayStation algorithm ported to GPU with
  atomics (non-reproducible; the paper's performance baseline).
* :class:`CPURayStationKernel` — the clinical CPU implementation.
* :class:`CuSparseLikeKernel` / :class:`GinkgoLikeKernel` — behavioural
  models of the state-of-the-art libraries (single precision).
* :class:`ScalarCSRKernel` — one-thread-per-row contrast for ablation.
"""

from repro.kernels.base import KernelResult, MatrixLike, SpMVKernel
from repro.kernels.baseline import GPUBaselineKernel
from repro.kernels.batched import (
    OptimizationProjection,
    PlanSpMVResult,
    project_optimization,
    run_plan_spmv,
)
from repro.kernels.cpu_raystation import CPURayStationKernel
from repro.kernels.csr_scalar import ScalarCSRKernel, scalar_csr_spmv_exact
from repro.kernels.csr_vector import (
    HalfDoubleKernel,
    SingleKernel,
    VectorCSRKernel,
    warp_csr_spmv_exact,
)
from repro.kernels.cuda_source import generate_cuda_kernel
from repro.kernels.cusparse_model import CuSparseLikeKernel
from repro.kernels.dispatch import kernel_names, make_kernel
from repro.kernels.format_kernels import (
    ELLPACKKernel,
    SellCSigmaKernel,
    ellpack_spmv_exact,
    sellcs_spmv_exact,
)
from repro.kernels.ginkgo_model import GinkgoLikeKernel, ginkgo_subwarp_size

__all__ = [
    "KernelResult",
    "MatrixLike",
    "SpMVKernel",
    "GPUBaselineKernel",
    "CPURayStationKernel",
    "ScalarCSRKernel",
    "scalar_csr_spmv_exact",
    "HalfDoubleKernel",
    "SingleKernel",
    "VectorCSRKernel",
    "warp_csr_spmv_exact",
    "CuSparseLikeKernel",
    "ELLPACKKernel",
    "SellCSigmaKernel",
    "ellpack_spmv_exact",
    "sellcs_spmv_exact",
    "kernel_names",
    "make_kernel",
    "OptimizationProjection",
    "PlanSpMVResult",
    "project_optimization",
    "run_plan_spmv",
    "generate_cuda_kernel",
    "GinkgoLikeKernel",
    "ginkgo_subwarp_size",
]
