"""cuSPARSE-like CSR SpMV comparator (single precision).

cuSPARSE's CSR SpMV (the merge/adaptive family) is closed source, so this
is a *behavioural model*: the real arithmetic of a single-precision CSR
SpMV plus the efficiency profile the paper measured on the A100 — near our
vector kernel on the long-row liver matrices, noticeably weaker on the
small prostate matrices (where Ginkgo overtakes it, Figure 6).

The profile is encoded as a bandwidth-scale curve over the average
non-empty row length: adaptive row-binning amortizes well when rows are
long, but its partitioning/binning overheads dominate on small matrices
with short rows.  The curve's two plateaus are calibrated against
Figure 6; everything else (traffic, occupancy, roofline) goes through the
same simulator as our kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts, workload_profile
from repro.gpu.launch import warp_per_row_launch
from repro.gpu.timing import KernelTraits, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.kernels.csr_vector import VectorCSRKernel, warp_csr_spmv_exact
from repro.precision.types import SINGLE
from repro.sparse.csr import CSRMatrix
from repro.util.errors import DTypeError
from repro.util.rng import RngLike


def _cusparse_bandwidth_scale(avg_row_len: float) -> float:
    """Calibrated efficiency profile (see module docstring).

    Long rows (>= 1024 nnz average): 0.96 of our kernel's effective
    bandwidth.  Short rows (<= 256): 0.80.  Smooth ramp between to avoid a
    discontinuity in sweeps.
    """
    lo, hi = 256.0, 1024.0
    if avg_row_len >= hi:
        return 0.96
    if avg_row_len <= lo:
        return 0.80
    t = (avg_row_len - lo) / (hi - lo)
    return 0.80 + t * (0.96 - 0.80)


class CuSparseLikeKernel(SpMVKernel):
    """cuSPARSE-style CSR SpMV model (single precision only).

    cuSPARSE supports several mixed-precision combinations but *not* the
    paper's half-matrix/double-vector mix, which is why the comparison in
    the paper (and here) is single precision only.
    """

    name = "cusparse"
    reproducible = True  # cusparseSpMV default algorithm is deterministic
    traffic_model_exact = True
    default_threads_per_block = 256  # analyze: allow[RA108] -- measured Fig-4 default

    def __init__(self) -> None:
        self.precision = SINGLE
        self._inner = VectorCSRKernel(SINGLE)

    def traits_for(self, profile) -> KernelTraits:
        """Traits with the row-length-dependent efficiency profile."""
        return KernelTraits(
            row_overhead_bytes=96.0,
            warp_per_row=True,
            uses_atomics=False,
            bandwidth_scale=_cusparse_bandwidth_scale(profile.avg_row_len),
        )

    def run(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        if not isinstance(matrix, CSRMatrix):
            raise DTypeError(
                f"{self.name} operates on CSR matrices, got {type(matrix).__name__}"
            )
        if matrix.value_dtype != np.float32:
            raise DTypeError(
                f"{self.name} supports float32 matrices only (the paper's "
                f"library comparison is single precision), got "
                f"{matrix.value_dtype}"
            )
        tpb = threads_per_block or self.default_threads_per_block
        launch = warp_per_row_launch(matrix.n_rows, tpb, device.warp_size).validate(
            device
        )
        y = warp_csr_spmv_exact(matrix, x, np.float32)
        profile = workload_profile(matrix)
        traits = self.traits_for(profile)
        counters = attach_launch_counts(
            self._inner._counters(matrix, device), launch, device.warp_size
        )
        # The adaptive algorithm runs a row-binning pre-pass over row_ptr.
        counters.dram_bytes_rows += 8.0 * matrix.n_rows
        timing = estimate_gpu_time(
            device, launch, counters, traits, profile, accum_bytes=4
        )
        return KernelResult(
            kernel=self.name,
            device=device,
            launch=launch,
            y=y.astype(np.float64),
            counters=counters,
            timing=timing,
            traits=traits,
            profile=profile,
            accum_bytes=4,
        )
