"""Ginkgo-like CSR SpMV comparator (single precision).

Ginkgo's "classical" CSR kernel assigns a sub-warp per row with the
sub-warp size chosen from the average row length, falling back to a
load-balanced strategy for very imbalanced matrices.  Its efficiency is
flatter than cuSPARSE's: slightly below our kernel everywhere, with no
long-row bonus — so it loses to cuSPARSE on the liver matrices but wins on
the prostate ones, reproducing the crossover in the paper's Figure 6.

As with the cuSPARSE model, the arithmetic is executed for real and only
the bandwidth-scale profile is calibrated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts, workload_profile
from repro.gpu.launch import warp_per_row_launch
from repro.gpu.timing import KernelTraits, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.kernels.csr_vector import VectorCSRKernel, warp_csr_spmv_exact
from repro.precision.types import SINGLE
from repro.sparse.csr import CSRMatrix
from repro.util.errors import DTypeError
from repro.util.rng import RngLike

#: Flat calibrated efficiency of the classical kernel vs our vector kernel.
GINKGO_BANDWIDTH_SCALE = 0.92


def ginkgo_subwarp_size(avg_row_len: float, warp_size: int = 32) -> int:
    """Sub-warp size heuristic: smallest power of two >= average row length,
    clamped to [1, warp_size] — Ginkgo's classical-kernel strategy."""
    size = 1
    while size < warp_size and size < avg_row_len:
        size *= 2
    return size


class GinkgoLikeKernel(SpMVKernel):
    """Ginkgo-style classical CSR SpMV model (single precision only)."""

    name = "ginkgo"
    reproducible = True
    traffic_model_exact = True
    default_threads_per_block = 256  # analyze: allow[RA108] -- measured Fig-4 default

    def __init__(self) -> None:
        self.precision = SINGLE
        self._inner = VectorCSRKernel(SINGLE)

    def traits_for(self, profile) -> KernelTraits:
        """Traits with the sub-warp-size-dependent row overhead."""
        subwarp = ginkgo_subwarp_size(profile.avg_row_len)
        return KernelTraits(
            # Smaller sub-warps shrink the per-row reduction cost.
            row_overhead_bytes=32.0 + 3.0 * subwarp,
            warp_per_row=True,
            uses_atomics=False,
            bandwidth_scale=GINKGO_BANDWIDTH_SCALE,
        )

    def run(
        self,
        matrix: CSRMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        if not isinstance(matrix, CSRMatrix):
            raise DTypeError(
                f"{self.name} operates on CSR matrices, got {type(matrix).__name__}"
            )
        if matrix.value_dtype != np.float32:
            raise DTypeError(
                f"{self.name} supports float32 matrices only (the paper's "
                f"library comparison is single precision), got "
                f"{matrix.value_dtype}"
            )
        tpb = threads_per_block or self.default_threads_per_block
        launch = warp_per_row_launch(matrix.n_rows, tpb, device.warp_size).validate(
            device
        )
        y = warp_csr_spmv_exact(matrix, x, np.float32)
        profile = workload_profile(matrix)
        traits = self.traits_for(profile)
        counters = attach_launch_counts(
            self._inner._counters(matrix, device), launch, device.warp_size
        )
        timing = estimate_gpu_time(
            device, launch, counters, traits, profile, accum_bytes=4
        )
        return KernelResult(
            kernel=self.name,
            device=device,
            launch=launch,
            y=y.astype(np.float64),
            counters=counters,
            timing=timing,
            traits=traits,
            profile=profile,
            accum_bytes=4,
        )
