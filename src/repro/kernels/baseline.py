"""GPU Baseline: the RayStation CPU algorithm ported to GPU with atomics.

The clinical CPU implementation is column-parallel over the compressed
(RSCF) format: each thread takes spots (columns), walks their row runs and
accumulates dose into a *private scratch vector*, and the scratch vectors
are reduced at the end.  Per-thread scratch arrays are infeasible with
tens of thousands of GPU threads, so — exactly as the paper describes —
the port replaces them with ``atomicAdd`` into the global output vector.

Consequences faithfully modelled here:

* the atomic commit order varies between runs -> results are NOT bitwise
  reproducible (``reproducible = False``; the functional half applies
  contributions in a per-run random order through the atomics model);
* one atomic read-modify-write per stored value makes the kernel
  atomic-throughput bound rather than DRAM-bandwidth bound, which is why
  the paper's optimized kernel beats it by ~3-4x;
* the atomic traffic to the output vector stays inside L2 (the output
  fits the A100's 40 MB), so the *DRAM* bandwidth Nsight reports for this
  kernel is low and case-dependent — the Figure 5 observation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.atomics import atomic_scatter_add
from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts
from repro.gpu.launch import thread_per_item_launch
from repro.gpu.memory import (
    contiguous_stream_bytes,
    scatter_traffic,
)
from repro.gpu.timing import KernelTraits, WorkloadProfile, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.sparse.convert import _expand_segments
from repro.sparse.rscf import RSCFMatrix
from repro.util.errors import DTypeError, ShapeError
from repro.util.rng import RngLike, make_rng


class GPUBaselineKernel(SpMVKernel):
    """Direct GPU port of the RayStation column algorithm (with atomics)."""

    name = "gpu_baseline"
    reproducible = False
    #: Figure 4: 64-128 threads per block perform best for this kernel.
    default_threads_per_block = 128  # analyze: allow[RA108] -- measured Fig-4 default
    #: entries one thread decodes before moving on (grain of the port).
    entries_per_thread = 8

    def __init__(self) -> None:
        self.traits = KernelTraits(
            row_overhead_bytes=0.0,
            warp_per_row=False,
            uses_atomics=True,
            atomic_contention=0.15,
            grid_scales_with="nnz",
        )

    def _counters(self, matrix: RSCFMatrix, device: DeviceSpec) -> PerfCounters:
        c = PerfCounters()
        c.flops = 2.0 * matrix.nnz
        # Streamed once: 2-byte quantized values and the segment metadata
        # (8 bytes start + 8 bytes length as stored; int64 here).
        seg_meta_bytes = (
            matrix.seg_start.dtype.itemsize + matrix.seg_len.dtype.itemsize
        )
        c.dram_bytes_nnz = contiguous_stream_bytes(
            matrix.nnz, matrix.values.dtype.itemsize, device.sector_bytes
        ) + contiguous_stream_bytes(
            matrix.n_segments, seg_meta_bytes, device.sector_bytes
        )
        # Column pointers, value pointers and per-column scales.
        c.dram_bytes_cols = contiguous_stream_bytes(
            matrix.n_cols + 1, 16, device.sector_bytes
        ) + contiguous_stream_bytes(matrix.n_cols, 8 + 4, device.sector_bytes)
        # Atomic RMW traffic into the output vector: footprint to DRAM,
        # everything else bounces in L2.
        rows_touched = _expand_segments(matrix.seg_start, matrix.seg_len)
        scatter = scatter_traffic(
            rows_touched,
            8,
            matrix.n_rows,
            device,
            accesses=matrix.nnz,
            read_modify_write=True,
        )
        c.dram_bytes_rows = scatter.dram_bytes
        c.l2_bytes = c.dram_bytes_nnz + c.dram_bytes_cols + scatter.l2_bytes
        c.l2_bytes_rows = c.dram_bytes_rows
        c.atomic_ops = float(matrix.nnz)
        c.rows_processed = 0.0  # no per-row loop; entries drive the kernel
        c.aux_instructions = 4.0 * matrix.nnz  # decode + dequantize + address
        return c

    def run(
        self,
        matrix: RSCFMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        if not isinstance(matrix, RSCFMatrix):
            raise DTypeError(
                f"{self.name} operates on the RayStation compressed format, "
                f"got {type(matrix).__name__}"
            )
        x = np.asarray(x)
        if x.shape != (matrix.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({matrix.n_cols},)")
        tpb = threads_per_block or self.default_threads_per_block
        # Entry-parallel port: each thread decodes a chunk of stored values
        # and issues one atomicAdd per value.
        n_items = max(-(-matrix.nnz // self.entries_per_thread), 1)
        launch = thread_per_item_launch(n_items, tpb).validate(device)

        # Functional half: every stored value contributes
        # value * scale * x[col] via one atomicAdd, commit order randomized.
        rng = make_rng(rng)
        rows_touched = _expand_segments(matrix.seg_start, matrix.seg_len)
        col_counts = np.diff(matrix.val_ptr.astype(np.int64))
        entry_cols = np.repeat(np.arange(matrix.n_cols, dtype=np.int64), col_counts)
        scales = np.repeat(matrix.col_scale.astype(np.float64), col_counts)
        contributions = (
            matrix.values.astype(np.float64) * scales * np.asarray(x, np.float64)[
                entry_cols
            ]
        )
        y = np.zeros(matrix.n_rows, dtype=np.float64)
        atomic_scatter_add(y, rows_touched, contributions, rng=rng)

        counters = attach_launch_counts(
            self._counters(matrix, device), launch, device.warp_size
        )
        profile = WorkloadProfile()  # not warp-per-row; profile unused
        timing = estimate_gpu_time(
            device,
            launch,
            counters,
            self.traits,
            profile,
            accum_bytes=8,
        )
        return KernelResult(
            kernel=self.name,
            device=device,
            launch=launch,
            y=y,
            counters=counters,
            timing=timing,
            traits=self.traits,
            profile=profile,
            accum_bytes=8,
        )
