"""Kernel interface shared by every SpMV implementation.

A kernel bundles a *functional* execution (exact arithmetic with the exact
reduction order of its hardware counterpart, vectorized with NumPy) with a
*performance* execution (counter collection + analytical timing on a target
device).  ``run`` performs both and returns a :class:`KernelResult`.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.launch import LaunchConfig
from repro.gpu.timing import KernelTraits, TimingEstimate, WorkloadProfile
from repro.obs import metrics
from repro.obs.trace import span as _trace_span
from repro.precision.types import MixedPrecision
from repro.sparse.csr import CSRMatrix
from repro.sparse.rscf import RSCFMatrix
from repro.util.rng import RngLike

MatrixLike = Union[CSRMatrix, RSCFMatrix]


@dataclass(frozen=True)
class KernelContract:
    """The machine-checkable contract one kernel declares.

    This is what :mod:`repro.analyze` verifies: the reproducibility claim
    (bit-identical repeated runs), the precision triple the functional
    path must honour, whether the implementation is allowed to touch
    atomics, and whether its byte accounting must agree with the paper's
    analytic traffic model (``6*nnz + 12*nr + 8*nc`` for Half/Double).
    """

    #: registry/display name of the kernel.
    name: str
    #: repeated runs on the same input must be bit-identical.
    reproducible: bool
    #: declared storage/vector/accumulation precisions (None for kernels
    #: without a first-class precision configuration, e.g. RSCF ports).
    precision: Optional[MixedPrecision]
    #: the implementation reduces through atomics (must imply
    #: ``reproducible=False``).
    uses_atomics: bool
    #: DRAM byte counters are expected to match the analytic traffic
    #: model (padding formats intentionally diverge and opt out).
    matches_traffic_model: bool


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one simulated kernel execution."""

    #: kernel registry name (e.g. ``"half_double"``).
    kernel: str
    #: device the execution was modelled on.
    device: DeviceSpec
    #: launch configuration used.
    launch: Optional[LaunchConfig]
    #: the computed output vector (always float64 for reporting).
    y: np.ndarray
    #: collected performance counters.
    counters: PerfCounters
    #: analytical timing estimate.
    timing: TimingEstimate
    #: modelling traits the estimate used (for paper-scale re-estimation).
    traits: Optional[KernelTraits] = None
    #: workload profile the estimate used.
    profile: Optional[WorkloadProfile] = None
    #: accumulation width in bytes (8 for double, 4 for single paths).
    accum_bytes: int = 8

    @property
    def gflops(self) -> float:
        """Modelled GFLOP/s."""
        return self.timing.gflops

    @property
    def dram_bandwidth(self) -> float:
        """Modelled achieved DRAM bandwidth in bytes/s."""
        return self.timing.achieved_dram_bw

    @property
    def operational_intensity(self) -> float:
        """Flops per DRAM byte (roofline x-coordinate)."""
        return self.counters.operational_intensity


def _instrumented_run(run):
    """Wrap a kernel ``run`` with one span + launch/work metrics.

    The span is a no-op unless tracing is enabled; the three counter
    increments are always on (they feed the CLI metrics summary and the
    run manifest).
    """

    @functools.wraps(run)
    def wrapper(self, matrix, x, *args, **kwargs):
        device = kwargs.get("device", args[0] if args else None)
        with _trace_span(
            "kernel.run",
            kernel=self.name,
            device=getattr(device, "name", None),
            rows=getattr(matrix, "n_rows", None),
            nnz=getattr(matrix, "nnz", None),
        ) as sp:
            result = run(self, matrix, x, *args, **kwargs)
            metrics.counter("kernel.launches").inc()
            metrics.counter("kernel.flops_modeled").inc(result.counters.flops)
            metrics.counter("kernel.bytes_modeled").inc(
                result.counters.dram_bytes
            )
            metrics.histogram("kernel.modeled_time_s").observe(
                result.timing.time_s
            )
            sp.set_attrs(
                device=result.device.name,
                gflops=round(result.timing.gflops, 3),
                modeled_time_s=result.timing.time_s,
                limiter=result.timing.limiter,
            )
            return result

    wrapper._obs_instrumented = True
    return wrapper


class SpMVKernel(abc.ABC):
    """Abstract SpMV kernel.

    Subclasses set :attr:`name`, declare whether their result is bitwise
    reproducible across runs, and implement :meth:`run`.  Every concrete
    ``run`` is transparently instrumented (one ``kernel.run`` span plus
    launch/flops/bytes counters) via :meth:`__init_subclass__`.
    """

    #: registry name; subclasses override.
    name: str = "abstract"
    #: True if repeated runs on the same input are bit-identical.
    reproducible: bool = True
    #: True when the kernel's DRAM counters must agree with the analytic
    #: traffic model of :mod:`repro.roofline.analytic` (CSR-family
    #: kernels set this; padding formats like ELLPACK opt out).
    traffic_model_exact: bool = False

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "_obs_instrumented", False):
            cls.run = _instrumented_run(run)

    @abc.abstractmethod
    def run(
        self,
        matrix: MatrixLike,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        """Execute ``y = A @ x`` functionally and model its performance.

        ``rng`` only affects kernels with nondeterministic reduction order
        (the atomics baseline); deterministic kernels ignore it.
        """

    def model_timing(
        self,
        matrix: MatrixLike,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        batch: int = 1,
    ) -> TimingEstimate:
        """Timing-only estimate for a candidate execution configuration.

        Kernels with an analytic counter model (the plan-family CSR
        kernels) override this so the sharded evaluator and the
        autotuner can price configurations without running arithmetic;
        kernels without one refuse.
        """
        raise NotImplementedError(
            f"kernel {self.name!r} has no structural timing model"
        )

    def contract(self) -> KernelContract:
        """The contract this kernel declares (checked by ``repro.analyze``).

        Assembled from the class-level reproducibility flag, the
        ``precision`` attribute kernels with a first-class
        :class:`~repro.precision.types.MixedPrecision` set in their
        constructor, and the atomics flag of the kernel's traits.
        """
        traits = getattr(self, "traits", None)
        return KernelContract(
            name=self.name,
            reproducible=self.reproducible,
            precision=getattr(self, "precision", None),
            uses_atomics=bool(traits.uses_atomics) if traits else False,
            matches_traffic_model=self.traffic_model_exact,
        )

    def traits_for(self, profile: WorkloadProfile) -> KernelTraits:
        """Modelling traits for a workload profile.

        The default returns the kernel's static ``traits``; library
        comparator models override this because their efficiency depends
        on the matrix's row-length profile — which changes when the
        harness re-estimates timing at paper scale.
        """
        return self.traits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
