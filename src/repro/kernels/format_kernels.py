"""SpMV kernels for ELLPACK and SELL-C-sigma — the paper's future work.

Section II-C: "Investigating other storage formats, such as ELLPACK, and
SELL-C-sigma, will be a topic of future work."  These kernels implement
that investigation on the simulator, with the same mixed half/double
precision discipline as the contributed CSR kernel:

* **ELLPACK** (thread per row over the padded column-major layout):
  perfectly coalesced and with no per-row pointer reads, but every padded
  slot costs real traffic — on the dose matrices' heavy-tailed rows the
  padding factor is ruinous (see the format ablation bench).
* **SELL-C-sigma** (warp per 32-row chunk): rows sorted by length within
  sigma-windows, chunks padded only to their own maximum.  Padding traffic
  shrinks to a few percent, row pointers are per-chunk instead of per-row,
  and lane utilization within a chunk is near-perfect — the format's
  published advantage, visible here against the same baseline.

Both kernels use fixed summation orders (sequential per thread for
ELLPACK, lane-sequential + butterfly per chunk for SELL-C-sigma), so both
are bitwise reproducible and RayStation-eligible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.coop import WarpTile
from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.executor import attach_launch_counts
from repro.gpu.launch import thread_per_item_launch, warp_per_row_launch
from repro.gpu.memory import contiguous_stream_bytes, gather_traffic
from repro.gpu.timing import KernelTraits, WorkloadProfile, estimate_gpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.precision.types import HALF_DOUBLE, MixedPrecision
from repro.sparse.ellpack import ELLMatrix
from repro.sparse.sellcs import SellCSigmaMatrix
from repro.util.errors import DTypeError, ShapeError
from repro.util.rng import RngLike

WARP = 32


def ellpack_spmv_exact(
    matrix: ELLMatrix, x: np.ndarray, accum_dtype: np.dtype
) -> np.ndarray:
    """One thread per row, slots accumulated left to right (fixed order)."""
    accum_dtype = np.dtype(accum_dtype)
    x = np.asarray(x)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(f"x has shape {x.shape}, expected ({matrix.n_cols},)")
    xa = x.astype(accum_dtype, copy=False)
    acc = np.zeros(matrix.n_rows, dtype=accum_dtype)
    for k in range(matrix.width):
        cols = matrix.col_indices[:, k]
        valid = cols >= 0
        safe = np.where(valid, cols, 0)
        contrib = matrix.values[:, k].astype(accum_dtype) * xa[safe]
        acc = acc + np.where(valid, contrib, accum_dtype.type(0))
    return acc


def sellcs_spmv_exact(
    matrix: SellCSigmaMatrix, x: np.ndarray, accum_dtype: np.dtype
) -> np.ndarray:
    """Warp per chunk-row: strided lane accumulation + butterfly reduce.

    Matches the CSR vector kernel's per-row order exactly, applied within
    each chunk's padded rows, so results are bit-identical to the CSR
    kernel for the same stored values.
    """
    accum_dtype = np.dtype(accum_dtype)
    x = np.asarray(x)
    if x.shape != (matrix.n_cols,):
        raise ShapeError(f"x has shape {x.shape}, expected ({matrix.n_cols},)")
    xa = x.astype(accum_dtype, copy=False)
    tile = WarpTile(WARP)
    y = np.zeros(matrix.n_rows, dtype=accum_dtype)
    for j, (vals, cols) in enumerate(zip(matrix.chunk_values, matrix.chunk_cols)):
        if vals.size == 0:
            continue
        rows_in_chunk, width = vals.shape
        lane_acc = np.zeros((rows_in_chunk, WARP), dtype=accum_dtype)
        for start in range(0, width, WARP):
            v = vals[:, start : start + WARP].astype(accum_dtype)
            c = cols[:, start : start + WARP]
            valid = c >= 0
            safe = np.where(valid, c, 0)
            contrib = np.where(valid, v * xa[safe], accum_dtype.type(0))
            lane_acc[:, : contrib.shape[1]] += contrib
        partial = tile.reduce_add(lane_acc)
        slots = np.arange(j * matrix.chunk_size, j * matrix.chunk_size + rows_in_chunk)
        y[matrix.perm[slots]] = partial
    return y


class ELLPACKKernel(SpMVKernel):
    """Thread-per-row SpMV over the padded ELLPACK layout."""

    name = "ellpack_half_double"
    reproducible = True
    default_threads_per_block = 256  # analyze: allow[RA108] -- measured Fig-4 default

    def __init__(self, precision: MixedPrecision = HALF_DOUBLE):
        self.precision = precision
        self.traits = KernelTraits(
            row_overhead_bytes=16.0,  # no pointers; just the result write
            warp_per_row=False,
            uses_atomics=False,
        )

    def _counters(self, matrix: ELLMatrix, device: DeviceSpec) -> PerfCounters:
        prec = self.precision
        slots = matrix.n_rows * matrix.width
        c = PerfCounters()
        c.flops = 2.0 * matrix.nnz
        # EVERY padded slot streams through DRAM: the format's cost.
        c.dram_bytes_nnz = contiguous_stream_bytes(
            slots, prec.matrix.nbytes, device.sector_bytes
        ) + contiguous_stream_bytes(slots, prec.index_bytes, device.sector_bytes)
        c.dram_bytes_rows = contiguous_stream_bytes(
            matrix.n_rows, prec.vector.nbytes, device.sector_bytes
        )
        flat_cols = matrix.col_indices[matrix.col_indices >= 0]
        gather = gather_traffic(flat_cols, prec.vector.nbytes, matrix.n_cols, device)
        c.dram_bytes_cols = gather.compulsory_dram_bytes
        c.dram_bytes_refetch = gather.refetch_dram_bytes
        c.l2_bytes = c.dram_bytes_nnz + gather.l2_bytes
        c.l2_bytes_rows = c.dram_bytes_rows
        c.warp_iterations = matrix.width * ((matrix.n_rows + WARP - 1) // WARP)
        c.partial_waste_bytes = 0.0  # padding is charged as real traffic above
        c.n_warps = (matrix.n_rows + WARP - 1) // WARP
        c.rows_processed = matrix.n_rows
        c.aux_instructions = 2.0 * slots
        return c

    def run(
        self,
        matrix: ELLMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        if not isinstance(matrix, ELLMatrix):
            raise DTypeError(
                f"{self.name} operates on ELLPACK matrices, got "
                f"{type(matrix).__name__}"
            )
        if matrix.values.dtype != self.precision.matrix.dtype:
            raise DTypeError(
                f"{self.name} expects {self.precision.matrix.dtype} values, "
                f"got {matrix.values.dtype}"
            )
        tpb = threads_per_block or self.default_threads_per_block
        launch = thread_per_item_launch(matrix.n_rows, tpb).validate(device)
        y = ellpack_spmv_exact(matrix, x, self.precision.accumulate.dtype)
        counters = attach_launch_counts(
            self._counters(matrix, device), launch, device.warp_size
        )
        profile = WorkloadProfile(avg_row_len=float(matrix.width), rowlen_cv=0.0)
        timing = estimate_gpu_time(
            device, launch, counters, self.traits, profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )
        return KernelResult(
            kernel=self.name, device=device, launch=launch,
            y=y.astype(np.float64), counters=counters, timing=timing,
            traits=self.traits, profile=profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )


class SellCSigmaKernel(SpMVKernel):
    """Warp-per-chunk-row SpMV over SELL-C-sigma."""

    name = "sellcs_half_double"
    reproducible = True
    default_threads_per_block = 512  # analyze: allow[RA108] -- measured Fig-4 default

    def __init__(self, precision: MixedPrecision = HALF_DOUBLE):
        self.precision = precision
        self.traits = KernelTraits(
            # Chunk bookkeeping amortizes over 32 rows; result writes are
            # permuted (scattered) which costs a little extra.
            row_overhead_bytes=24.0,
            warp_per_row=True,
            uses_atomics=False,
        )

    def _counters(
        self, matrix: SellCSigmaMatrix, device: DeviceSpec
    ) -> PerfCounters:
        prec = self.precision
        slots = matrix.padded_slots
        c = PerfCounters()
        c.flops = 2.0 * matrix.nnz
        c.dram_bytes_nnz = contiguous_stream_bytes(
            slots, prec.matrix.nbytes, device.sector_bytes
        ) + contiguous_stream_bytes(slots, prec.index_bytes, device.sector_bytes)
        # Permutation array + scattered result writes (8 B each, but a
        # scattered store touches a full sector).
        c.dram_bytes_rows = contiguous_stream_bytes(
            matrix.n_rows, 4, device.sector_bytes
        ) + matrix.n_rows * prec.vector.nbytes * 2
        all_cols = (
            np.concatenate([ch.ravel() for ch in matrix.chunk_cols])
            if matrix.chunk_cols
            else np.empty(0, np.int64)
        )
        all_cols = all_cols[all_cols >= 0]
        gather = gather_traffic(all_cols, prec.vector.nbytes, matrix.n_cols, device)
        c.dram_bytes_cols = gather.compulsory_dram_bytes
        c.dram_bytes_refetch = gather.refetch_dram_bytes
        c.l2_bytes = c.dram_bytes_nnz + gather.l2_bytes
        c.l2_bytes_rows = c.dram_bytes_rows
        c.warp_iterations = sum(
            -(-ch.shape[1] // WARP) * ch.shape[0]
            for ch in matrix.chunk_values
        )
        c.partial_waste_bytes = 0.0  # padding charged as traffic
        c.n_warps = matrix.n_rows  # one warp pass per (chunk) row
        c.rows_processed = matrix.n_rows
        c.aux_instructions = 2.0 * slots
        c.aux_instructions_rows = 5.0 * WARP * matrix.n_rows / matrix.chunk_size
        return c

    def run(
        self,
        matrix: SellCSigmaMatrix,
        x: np.ndarray,
        device: DeviceSpec = A100,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        if not isinstance(matrix, SellCSigmaMatrix):
            raise DTypeError(
                f"{self.name} operates on SELL-C-sigma matrices, got "
                f"{type(matrix).__name__}"
            )
        chunk_dtypes = {ch.dtype for ch in matrix.chunk_values if ch.size}
        if chunk_dtypes - {self.precision.matrix.dtype}:
            raise DTypeError(
                f"{self.name} expects {self.precision.matrix.dtype} values, "
                f"got {sorted(str(d) for d in chunk_dtypes)}; convert the "
                "CSR source with astype before csr_to_sellcs"
            )
        tpb = threads_per_block or self.default_threads_per_block
        launch = warp_per_row_launch(
            max(matrix.n_rows, 1), tpb, device.warp_size
        ).validate(device)
        y = sellcs_spmv_exact(matrix, x, self.precision.accumulate.dtype)
        counters = attach_launch_counts(
            self._counters(matrix, device), launch, device.warp_size
        )
        lengths = matrix.row_lengths.astype(np.float64)
        nonempty = lengths[lengths > 0]
        mean = float(nonempty.mean()) if nonempty.size else 0.0
        profile = WorkloadProfile(
            avg_row_len=mean,
            # Sigma-sorting removes intra-block length variance: chunks are
            # length-homogeneous, so the straggler channel all but closes.
            rowlen_cv=0.1,
        )
        timing = estimate_gpu_time(
            device, launch, counters, self.traits, profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )
        return KernelResult(
            kernel=self.name, device=device, launch=launch,
            y=y.astype(np.float64), counters=counters, timing=timing,
            traits=self.traits, profile=profile,
            accum_bytes=self.precision.accumulate.nbytes,
        )
