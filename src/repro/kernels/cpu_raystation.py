"""The RayStation CPU implementation: scratch-array column accumulation.

This is the algorithm used clinically at the time of the paper (run on an
Intel i9-7940X there).  Columns (spots) are partitioned over threads; each
thread decodes its columns' run-length segments, dequantizes the 16-bit
values and accumulates into a *private* full-length scratch vector; a final
deterministic reduction sums the scratch vectors in thread order.

Properties modelled:

* deterministic (fixed partition, fixed reduction order) -> reproducible,
  which is why the clinic can use it;
* compute bound: branchy segment decoding + uint16 dequantization cost
  ~13 scalar cycles per stored value, which at 14 cores dominates memory
  time — this is the 17x gap to the GPU port the paper reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.device import CPU_I9_7940X, DeviceSpec
from repro.gpu.timing import KernelTraits, estimate_cpu_time
from repro.kernels.base import KernelResult, SpMVKernel
from repro.sparse.convert import _expand_segments
from repro.sparse.rscf import RSCFMatrix
from repro.util.errors import DTypeError, ShapeError
from repro.util.rng import RngLike


class CPURayStationKernel(SpMVKernel):
    """Clinical CPU dose-calculation algorithm (scratch arrays)."""

    name = "cpu_raystation"
    reproducible = True

    def __init__(self, n_threads: int = 14) -> None:
        if n_threads <= 0:
            raise ValueError(f"n_threads must be positive, got {n_threads}")
        self.n_threads = n_threads
        self.traits = KernelTraits(cpu_cycles_per_value=13.0)

    def _counters(self, matrix: RSCFMatrix, device: DeviceSpec) -> PerfCounters:
        c = PerfCounters()
        c.flops = 2.0 * matrix.nnz
        # Stream the compressed matrix once...
        c.dram_bytes_nnz = float(
            matrix.nnz * matrix.values.dtype.itemsize
            # ...and write each contribution into a scratch vector; scratch
            # vectors exceed the LLC, so writes cost allocate + writeback.
            + matrix.nnz * 8 * 2
        )
        c.dram_bytes_cols = float(matrix.n_cols * (8 + 4) + 16 * matrix.n_segments)
        # Final reduction: read all scratch vectors, write the result.
        c.dram_bytes_rows = float((self.n_threads + 1) * matrix.n_rows * 8)
        c.l2_bytes = c.dram_bytes_nnz
        c.rows_processed = matrix.n_rows
        c.aux_instructions = 13.0 * matrix.nnz
        return c

    def run(
        self,
        matrix: RSCFMatrix,
        x: np.ndarray,
        device: DeviceSpec = CPU_I9_7940X,
        threads_per_block: Optional[int] = None,
        rng: RngLike = None,
    ) -> KernelResult:
        if not isinstance(matrix, RSCFMatrix):
            raise DTypeError(
                f"{self.name} operates on the RayStation compressed format, "
                f"got {type(matrix).__name__}"
            )
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (matrix.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({matrix.n_cols},)")

        # Functional half: fixed column partition over threads, private
        # scratch accumulation, deterministic thread-order reduction.
        n_threads = self.n_threads
        boundaries = np.linspace(0, matrix.n_cols, n_threads + 1).astype(np.int64)
        col_counts = np.diff(matrix.val_ptr.astype(np.int64))
        entry_cols = np.repeat(np.arange(matrix.n_cols, dtype=np.int64), col_counts)
        rows_touched = _expand_segments(matrix.seg_start, matrix.seg_len)
        scales = np.repeat(matrix.col_scale.astype(np.float64), col_counts)
        contributions = matrix.values.astype(np.float64) * scales * x[entry_cols]

        y = np.zeros(matrix.n_rows, dtype=np.float64)
        for t in range(n_threads):
            lo, hi = int(boundaries[t]), int(boundaries[t + 1])
            sel = (entry_cols >= lo) & (entry_cols < hi)
            scratch = np.zeros(matrix.n_rows, dtype=np.float64)
            # Columns in ascending order, runs in ascending row order:
            # np.add.at applies sequentially in that fixed order.
            np.add.at(scratch, rows_touched[sel], contributions[sel])
            y += scratch  # reduction in thread order 0..T-1

        counters = self._counters(matrix, device)
        timing = estimate_cpu_time(
            device, counters, self.traits, n_threads=n_threads
        )
        return KernelResult(
            kernel=self.name,
            device=device,
            launch=None,
            y=y,
            counters=counters,
            timing=timing,
            traits=self.traits,
            profile=None,
            accum_bytes=8,
        )
