"""Regions of interest: targets and organs at risk as voxel masks.

The oncologist's contours from the paper's workflow become boolean masks
over the dose grid here; the optimizer's objectives and the DVH module
consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np
from scipy import ndimage

from repro.dose.grid import DoseGrid
from repro.util.errors import GeometryError


@dataclass(frozen=True)
class ROIMask:
    """A named region of interest on a dose grid."""

    name: str
    grid: DoseGrid
    #: boolean volume shaped ``(nz, ny, nx)``.
    mask: np.ndarray

    def __post_init__(self) -> None:
        nx, ny, nz = self.grid.shape
        mask = np.asarray(self.mask, dtype=bool)
        if mask.shape != (nz, ny, nx):
            raise GeometryError(
                f"ROI {self.name!r}: mask shape {mask.shape} does not match "
                f"grid volume shape {(nz, ny, nx)}"
            )
        mask.setflags(write=False)
        object.__setattr__(self, "mask", mask)

    @property
    def flat(self) -> np.ndarray:
        """Flat boolean vector over voxels (lexicographic, x fastest)."""
        return self.mask.ravel()

    @property
    def voxel_indices(self) -> np.ndarray:
        """Flat indices of voxels inside the ROI."""
        return np.flatnonzero(self.flat)

    @property
    def n_voxels(self) -> int:
        return int(np.count_nonzero(self.mask))

    @property
    def volume_cc(self) -> float:
        """ROI volume in cubic centimetres."""
        return self.n_voxels * self.grid.voxel_volume_cc

    def union(self, other: "ROIMask", name: str = "") -> "ROIMask":
        """Voxel-wise union (same grid required)."""
        self._check_same_grid(other)
        return ROIMask(name or f"{self.name}|{other.name}", self.grid,
                       self.mask | other.mask)

    def intersection(self, other: "ROIMask", name: str = "") -> "ROIMask":
        """Voxel-wise intersection (same grid required)."""
        self._check_same_grid(other)
        return ROIMask(name or f"{self.name}&{other.name}", self.grid,
                       self.mask & other.mask)

    def minus(self, other: "ROIMask", name: str = "") -> "ROIMask":
        """Voxels in this ROI but not in ``other``."""
        self._check_same_grid(other)
        return ROIMask(name or f"{self.name}-{other.name}", self.grid,
                       self.mask & ~other.mask)

    def expanded(self, margin_mm: float, name: str = "") -> "ROIMask":
        """Isotropic margin expansion (PTV-style), in millimetres."""
        if margin_mm < 0:
            raise GeometryError(f"margin must be non-negative, got {margin_mm}")
        if margin_mm == 0:
            return ROIMask(name or self.name, self.grid, self.mask.copy())
        dx, dy, dz = self.grid.spacing
        radii = [max(1, int(round(margin_mm / s))) for s in (dz, dy, dx)]
        grown = ndimage.binary_dilation(
            self.mask,
            structure=np.ones(
                (2 * radii[0] + 1, 2 * radii[1] + 1, 2 * radii[2] + 1), bool
            ),
        )
        return ROIMask(name or f"{self.name}+{margin_mm}mm", self.grid, grown)

    def _check_same_grid(self, other: "ROIMask") -> None:
        if other.grid.shape != self.grid.shape:
            raise GeometryError(
                f"ROIs {self.name!r} and {other.name!r} live on different grids"
            )


def sphere_mask(
    grid: DoseGrid, center_mm: Iterable[float], radius_mm: float, name: str
) -> ROIMask:
    """A spherical ROI centered at a world coordinate."""
    if radius_mm <= 0:
        raise GeometryError(f"radius must be positive, got {radius_mm}")
    return ellipsoid_mask(grid, center_mm, (radius_mm,) * 3, name)


def ellipsoid_mask(
    grid: DoseGrid,
    center_mm: Iterable[float],
    radii_mm: Tuple[float, float, float],
    name: str,
) -> ROIMask:
    """An axis-aligned ellipsoidal ROI."""
    center = np.asarray(tuple(center_mm), dtype=np.float64)
    radii = np.asarray(radii_mm, dtype=np.float64)
    if np.any(radii <= 0):
        raise GeometryError(f"radii must be positive, got {radii_mm}")
    xs, ys, zs = grid.axes()
    gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
    d2 = (
        ((gx - center[0]) / radii[0]) ** 2
        + ((gy - center[1]) / radii[1]) ** 2
        + ((gz - center[2]) / radii[2]) ** 2
    )
    return ROIMask(name, grid, d2 <= 1.0)


def box_mask(
    grid: DoseGrid,
    lo_mm: Iterable[float],
    hi_mm: Iterable[float],
    name: str,
) -> ROIMask:
    """An axis-aligned box ROI given world-coordinate corners."""
    lo = np.asarray(tuple(lo_mm), dtype=np.float64)
    hi = np.asarray(tuple(hi_mm), dtype=np.float64)
    if np.any(hi <= lo):
        raise GeometryError("box upper corner must exceed lower corner")
    xs, ys, zs = grid.axes()
    gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
    inside = (
        (gx >= lo[0]) & (gx <= hi[0])
        & (gy >= lo[1]) & (gy <= hi[1])
        & (gz >= lo[2]) & (gz <= hi[2])
    )
    return ROIMask(name, grid, inside)
