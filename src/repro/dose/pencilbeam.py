"""Analytic pencil-beam dose engine.

The standard factorization (Ahnesjö-style): a spot's dose at a voxel is a
*depth* factor — the straggled Bragg curve evaluated at the voxel's
radiological (water-equivalent) depth — times a *lateral* factor — a
Gaussian in the distance from the spot axis, widening with depth through
multiple Coulomb scattering.

Radiological depth is computed properly through the heterogeneous phantom:
density is resampled onto a beam-aligned grid, integrated cumulatively
along the beam axis, and sampled back at voxel centers.  A
:class:`BeamGeometryCache` holds the per-voxel (u, v, depth) coordinates so
the per-spot work is just a Gaussian evaluation over a culled voxel set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.dose.beam import Beam
from repro.dose.bragg import BraggCurve, lateral_sigma_mm
from repro.dose.phantom import Phantom
from repro.util.errors import GeometryError


@dataclass(frozen=True)
class BeamGeometryCache:
    """Per-voxel beam-frame coordinates for one (phantom, beam) pair.

    Attributes
    ----------
    u_mm / v_mm:
        BEV coordinates of each voxel center (flat, lexicographic).
    wed_mm:
        radiological depth (water-equivalent mm) of each voxel along the
        beam, measured from the patient entry surface.
    """

    beam: Beam
    u_mm: np.ndarray
    v_mm: np.ndarray
    wed_mm: np.ndarray

    @property
    def n_voxels(self) -> int:
        return int(self.u_mm.shape[0])


def compute_beam_geometry(
    phantom: Phantom, beam: Beam, step_mm: float = 2.0
) -> BeamGeometryCache:
    """Build the geometry cache: project voxels and integrate density.

    The density volume is resampled on a beam-aligned (s, v, u) grid with
    trilinear interpolation, cumulatively integrated along ``s`` and
    sampled back at voxel centers.
    """
    if step_mm <= 0:
        raise GeometryError(f"step must be positive, got {step_mm}")
    grid = phantom.grid
    centers = grid.voxel_centers()
    u, v, s = beam.world_to_bev(centers)

    # Beam-aligned bounding box of the whole grid.
    pad = step_mm
    u_lo, u_hi = float(u.min()) - pad, float(u.max()) + pad
    v_lo, v_hi = float(v.min()) - pad, float(v.max()) + pad
    s_lo, s_hi = float(s.min()) - pad, float(s.max()) + pad
    bev_spacing = min(grid.spacing)
    nu = max(int(np.ceil((u_hi - u_lo) / bev_spacing)) + 1, 2)
    nv = max(int(np.ceil((v_hi - v_lo) / bev_spacing)) + 1, 2)
    ns = max(int(np.ceil((s_hi - s_lo) / step_mm)) + 1, 2)

    us = u_lo + np.arange(nu) * bev_spacing
    vs = v_lo + np.arange(nv) * bev_spacing
    ss = s_lo + np.arange(ns) * step_mm

    u_axis, v_axis = beam.bev_axes
    direction = beam.direction
    iso = np.asarray(beam.isocenter_mm)

    # World coordinates of the beam-aligned grid points, then their
    # fractional voxel indices for interpolation.
    gs, gv, gu = np.meshgrid(ss, vs, us, indexing="ij")
    world = (
        iso[None, :]
        + gu.reshape(-1, 1) * u_axis[None, :]
        + gv.reshape(-1, 1) * v_axis[None, :]
        + gs.reshape(-1, 1) * direction[None, :]
    )
    frac = grid.world_to_index(world)  # (N, 3) in (x, y, z) order
    coords = np.stack([frac[:, 2], frac[:, 1], frac[:, 0]])  # (z, y, x)
    density_bev = ndimage.map_coordinates(
        phantom.density, coords, order=1, mode="constant", cval=0.0
    ).reshape(ns, nv, nu)

    # Cumulative water-equivalent depth along the beam axis (midpoint rule).
    wed_bev = np.cumsum(density_bev, axis=0) * step_mm
    wed_bev -= density_bev * (step_mm / 2.0)

    # Sample WED back at voxel centers.
    iu = (u - u_lo) / bev_spacing
    iv = (v - v_lo) / bev_spacing
    is_ = (s - s_lo) / step_mm
    wed = ndimage.map_coordinates(
        wed_bev, np.stack([is_, iv, iu]), order=1, mode="nearest"
    )
    return BeamGeometryCache(beam=beam, u_mm=u, v_mm=v, wed_mm=wed)


@dataclass(frozen=True)
class SpotDose:
    """Sparse dose of a single spot: voxel indices and Gy-per-weight values."""

    voxel_indices: np.ndarray
    dose: np.ndarray


def beam_chord_mm(grid, beam: Beam) -> float:
    """Mean chord a beam traverses inside one voxel (L1 projection).

    Used as the depth-averaging window for the Bragg curve: with
    millimetre Bragg falloffs and centimetre voxels, the voxel dose is
    the chord *average* of the depth dose, not a center-point sample.
    """
    direction = np.abs(beam.direction)
    return float(direction @ np.asarray(grid.spacing))


def spot_dose(
    geometry: BeamGeometryCache,
    curve: BraggCurve,
    spot_u_mm: float,
    spot_v_mm: float,
    sigma0_mm: float = 5.0,
    cutoff_sigma: float = 3.5,
    relative_cutoff: float = 2e-3,
    dose_per_weight: float = 1.0,
    depth_averaging_mm: float = 0.0,
) -> SpotDose:
    """Dose deposited by one spot (one deposition-matrix column).

    Parameters
    ----------
    geometry:
        beam geometry cache for the phantom.
    curve:
        Bragg curve of the spot's energy layer.
    spot_u_mm / spot_v_mm:
        spot position in the BEV plane.
    sigma0_mm:
        in-air lateral spot width.
    cutoff_sigma:
        lateral truncation radius in units of the local sigma.
    relative_cutoff:
        values below this fraction of the spot's maximum are dropped
        (RayStation applies a similar cutoff; what survives *below* a
        clinically meaningful level is the Monte Carlo noise the paper
        says inflates nnz).
    dose_per_weight:
        scaling to Gy per unit spot weight.
    depth_averaging_mm:
        average the depth-dose over this window (the voxel chord from
        :func:`beam_chord_mm`); 0 means center-point sampling.
    """
    wed = geometry.wed_mm
    # Depth cull: nothing beyond the distal falloff.
    depth_limit = curve.range_mm + 4.0 * (curve.range_mm * 0.012 + 1.0)
    sigma_max = float(lateral_sigma_mm(curve.range_mm, curve.range_mm, sigma0_mm))
    lateral_limit = cutoff_sigma * sigma_max

    du = geometry.u_mm - spot_u_mm
    dv = geometry.v_mm - spot_v_mm
    candidates = np.flatnonzero(
        (np.abs(du) <= lateral_limit)
        & (np.abs(dv) <= lateral_limit)
        & (wed <= depth_limit)
        & (wed > 0.0)
    )
    if candidates.size == 0:
        return SpotDose(np.empty(0, np.int64), np.empty(0, np.float64))

    wed_c = wed[candidates]
    if depth_averaging_mm > 0:
        half = depth_averaging_mm / 2.0
        depth_factor = curve.mean_dose_between(wed_c - half, wed_c + half)
    else:
        depth_factor = curve.dose_at(wed_c)
    sigma = lateral_sigma_mm(wed_c, curve.range_mm, sigma0_mm)
    r2 = du[candidates] ** 2 + dv[candidates] ** 2
    lateral = np.exp(-0.5 * r2 / sigma**2) / (2.0 * np.pi * sigma**2)
    dose = depth_factor * lateral * dose_per_weight

    peak = float(dose.max(initial=0.0))
    if peak <= 0:
        return SpotDose(np.empty(0, np.int64), np.empty(0, np.float64))
    keep = dose >= relative_cutoff * peak
    return SpotDose(candidates[keep].astype(np.int64), dose[keep])
