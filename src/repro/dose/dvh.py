"""Dose-volume histograms (DVH) — the clinical plan-quality readout.

A cumulative DVH for a structure gives, for every dose level ``d``, the
fraction of the structure's volume receiving at least ``d`` Gray.  Plan
objectives ("95 % of the target gets the prescription"; "no rectum voxel
above 50 Gy") read directly off these curves, and the optimization example
prints them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dose.structures import ROIMask
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class DVH:
    """A cumulative dose-volume histogram for one structure."""

    structure: str
    #: dose bin edges (Gy), ascending.
    dose_gy: np.ndarray
    #: fraction of structure volume receiving >= the corresponding dose.
    volume_fraction: np.ndarray

    def v_at(self, dose_gy: float) -> float:
        """V(d): volume fraction receiving at least ``dose_gy``."""
        return float(
            np.interp(dose_gy, self.dose_gy, self.volume_fraction)
        )

    def d_at(self, volume_fraction: float) -> float:
        """D(v): highest dose received by at least ``volume_fraction``."""
        if not 0.0 <= volume_fraction <= 1.0:
            raise ValueError(f"volume fraction must be in [0, 1], got {volume_fraction}")
        # volume_fraction decreases with dose; search from the high end.
        idx = np.searchsorted(-self.volume_fraction, -volume_fraction, side="left")
        idx = min(int(idx), self.dose_gy.shape[0] - 1)
        return float(self.dose_gy[idx])

    @property
    def mean_dose(self) -> float:
        """Mean structure dose (from the differential histogram)."""
        if self.dose_gy.size < 2:
            return float(self.dose_gy[0]) if self.dose_gy.size else 0.0
        diff = -np.diff(self.volume_fraction)
        mid = (self.dose_gy[1:] + self.dose_gy[:-1]) / 2.0
        tail = self.volume_fraction[-1] * self.dose_gy[-1]
        return float((diff * mid).sum() + tail)

    @property
    def max_dose(self) -> float:
        """Highest dose with non-zero volume."""
        nonzero = np.flatnonzero(self.volume_fraction > 0)
        if nonzero.size == 0:
            return 0.0
        return float(self.dose_gy[nonzero[-1]])


def compute_dvh(
    dose: np.ndarray,
    roi: ROIMask,
    n_bins: int = 200,
    max_dose_gy: Optional[float] = None,
) -> DVH:
    """Compute the cumulative DVH of ``roi`` under a flat dose vector."""
    dose = np.asarray(dose, dtype=np.float64)
    if dose.shape != (roi.grid.n_voxels,):
        raise ShapeError(
            f"dose has shape {dose.shape}, expected ({roi.grid.n_voxels},)"
        )
    inside = dose[roi.flat]
    if max_dose_gy is None:
        max_dose_gy = float(inside.max(initial=0.0)) or 1.0
    edges = np.linspace(0.0, max_dose_gy, n_bins)
    if inside.size == 0:
        return DVH(roi.name, edges, np.zeros(n_bins))
    sorted_doses = np.sort(inside)
    # volume fraction with dose >= edge
    counts_below = np.searchsorted(sorted_doses, edges, side="left")
    frac = 1.0 - counts_below / inside.size
    return DVH(roi.name, edges, frac)


def homogeneity_index(dose: np.ndarray, target: ROIMask) -> float:
    """(D2% - D98%) / D50% — lower is more uniform target coverage."""
    dvh = compute_dvh(dose, target, n_bins=500)
    d2 = dvh.d_at(0.02)
    d98 = dvh.d_at(0.98)
    d50 = dvh.d_at(0.50)
    return (d2 - d98) / d50 if d50 else float("inf")
