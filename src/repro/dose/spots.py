"""Pencil-beam-scanning spot placement.

Spots are laid out on a regular (u, v) grid in the beam's-eye view,
covering the target projection plus a lateral margin, one map per energy
layer.  Layers are spaced in water-equivalent depth across the target's
radiological extent.  Within a layer, spots are ordered in the serpentine
scanline pattern of Figure 1 — which is also why consecutive deposition-
matrix columns overlap spatially, the property the RSCF format's row runs
exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dose.beam import Beam
from repro.dose.bragg import energy_from_range_mm
from repro.dose.pencilbeam import BeamGeometryCache
from repro.dose.phantom import Phantom
from repro.util.errors import GeometryError


@dataclass(frozen=True)
class SpotMap:
    """All spots of one beam, in delivery (scanline) order.

    Parallel arrays: position ``(u, v)`` in the BEV plane, the energy-layer
    index and the beam energy of each spot.  The spot index is the
    deposition-matrix *column* index.
    """

    beam: Beam
    u_mm: np.ndarray
    v_mm: np.ndarray
    layer: np.ndarray
    energy_mev: np.ndarray
    #: water-equivalent depth each layer is aimed at.
    layer_depths_mm: np.ndarray

    @property
    def n_spots(self) -> int:
        """Number of spots — the deposition matrix's column count."""
        return int(self.u_mm.shape[0])

    @property
    def n_layers(self) -> int:
        return int(self.layer_depths_mm.shape[0])

    def spots_in_layer(self, layer_index: int) -> np.ndarray:
        """Column indices belonging to one energy layer."""
        return np.flatnonzero(self.layer == layer_index)


def _serpentine_order(u: np.ndarray, v: np.ndarray, spacing: float) -> np.ndarray:
    """Scanline ordering: rows of constant v, alternating u direction."""
    v_key = np.round(v / spacing).astype(np.int64)
    order = np.lexsort((u, v_key))
    # Flip u direction on every other v row.
    u_sorted = u[order]
    v_rows = v_key[order]
    out = order.copy()
    for row_id in np.unique(v_rows):
        sel = np.flatnonzero(v_rows == row_id)
        if row_id % 2 != 0:
            out[sel] = order[sel[np.argsort(-u_sorted[sel], kind="stable")]]
    return out


def generate_spot_map(
    phantom: Phantom,
    beam: Beam,
    geometry: BeamGeometryCache,
    spot_spacing_mm: float = 6.0,
    layer_spacing_mm: float = 8.0,
    lateral_margin_mm: float = 8.0,
    depth_margin_mm: float = 4.0,
) -> SpotMap:
    """Place spots covering the target for one beam.

    The target's voxels are projected into the BEV through ``geometry``;
    the (u, v) hull plus margin defines the per-layer spot grid, and the
    target's water-equivalent depth span defines the energy layers.
    """
    if spot_spacing_mm <= 0 or layer_spacing_mm <= 0:
        raise GeometryError("spot and layer spacings must be positive")
    target_idx = phantom.target.voxel_indices
    if target_idx.size == 0:
        raise GeometryError("phantom target is empty")
    tu = geometry.u_mm[target_idx]
    tv = geometry.v_mm[target_idx]
    twed = geometry.wed_mm[target_idx]

    u_lo, u_hi = float(tu.min()) - lateral_margin_mm, float(tu.max()) + lateral_margin_mm
    v_lo, v_hi = float(tv.min()) - lateral_margin_mm, float(tv.max()) + lateral_margin_mm
    wed_lo = max(float(twed.min()) - depth_margin_mm, layer_spacing_mm)
    wed_hi = float(twed.max()) + depth_margin_mm
    if wed_hi <= wed_lo:
        wed_hi = wed_lo + layer_spacing_mm

    layer_depths = np.arange(wed_lo, wed_hi + 1e-9, layer_spacing_mm)
    if layer_depths.size == 0:
        layer_depths = np.array([wed_lo])

    us = np.arange(u_lo, u_hi + 1e-9, spot_spacing_mm)
    vs = np.arange(v_lo, v_hi + 1e-9, spot_spacing_mm)
    gu, gv = np.meshgrid(us, vs, indexing="xy")
    grid_u = gu.ravel()
    grid_v = gv.ravel()

    # Keep spots whose (u, v) is near the target projection: within the
    # margin of any target voxel (cheap distance check against the hull
    # rectangle already applied; refine with a coarse occupancy map).
    cell = max(spot_spacing_mm, 1.0)
    occ_u = np.round(tu / cell).astype(np.int64)
    occ_v = np.round(tv / cell).astype(np.int64)
    occupied = set(zip(occ_u.tolist(), occ_v.tolist()))
    reach = int(np.ceil(lateral_margin_mm / cell))
    keep = np.zeros(grid_u.shape[0], dtype=bool)
    cand_u = np.round(grid_u / cell).astype(np.int64)
    cand_v = np.round(grid_v / cell).astype(np.int64)
    for k in range(grid_u.shape[0]):
        cu, cv = int(cand_u[k]), int(cand_v[k])
        for du in range(-reach, reach + 1):
            if (cu + du, cv) in occupied or any(
                (cu + du, cv + dv) in occupied for dv in range(-reach, reach + 1)
            ):
                keep[k] = True
                break
    grid_u = grid_u[keep]
    grid_v = grid_v[keep]
    if grid_u.size == 0:
        raise GeometryError("no spots cover the target projection")

    order = _serpentine_order(grid_u, grid_v, spot_spacing_mm)
    layer_u: List[np.ndarray] = []
    layer_v: List[np.ndarray] = []
    layer_id: List[np.ndarray] = []
    energies: List[np.ndarray] = []
    for li, depth in enumerate(layer_depths):
        energy = float(energy_from_range_mm(depth))
        layer_u.append(grid_u[order])
        layer_v.append(grid_v[order])
        layer_id.append(np.full(order.shape[0], li, dtype=np.int64))
        energies.append(np.full(order.shape[0], energy))
    return SpotMap(
        beam=beam,
        u_mm=np.concatenate(layer_u),
        v_mm=np.concatenate(layer_v),
        layer=np.concatenate(layer_id),
        energy_mev=np.concatenate(energies),
        layer_depths_mm=layer_depths,
    )
