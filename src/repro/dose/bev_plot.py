"""Beam's-eye-view rendering — the paper's Figure 1 as ASCII.

Figure 1 illustrates spot scanning "from the perspective of the treatment
beam": the target outline with the spot positions and the serpentine scan
direction.  :func:`render_beams_eye_view` reproduces that view for any
beam/spot-map pair, so the CLI can regenerate Figure 1 alongside the
evaluation figures.

Legend: ``#`` target projection, ``o`` spot, ``>``/``<`` scan direction
of each row (serpentine), ``.`` empty BEV cells.
"""

from __future__ import annotations

import numpy as np

from repro.dose.pencilbeam import BeamGeometryCache
from repro.dose.phantom import Phantom
from repro.dose.spots import SpotMap


def render_beams_eye_view(
    phantom: Phantom,
    geometry: BeamGeometryCache,
    spot_map: SpotMap,
    layer: int = 0,
    width: int = 58,
    height: int = 24,
) -> str:
    """Render one energy layer's spot map over the target projection."""
    if not 0 <= layer < spot_map.n_layers:
        raise IndexError(
            f"layer {layer} out of range [0, {spot_map.n_layers})"
        )
    target_idx = phantom.target.voxel_indices
    tu = geometry.u_mm[target_idx]
    tv = geometry.v_mm[target_idx]
    spots = spot_map.spots_in_layer(layer)
    su = spot_map.u_mm[spots]
    sv = spot_map.v_mm[spots]

    pad = 10.0
    u_lo = min(float(tu.min()), float(su.min())) - pad
    u_hi = max(float(tu.max()), float(su.max())) + pad
    v_lo = min(float(tv.min()), float(sv.min())) - pad
    v_hi = max(float(tv.max()), float(sv.max())) + pad

    def to_col(u: np.ndarray) -> np.ndarray:
        return np.clip(
            ((u - u_lo) / (u_hi - u_lo) * (width - 1)).astype(int), 0, width - 1
        )

    def to_row(v: np.ndarray) -> np.ndarray:
        return np.clip(
            ((v_hi - v) / (v_hi - v_lo) * (height - 1)).astype(int), 0, height - 1
        )

    grid = [["."] * width for _ in range(height)]
    for r, c in zip(to_row(tv), to_col(tu)):
        grid[r][c] = "#"
    # Scan-direction arrows between consecutive spots of the serpentine.
    cols, rows = to_col(su), to_row(sv)
    for k in range(len(spots) - 1):
        if rows[k] == rows[k + 1]:
            arrow = ">" if cols[k + 1] > cols[k] else "<"
            lo, hi = sorted((cols[k], cols[k + 1]))
            for c in range(lo + 1, hi):
                if grid[rows[k]][c] in (".", "#"):
                    grid[rows[k]][c] = arrow
    for r, c in zip(rows, cols):
        grid[r][c] = "o"

    lines = [
        f"Beam's eye view: {spot_map.beam.name} "
        f"(gantry {spot_map.beam.gantry_angle_deg:g} deg), "
        f"layer {layer + 1}/{spot_map.n_layers} "
        f"at {spot_map.layer_depths_mm[layer]:.0f} mm WED, "
        f"{len(spots)} spots",
        "+" + "-" * width + "+",
    ]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines.append("+" + "-" * width + "+")
    lines.append("legend: # target projection   o spot   >/< scan direction")
    return "\n".join(lines)
