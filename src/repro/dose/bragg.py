"""Proton depth-dose physics: range-energy relation and Bragg curves.

The paper's matrices come from RayStation's Monte Carlo proton engine; our
substitute needs depth-dose curves with the right *shape* — a low entrance
plateau rising into the sharp Bragg peak near the range, smeared by range
straggling — because that shape determines which voxels a spot reaches and
therefore the sparsity structure of the deposition matrix.

We use the standard analytic approximations:

* range-energy: Bragg-Kleeman rule ``R = alpha * E**p`` with the water
  parameters alpha = 0.0022 cm MeV^-p, p = 1.77 (R in cm, E in MeV);
* depth dose: Bortfeld's power-law form
  ``D(z) ~ (R - z)**-0.435 + k * (R - z)**0.565`` for ``z < R``,
  convolved with a Gaussian of width ``sigma_R = 0.012 * R**0.935`` (cm)
  to model range straggling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import GeometryError

#: Bragg-Kleeman coefficient for water (cm / MeV**P).
ALPHA_CM_MEV = 0.0022
#: Bragg-Kleeman exponent for water.
P_EXPONENT = 1.77
#: Bortfeld depth-dose exponents.
_BORTFELD_NEG = -0.435
_BORTFELD_POS = 0.565
#: relative weight of the (R-z)^0.565 term vs the (R-z)^-0.435 term.
#: Bortfeld's cm-calibrated coefficients are 17.93 and ~0.444 + 31.7*eps/R;
#: their ratio is ~0.025-0.045 for clinical ranges — we use the mid value.
_BORTFELD_K = 0.04


def range_from_energy_mm(energy_mev: np.ndarray) -> np.ndarray:
    """Water-equivalent proton range in millimetres (Bragg-Kleeman)."""
    energy = np.asarray(energy_mev, dtype=np.float64)
    if np.any(energy <= 0):
        raise GeometryError("proton energy must be positive")
    return ALPHA_CM_MEV * energy**P_EXPONENT * 10.0


def energy_from_range_mm(range_mm: np.ndarray) -> np.ndarray:
    """Inverse Bragg-Kleeman: energy (MeV) from water range (mm)."""
    r = np.asarray(range_mm, dtype=np.float64)
    if np.any(r <= 0):
        raise GeometryError("range must be positive")
    return (r / 10.0 / ALPHA_CM_MEV) ** (1.0 / P_EXPONENT)


def straggling_sigma_mm(range_mm: float) -> float:
    """Range-straggling width (mm): ``0.012 * R_cm**0.935`` in cm."""
    if range_mm <= 0:
        raise GeometryError("range must be positive")
    return 0.012 * (range_mm / 10.0) ** 0.935 * 10.0


@dataclass(frozen=True)
class BraggCurve:
    """A tabulated straggled Bragg curve for one beam energy.

    ``dose_at(depth)`` interpolates the table; dose is normalized so the
    peak equals 1.  ``cumulative_mm`` is the running integral of the dose
    over depth (same grid), enabling exact bin averages.
    """

    energy_mev: float
    range_mm: float
    depths_mm: np.ndarray
    dose: np.ndarray
    cumulative_mm: np.ndarray = None

    def dose_at(self, depth_mm: np.ndarray) -> np.ndarray:
        """Relative dose at water-equivalent depth(s), 0 beyond the table."""
        return np.interp(
            np.asarray(depth_mm, dtype=np.float64),
            self.depths_mm,
            self.dose,
            left=float(self.dose[0]),
            right=0.0,
        )

    def _cumulative_at(self, depth_mm: np.ndarray) -> np.ndarray:
        depth = np.asarray(depth_mm, dtype=np.float64)
        below = float(self.dose[0]) * np.clip(depth, None, 0.0)
        return below + np.interp(
            np.clip(depth, 0.0, None),
            self.depths_mm,
            self.cumulative_mm,
            left=0.0,
            right=float(self.cumulative_mm[-1]),
        )

    def mean_dose_between(
        self, lo_mm: np.ndarray, hi_mm: np.ndarray
    ) -> np.ndarray:
        """Average dose over depth intervals (voxel-chord averaging).

        A voxel's dose is the *mean* of the depth-dose over the chord the
        beam traverses inside it, not the value at its center; with
        millimetre-scale Bragg falloffs and centimetre voxels the
        difference at the peak is large (and the center sample depends
        pathologically on grid alignment).
        """
        lo = np.asarray(lo_mm, dtype=np.float64)
        hi = np.asarray(hi_mm, dtype=np.float64)
        width = hi - lo
        if np.any(width <= 0):
            raise GeometryError("interval upper bounds must exceed lower bounds")
        return (self._cumulative_at(hi) - self._cumulative_at(lo)) / width

    @property
    def peak_depth_mm(self) -> float:
        """Depth of maximum dose (just proximal of the range)."""
        return float(self.depths_mm[int(np.argmax(self.dose))])

    @property
    def distal_falloff_mm(self) -> float:
        """Depth span from the peak to the 10 % distal dose level."""
        peak_idx = int(np.argmax(self.dose))
        distal = self.dose[peak_idx:]
        below = np.flatnonzero(distal <= 0.1)
        if below.size == 0:
            return float(self.depths_mm[-1] - self.peak_depth_mm)
        return float(self.depths_mm[peak_idx + below[0]] - self.peak_depth_mm)


def bragg_curve(energy_mev: float, depth_step_mm: float = 0.5) -> BraggCurve:
    """Build the straggled Bortfeld curve for a beam energy.

    The ideal power-law curve is evaluated on a fine grid and convolved
    with the straggling Gaussian; the result is renormalized to peak 1.
    """
    if energy_mev <= 0:
        raise GeometryError(f"energy must be positive, got {energy_mev}")
    if depth_step_mm <= 0:
        raise GeometryError(f"depth step must be positive, got {depth_step_mm}")
    r_mm = float(range_from_energy_mm(energy_mev))
    sigma = straggling_sigma_mm(r_mm)
    # Table extends one falloff past the range.
    depths = np.arange(0.0, r_mm + 6.0 * sigma + depth_step_mm, depth_step_mm)
    # The ideal curve has an integrable singularity at z == R; POINTWISE
    # sampling explodes whenever a grid point lands near the range (making
    # the normalized curve depend pathologically on grid alignment), so
    # each table entry is the analytic BIN AVERAGE over its depth bin:
    #   (1/h) * integral (R-z)^p dz = [(R-a)^(p+1)-(R-b)^(p+1)] / (h(p+1)).
    # Bortfeld's coefficients are calibrated with the residual range in cm.
    half = depth_step_mm / 2.0
    lo_cm = np.clip((r_mm - (depths + half)) / 10.0, 0.0, None)
    hi_cm = np.clip((r_mm - (depths - half)) / 10.0, 0.0, None)
    bin_width_cm = depth_step_mm / 10.0  # averaging is over the FULL bin,
    # counting the beyond-range part as zero dose — mass-weighted, so a
    # sliver bin straddling R cannot blow up.

    def bin_avg(power: float) -> np.ndarray:
        antideriv = (hi_cm ** (power + 1.0) - lo_cm ** (power + 1.0)) / (
            power + 1.0
        )
        return antideriv / bin_width_cm

    ideal = bin_avg(_BORTFELD_NEG) + _BORTFELD_K * bin_avg(_BORTFELD_POS)
    # Gaussian convolution for range straggling.  Pad with the entrance
    # value on the proximal side (the physical curve continues upstream)
    # and zeros distally, so the convolution has no edge dip at depth 0.
    half_width = max(int(np.ceil(4.0 * sigma / depth_step_mm)), 1)
    offsets = np.arange(-half_width, half_width + 1) * depth_step_mm
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    kernel /= kernel.sum()
    padded = np.concatenate(
        [np.full(half_width, ideal[0]), ideal, np.zeros(half_width)]
    )
    smooth = np.convolve(padded, kernel, mode="same")[
        half_width : half_width + ideal.shape[0]
    ]
    peak = smooth.max()
    if peak <= 0:
        raise GeometryError(f"degenerate Bragg curve for E={energy_mev} MeV")
    dose = smooth / peak
    # Running trapezoid integral for exact interval averages.
    cumulative = np.concatenate(
        ([0.0], np.cumsum((dose[1:] + dose[:-1]) / 2.0 * np.diff(depths)))
    )
    return BraggCurve(
        energy_mev=float(energy_mev),
        range_mm=r_mm,
        depths_mm=depths,
        dose=dose,
        cumulative_mm=cumulative,
    )


def lateral_sigma_mm(depth_mm: np.ndarray, range_mm: float, sigma0_mm: float) -> np.ndarray:
    """Lateral pencil-beam width vs depth (air spot size + MCS growth).

    A Highland-inspired quadrature: the in-air spot sigma plus multiple
    Coulomb scattering growing roughly linearly to ~3.5 % of the range at
    the end of range.
    """
    if range_mm <= 0:
        raise GeometryError("range must be positive")
    depth = np.clip(np.asarray(depth_mm, dtype=np.float64), 0.0, None)
    t = np.clip(depth / range_mm, 0.0, 1.2)
    mcs = 0.035 * range_mm * t**1.5
    return np.sqrt(sigma0_mm**2 + mcs**2)
