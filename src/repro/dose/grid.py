"""Dose grid geometry: the voxelized patient volume.

Rows of a dose deposition matrix are the voxels of this grid, numbered
lexicographically (x fastest).  The paper's liver grid has 2.97e6 voxels
and the prostate grid 1.03e6; scaled instances preserve the aspect ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import GeometryError


@dataclass(frozen=True)
class DoseGrid:
    """A regular 3-D voxel grid.

    Attributes
    ----------
    shape:
        voxel counts ``(nx, ny, nz)``.
    spacing:
        voxel edge lengths in mm ``(dx, dy, dz)``.
    origin:
        world coordinate (mm) of the *center* of voxel (0, 0, 0).
    """

    shape: Tuple[int, int, int]
    spacing: Tuple[float, float, float]
    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(int(n) <= 0 for n in self.shape):
            raise GeometryError(f"invalid grid shape {self.shape}")
        if len(self.spacing) != 3 or any(float(s) <= 0 for s in self.spacing):
            raise GeometryError(f"invalid voxel spacing {self.spacing}")
        object.__setattr__(self, "shape", tuple(int(n) for n in self.shape))
        object.__setattr__(self, "spacing", tuple(float(s) for s in self.spacing))
        object.__setattr__(self, "origin", tuple(float(o) for o in self.origin))

    @property
    def n_voxels(self) -> int:
        """Total voxel count — the row dimension of a deposition matrix."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def voxel_volume_cc(self) -> float:
        """Volume of one voxel in cubic centimetres."""
        dx, dy, dz = self.spacing
        return dx * dy * dz / 1000.0

    @property
    def extent_mm(self) -> Tuple[float, float, float]:
        """Physical size of the grid along each axis (mm)."""
        return tuple(n * s for n, s in zip(self.shape, self.spacing))

    @property
    def center_mm(self) -> np.ndarray:
        """World coordinate of the grid's geometric center."""
        return np.asarray(self.origin) + (
            (np.asarray(self.shape) - 1) * np.asarray(self.spacing)
        ) / 2.0

    def axes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """World coordinates of voxel centers along each axis."""
        return tuple(
            self.origin[a] + np.arange(self.shape[a]) * self.spacing[a]
            for a in range(3)
        )

    def voxel_centers(self) -> np.ndarray:
        """``(n_voxels, 3)`` world coordinates, lexicographic order
        (x fastest, matching :meth:`flatten_index`)."""
        xs, ys, zs = self.axes()
        gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
        return np.stack(
            [gx.ravel(), gy.ravel(), gz.ravel()], axis=1
        )

    def flatten_index(
        self, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray
    ) -> np.ndarray:
        """Map 3-D voxel indices to flat row indices (x fastest)."""
        nx, ny, _ = self.shape
        return (
            np.asarray(iz, dtype=np.int64) * (nx * ny)
            + np.asarray(iy, dtype=np.int64) * nx
            + np.asarray(ix, dtype=np.int64)
        )

    def unflatten_index(
        self, flat: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse of :meth:`flatten_index`."""
        nx, ny, _ = self.shape
        flat = np.asarray(flat, dtype=np.int64)
        iz, rem = np.divmod(flat, nx * ny)
        iy, ix = np.divmod(rem, nx)
        return ix, iy, iz

    def world_to_index(self, points: np.ndarray) -> np.ndarray:
        """Continuous voxel indices of world points ``(n, 3)``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return (points - np.asarray(self.origin)) / np.asarray(self.spacing)

    def contains_index(
        self, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of indices inside the grid."""
        nx, ny, nz = self.shape
        return (
            (np.asarray(ix) >= 0)
            & (np.asarray(ix) < nx)
            & (np.asarray(iy) >= 0)
            & (np.asarray(iy) < ny)
            & (np.asarray(iz) >= 0)
            & (np.asarray(iz) < nz)
        )

    def empty_volume(self, dtype: np.dtype = np.float64) -> np.ndarray:
        """A zero array shaped ``(nz, ny, nx)`` (C order, x fastest)."""
        nx, ny, nz = self.shape
        return np.zeros((nz, ny, nx), dtype=dtype)

    def flat_to_volume(self, flat_values: np.ndarray) -> np.ndarray:
        """Reshape a flat per-voxel vector into the ``(nz, ny, nx)`` volume."""
        flat_values = np.asarray(flat_values)
        if flat_values.shape != (self.n_voxels,):
            raise GeometryError(
                f"expected {self.n_voxels} voxel values, got {flat_values.shape}"
            )
        nx, ny, nz = self.shape
        return flat_values.reshape(nz, ny, nx)
