"""Treatment beams: gantry geometry and the beam's-eye-view (BEV) frame.

A pencil-beam-scanning beam is described by its gantry angle (rotation in
the axial x-y plane, IEC-style), an isocenter, and a virtual source
distance.  Spots are laid out in the BEV plane — the 2-D coordinate system
(u, v) orthogonal to the beam axis, the view Figure 1 of the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import GeometryError


@dataclass(frozen=True)
class Beam:
    """One treatment beam.

    Attributes
    ----------
    name:
        label ("Liver 1", ...).
    gantry_angle_deg:
        0 means the beam travels along +y (entering from anterior);
        angles rotate in the axial (x-y) plane, couch fixed.
    isocenter_mm:
        world coordinate the beam axis passes through (usually the target
        center).
    source_distance_mm:
        distance from the virtual source to the isocenter.
    """

    name: str
    gantry_angle_deg: float
    isocenter_mm: Tuple[float, float, float]
    source_distance_mm: float = 2000.0

    def __post_init__(self) -> None:
        if self.source_distance_mm <= 0:
            raise GeometryError(
                f"source distance must be positive, got {self.source_distance_mm}"
            )
        object.__setattr__(
            self, "isocenter_mm", tuple(float(c) for c in self.isocenter_mm)
        )

    @property
    def direction(self) -> np.ndarray:
        """Unit vector of beam travel (source -> isocenter)."""
        theta = np.deg2rad(self.gantry_angle_deg)
        # gantry 0: +y; gantry 90: +x; rotation in the axial plane.
        return np.array([np.sin(theta), np.cos(theta), 0.0])

    @property
    def bev_axes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Orthonormal (u, v) axes spanning the BEV plane.

        ``u`` lies in the axial plane (perpendicular to the beam),
        ``v`` is the patient's longitudinal axis (z).
        """
        d = self.direction
        u = np.array([d[1], -d[0], 0.0])  # rotate direction by -90 deg
        v = np.array([0.0, 0.0, 1.0])
        return u, v

    @property
    def source_mm(self) -> np.ndarray:
        """World position of the virtual source."""
        return np.asarray(self.isocenter_mm) - self.direction * self.source_distance_mm

    def bev_to_world(self, u_mm: np.ndarray, v_mm: np.ndarray) -> np.ndarray:
        """Map BEV offsets (at the isocenter plane) to world coordinates."""
        u_axis, v_axis = self.bev_axes
        u_mm = np.atleast_1d(np.asarray(u_mm, dtype=np.float64))
        v_mm = np.atleast_1d(np.asarray(v_mm, dtype=np.float64))
        iso = np.asarray(self.isocenter_mm)
        return iso[None, :] + u_mm[:, None] * u_axis[None, :] + v_mm[:, None] * v_axis[None, :]

    def world_to_bev(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project world points into (u, v, depth-along-axis) coordinates.

        Depth is measured from the isocenter plane, positive down-beam.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        rel = points - np.asarray(self.isocenter_mm)[None, :]
        u_axis, v_axis = self.bev_axes
        return rel @ u_axis, rel @ v_axis, rel @ self.direction

    def entry_depth_offset(self) -> float:
        """Distance from isocenter plane back to the source (positive)."""
        return self.source_distance_mm
