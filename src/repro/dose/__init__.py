"""Radiotherapy substrate: phantoms, beams, proton physics, dose engines,
deposition matrices and DVH evaluation."""

from repro.dose.beam import Beam
from repro.dose.bev_plot import render_beams_eye_view
from repro.dose.bragg import (
    BraggCurve,
    bragg_curve,
    energy_from_range_mm,
    lateral_sigma_mm,
    range_from_energy_mm,
    straggling_sigma_mm,
)
from repro.dose.ct import (
    CTImage,
    density_to_hu,
    hu_to_density,
    phantom_from_ct,
    synthesize_ct,
)
from repro.dose.deposition import (
    DepositionConfig,
    DoseDepositionMatrix,
    build_deposition_matrix,
)
from repro.dose.dvh import DVH, compute_dvh, homogeneity_index
from repro.dose.gamma import GammaResult, gamma_index
from repro.dose.grid import DoseGrid
from repro.dose.montecarlo import MCConfig, mc_spot_dose
from repro.dose.pencilbeam import (
    BeamGeometryCache,
    SpotDose,
    beam_chord_mm,
    compute_beam_geometry,
    spot_dose,
)
from repro.dose.phantom import (
    Phantom,
    build_liver_phantom,
    build_prostate_phantom,
)
from repro.dose.spots import SpotMap, generate_spot_map
from repro.dose.structures import ROIMask, box_mask, ellipsoid_mask, sphere_mask

__all__ = [
    "Beam",
    "BraggCurve",
    "bragg_curve",
    "energy_from_range_mm",
    "lateral_sigma_mm",
    "range_from_energy_mm",
    "straggling_sigma_mm",
    "DepositionConfig",
    "DoseDepositionMatrix",
    "build_deposition_matrix",
    "CTImage",
    "density_to_hu",
    "hu_to_density",
    "phantom_from_ct",
    "synthesize_ct",
    "DVH",
    "compute_dvh",
    "homogeneity_index",
    "GammaResult",
    "gamma_index",
    "beam_chord_mm",
    "render_beams_eye_view",
    "DoseGrid",
    "MCConfig",
    "mc_spot_dose",
    "BeamGeometryCache",
    "SpotDose",
    "compute_beam_geometry",
    "spot_dose",
    "Phantom",
    "build_liver_phantom",
    "build_prostate_phantom",
    "SpotMap",
    "generate_spot_map",
    "ROIMask",
    "box_mask",
    "ellipsoid_mask",
    "sphere_mask",
]
