"""Dose deposition matrix assembly.

The central data product: ``A[i, j]`` = dose in voxel ``i`` per unit weight
of spot ``j``.  Columns are computed by the analytic pencil-beam engine
(optionally with a calibrated Monte Carlo noise model emulating the nnz
inflation the paper attributes to RayStation's MC engine) or by the real
MC engine, accumulated as COO and converted to CSR — the same pipeline the
paper describes (engine -> in-house format -> export -> CSR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.dose.beam import Beam
from repro.dose.bragg import BraggCurve, bragg_curve
from repro.dose.montecarlo import MCConfig, mc_spot_dose
from repro.dose.pencilbeam import (
    BeamGeometryCache,
    compute_beam_geometry,
    spot_dose,
)
from repro.dose.phantom import Phantom
from repro.dose.spots import SpotMap, generate_spot_map
from repro.precision.halfsim import dose_scale_for_half
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.errors import GeometryError
from repro.util.rng import RngLike, make_rng, stable_seed

#: Calibrated peak matrix value (Gy per unit spot weight).  Chosen so the
#: per-column cutoff tail (~1e-3 of a column peak) stays far above
#: float16's smallest normal value (6.1e-5).
HALF_CALIBRATION_PEAK = 32.0


@dataclass(frozen=True)
class DepositionConfig:
    """Knobs of the deposition-matrix builder."""

    #: in-air lateral spot sigma (mm).
    sigma0_mm: float = 5.0
    #: lateral truncation in units of sigma.
    cutoff_sigma: float = 3.5
    #: drop entries below this fraction of each column's max.
    relative_cutoff: float = 2e-3
    #: if > 0, add MC-noise entries: each column gains approximately this
    #: fraction of extra non-zeros, with magnitudes near the cutoff level
    #: scattered in a halo around the true dose blob — the paper's nnz
    #: inflation channel.
    mc_noise_fraction: float = 0.15
    #: relative magnitude scale of the noise entries (vs column max).
    mc_noise_level: float = 1.5e-3
    #: engine: "pencilbeam" (analytic + noise model) or "montecarlo".
    engine: str = "pencilbeam"
    #: MC engine configuration (used when engine == "montecarlo").
    mc: MCConfig = MCConfig()

    def __post_init__(self) -> None:
        if self.engine not in ("pencilbeam", "montecarlo"):
            raise GeometryError(f"unknown dose engine {self.engine!r}")


@dataclass(frozen=True)
class DoseDepositionMatrix:
    """A deposition matrix with its provenance."""

    beam: Beam
    spot_map: SpotMap
    #: master copy, float32 CSR (cast to half/single for the kernels).
    matrix: CSRMatrix
    #: scale applied to keep values inside half-precision range.
    half_safety_scale: float

    @property
    def n_voxels(self) -> int:
        return self.matrix.n_rows

    @property
    def n_spots(self) -> int:
        return self.matrix.n_cols

    def as_half(self) -> CSRMatrix:
        """Half-stored copy (the paper's storage precision)."""
        return self.matrix.astype(np.float16)

    def as_single(self) -> CSRMatrix:
        """Single-precision copy (library comparison)."""
        return self.matrix

    def as_double(self) -> CSRMatrix:
        """Double-precision copy (reference)."""
        return self.matrix.astype(np.float64)

    def dose(self, weights: np.ndarray) -> np.ndarray:
        """Reference dose ``A @ w`` in double precision."""
        return self.matrix.matvec(np.asarray(weights, dtype=np.float64))


def _mc_noise_entries(
    rng: np.random.Generator,
    column: "np.ndarray",
    values: "np.ndarray",
    n_voxels: int,
    config: DepositionConfig,
    geometry: BeamGeometryCache,
    spot_u: float,
    spot_v: float,
    curve: BraggCurve,
):
    """Sample noise non-zeros in a halo around a spot's true dose blob."""
    n_noise = int(np.ceil(config.mc_noise_fraction * values.size))
    if n_noise == 0:
        return np.empty(0, np.int64), np.empty(0, np.float64)
    # Halo: voxels laterally just outside the cutoff ring.  Real MC noise
    # is the statistical tail of the lateral profile, so it concentrates
    # right at the ring — which neighbouring spots *share*, keeping the
    # noise rows from degenerating into single-entry rows.
    du = geometry.u_mm - spot_u
    dv = geometry.v_mm - spot_v
    sigma_max = config.sigma0_mm + 0.035 * curve.range_mm
    r = np.sqrt(du**2 + dv**2)
    r_cut = config.cutoff_sigma * sigma_max
    halo = np.flatnonzero(
        (r > r_cut)
        & (r <= 1.8 * r_cut)
        & (geometry.wed_mm > 0)
        & (geometry.wed_mm < curve.range_mm * 1.1)
    )
    halo = np.setdiff1d(halo, column, assume_unique=False)
    if halo.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.float64)
    # Take the ring voxels closest to the cutoff radius: adjacent spots
    # share these voxels (their rings overlap), so noise rows accumulate
    # entries from many spots instead of degenerating into 1-entry rows.
    # Only the deposit *magnitudes* are stochastic.
    n_pick = min(n_noise, halo.size)
    nearest = halo[np.argsort(r[halo], kind="stable")[:n_pick]]
    peak = float(values.max(initial=0.0))
    mags = peak * config.mc_noise_level * rng.exponential(1.0, size=nearest.size)
    return nearest.astype(np.int64), mags


def build_deposition_matrix(
    phantom: Phantom,
    beam: Beam,
    spot_spacing_mm: float = 6.0,
    layer_spacing_mm: float = 8.0,
    config: DepositionConfig = DepositionConfig(),
    rng: RngLike = None,
    geometry: Optional[BeamGeometryCache] = None,
    spot_map: Optional[SpotMap] = None,
) -> DoseDepositionMatrix:
    """Build the deposition matrix for one beam.

    Deterministic for a given seed: the default RNG is derived from the
    phantom and beam names, so the six paper cases regenerate identically
    across sessions.
    """
    if rng is None:
        rng = stable_seed("deposition", phantom.name, beam.name)
    rng = make_rng(rng)
    if geometry is None:
        geometry = compute_beam_geometry(phantom, beam)
    if spot_map is None:
        spot_map = generate_spot_map(
            phantom,
            beam,
            geometry,
            spot_spacing_mm=spot_spacing_mm,
            layer_spacing_mm=layer_spacing_mm,
        )

    from repro.dose.pencilbeam import beam_chord_mm

    chord_mm = beam_chord_mm(phantom.grid, beam)
    curves: Dict[int, BraggCurve] = {
        li: bragg_curve(float(energy_from_depth))
        for li, energy_from_depth in enumerate(
            np.asarray(
                [spot_map.energy_mev[spot_map.spots_in_layer(li)[0]]
                 for li in range(spot_map.n_layers)]
            )
        )
    }

    rows_parts = []
    cols_parts = []
    vals_parts = []
    for j in range(spot_map.n_spots):
        li = int(spot_map.layer[j])
        curve = curves[li]
        if config.engine == "montecarlo":
            sd = mc_spot_dose(
                phantom,
                geometry,
                curve,
                float(spot_map.u_mm[j]),
                float(spot_map.v_mm[j]),
                config=config.mc,
                rng=rng,
            )
        else:
            sd = spot_dose(
                geometry,
                curve,
                float(spot_map.u_mm[j]),
                float(spot_map.v_mm[j]),
                sigma0_mm=config.sigma0_mm,
                cutoff_sigma=config.cutoff_sigma,
                relative_cutoff=config.relative_cutoff,
                depth_averaging_mm=chord_mm,
            )
            if config.mc_noise_fraction > 0 and sd.voxel_indices.size:
                noise_idx, noise_val = _mc_noise_entries(
                    rng,
                    sd.voxel_indices,
                    sd.dose,
                    phantom.grid.n_voxels,
                    config,
                    geometry,
                    float(spot_map.u_mm[j]),
                    float(spot_map.v_mm[j]),
                    curve,
                )
                if noise_idx.size:
                    sd = type(sd)(
                        np.concatenate([sd.voxel_indices, noise_idx]),
                        np.concatenate([sd.dose, noise_val]),
                    )
        if sd.voxel_indices.size == 0:
            continue
        rows_parts.append(sd.voxel_indices)
        cols_parts.append(np.full(sd.voxel_indices.size, j, dtype=np.int64))
        vals_parts.append(sd.dose)

    if not rows_parts:
        raise GeometryError(
            f"beam {beam.name!r} deposited no dose; check geometry"
        )
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    vals = np.concatenate(vals_parts)

    # Calibrate to a Gy-per-weight scale whose magnitudes sit comfortably
    # inside half precision's *normal* range: raw kernel values are
    # O(1e-4) and their small tail would land in float16 subnormals,
    # costing relative accuracy half storage does not otherwise lose.
    # (RayStation's exported matrices are likewise calibrated to clinical
    # dose units.)  dose_scale_for_half guards the overflow side.
    peak = float(vals.max())
    scale = (HALF_CALIBRATION_PEAK / peak) if peak > 0 else 1.0
    scale *= dose_scale_for_half(peak * scale)
    vals = vals * scale

    coo = COOMatrix(
        (phantom.grid.n_voxels, spot_map.n_spots), rows, cols, vals
    )
    csr = coo_to_csr(coo, value_dtype=np.float32, index_dtype=np.int32)
    return DoseDepositionMatrix(
        beam=beam,
        spot_map=spot_map,
        matrix=csr,
        half_safety_scale=scale,
    )
