"""CT images and Hounsfield-unit calibration.

The paper's workflow begins with "contours ... delineated on computed
tomography (CT) images"; dose engines do not consume densities directly
but CT numbers (Hounsfield units) converted through a scanner-specific
calibration curve.  This module supplies that step for the synthetic
pipeline:

* :func:`density_to_hu` / :func:`hu_to_density` — a piecewise-linear
  stoichiometric-style calibration (air / lung / adipose / soft tissue /
  bone anchor points);
* :class:`CTImage` — an HU volume on a grid, possibly at a different
  resolution than the dose grid, with resampling;
* :func:`synthesize_ct` — a CT of a phantom with realistic acquisition
  noise, so the round trip (phantom -> CT -> densities -> dose) exercises
  the same lossy path a clinic's data takes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.dose.grid import DoseGrid
from repro.dose.phantom import Phantom
from repro.util.errors import GeometryError
from repro.util.rng import RngLike, make_rng

#: Calibration anchor points: (mass density g/cc, Hounsfield units).
#: Air, lung, adipose, water/soft tissue, dense bone.
_CALIBRATION = np.array(
    [
        (0.001, -1000.0),
        (0.30, -700.0),
        (0.92, -80.0),
        (1.00, 0.0),
        (1.10, 80.0),
        (1.60, 1000.0),
        (2.20, 2000.0),
    ]
)


def density_to_hu(density: np.ndarray) -> np.ndarray:
    """Mass density (g/cc) -> Hounsfield units via the calibration curve."""
    density = np.asarray(density, dtype=np.float64)
    if np.any(density < 0):
        raise GeometryError("densities must be non-negative")
    return np.interp(density, _CALIBRATION[:, 0], _CALIBRATION[:, 1])


def hu_to_density(hu: np.ndarray) -> np.ndarray:
    """Hounsfield units -> mass density (g/cc); clamps outside the curve."""
    hu = np.asarray(hu, dtype=np.float64)
    return np.interp(hu, _CALIBRATION[:, 1], _CALIBRATION[:, 0])


@dataclass(frozen=True)
class CTImage:
    """An HU volume on its acquisition grid."""

    grid: DoseGrid
    #: HU values shaped ``(nz, ny, nx)``, conventionally int16-ranged.
    hu: np.ndarray

    def __post_init__(self) -> None:
        nx, ny, nz = self.grid.shape
        hu = np.asarray(self.hu, dtype=np.float64)
        if hu.shape != (nz, ny, nx):
            raise GeometryError(
                f"HU volume shape {hu.shape} does not match grid {(nz, ny, nx)}"
            )
        hu.setflags(write=False)
        object.__setattr__(self, "hu", hu)

    def density(self) -> np.ndarray:
        """Converted density volume (the dose engine's input)."""
        return hu_to_density(self.hu)

    def resampled_to(self, dose_grid: DoseGrid) -> "CTImage":
        """Trilinear resample onto a dose grid (CT is usually finer)."""
        centers = dose_grid.voxel_centers()
        frac = self.grid.world_to_index(centers)
        coords = np.stack([frac[:, 2], frac[:, 1], frac[:, 0]])
        values = ndimage.map_coordinates(
            self.hu, coords, order=1, mode="nearest"
        )
        nx, ny, nz = dose_grid.shape
        return CTImage(dose_grid, values.reshape(nz, ny, nx))


def synthesize_ct(
    phantom: Phantom,
    noise_hu: float = 20.0,
    upsample: int = 1,
    rng: RngLike = None,
) -> CTImage:
    """Acquire a synthetic CT of a phantom.

    ``noise_hu`` is the Gaussian acquisition-noise sigma (clinical
    abdominal CTs sit around 10-30 HU); ``upsample`` acquires at a finer
    in-plane resolution than the dose grid, as real scanners do.
    """
    if noise_hu < 0:
        raise GeometryError("noise must be non-negative")
    if upsample < 1:
        raise GeometryError("upsample must be >= 1")
    rng = make_rng(rng)
    grid = phantom.grid
    if upsample == 1:
        ct_grid = grid
        density = phantom.density
    else:
        nx, ny, nz = grid.shape
        dx, dy, dz = grid.spacing
        ct_grid = DoseGrid(
            (nx * upsample, ny * upsample, nz),
            (dx / upsample, dy / upsample, dz),
            origin=grid.origin,
        )
        density = np.repeat(
            np.repeat(phantom.density, upsample, axis=1), upsample, axis=2
        )
    hu = density_to_hu(density)
    hu = hu + rng.normal(0.0, noise_hu, size=hu.shape)
    return CTImage(ct_grid, hu)


def phantom_from_ct(
    ct: CTImage, reference: Phantom, dose_grid: DoseGrid = None
) -> Phantom:
    """Rebuild a dose-engine phantom from a CT (the clinical direction).

    Densities come from the CT through the calibration curve; contours are
    carried over from the reference phantom (re-gridded if needed).
    """
    dose_grid = dose_grid or reference.grid
    resampled = ct if ct.grid.shape == dose_grid.shape else ct.resampled_to(dose_grid)
    density = hu_to_density(resampled.hu)
    return Phantom(
        name=f"{reference.name}-from-ct",
        grid=dose_grid,
        density=density,
        structures=dict(reference.structures),
    )
