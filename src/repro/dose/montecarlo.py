"""Simplified Monte Carlo proton transport.

The paper's deposition matrices come from RayStation's Monte Carlo engine,
whose statistical noise "can lead to an artificial increase of the
non-zero values in the dose deposition matrix" (Section II-A).  This
module provides a genuinely stochastic engine with exactly that property:

* each spot transports ``n_particles`` protons;
* a proton enters at a Gaussian-sampled lateral offset, carries a
  Gaussian-sampled range (straggling), and performs a lateral random walk
  while depositing energy along its path according to the Bragg curve;
* deposits are scored into voxels; rare scattered deposits land in voxels
  the analytic kernel would never touch — the nnz inflation.

It is orders of magnitude slower than the analytic engine, so the default
case pipeline uses :mod:`repro.dose.pencilbeam` with a calibrated noise
model (see :mod:`repro.dose.deposition`); the MC engine is used by tests
(statistical convergence to the analytic kernel) and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dose.bragg import BraggCurve, lateral_sigma_mm, straggling_sigma_mm
from repro.dose.pencilbeam import BeamGeometryCache, SpotDose
from repro.dose.phantom import Phantom
from repro.util.errors import GeometryError
from repro.util.rng import RngLike, make_rng


@dataclass(frozen=True)
class MCConfig:
    """Monte Carlo transport parameters."""

    n_particles: int = 2000
    step_mm: float = 2.0
    #: in-air lateral spot sigma.
    sigma0_mm: float = 5.0
    #: deposits below this fraction of the column max are kept with the
    #: matrix (RayStation's behaviour); set a floor > 0 to truncate.
    relative_cutoff: float = 0.0

    def __post_init__(self) -> None:
        if self.n_particles <= 0:
            raise GeometryError("n_particles must be positive")
        if self.step_mm <= 0:
            raise GeometryError("step must be positive")


def mc_spot_dose(
    phantom: Phantom,
    geometry: BeamGeometryCache,
    curve: BraggCurve,
    spot_u_mm: float,
    spot_v_mm: float,
    config: MCConfig = MCConfig(),
    rng: RngLike = None,
) -> SpotDose:
    """Transport one spot's protons and score dose per voxel.

    Returns dose per unit spot weight (normalized by particle count), on
    the same scale as :func:`repro.dose.pencilbeam.spot_dose` up to MC
    noise.
    """
    rng = make_rng(rng)
    grid = phantom.grid
    beam = geometry.beam
    n = config.n_particles

    ranges = curve.range_mm + rng.normal(
        0.0, straggling_sigma_mm(curve.range_mm), size=n
    )
    ranges = np.clip(ranges, config.step_mm, None)
    u0 = spot_u_mm + rng.normal(0.0, config.sigma0_mm, size=n)
    v0 = spot_v_mm + rng.normal(0.0, config.sigma0_mm, size=n)

    max_steps = int(np.ceil(ranges.max() / config.step_mm)) + 1
    u_axis, v_axis = beam.bev_axes
    direction = beam.direction
    iso = np.asarray(beam.isocenter_mm)

    # March all particles in lockstep through water-equivalent depth.
    # Lateral MCS random walk: per-step kicks sized so the accumulated
    # spread matches lateral_sigma_mm at each depth.
    nx, ny, nz = grid.shape
    dose_flat = np.zeros(grid.n_voxels, dtype=np.float64)
    u = u0.copy()
    v = v0.copy()
    # Entry plane: start marching where the beam first meets the grid.
    # We use the geometry cache's convention: depth below is WED.
    wed = np.zeros(n)
    # Entry positions were already sampled with the in-air sigma, so the
    # MCS random walk only adds the width *growth* beyond sigma0.
    prev_sigma = np.full(n, config.sigma0_mm)
    # Physical position along the axis: approximate WED == geometric depth
    # scaled by local density 1.0 (water-dominated phantoms); entry point
    # found by marching from the upstream grid face.
    entry_s = _entry_offset(phantom, beam)
    s = np.full(n, entry_s)
    alive = np.ones(n, dtype=bool)
    # Each particle sees the depth-dose *rescaled to its own sampled
    # range* (straggling enters through the range distribution only; the
    # tabulated curve's own straggle must not be applied a second time or
    # the distal tail is truncated and the peak over-concentrates).
    stretch = curve.range_mm / ranges
    for _ in range(max_steps):
        if not alive.any():
            break
        wed_mid = wed[alive] + config.step_mm / 2.0
        scaled_depth = wed_mid * stretch[alive]
        deposit = curve.dose_at(scaled_depth) * config.step_mm * stretch[alive]
        # Kill particles past their (scaled) table end.
        past = scaled_depth > curve.depths_mm[-1]
        deposit[past] = 0.0
        world = (
            iso[None, :]
            + u[alive, None] * u_axis[None, :]
            + v[alive, None] * v_axis[None, :]
            + (s[alive, None] + config.step_mm / 2.0) * direction[None, :]
        )
        frac = grid.world_to_index(world)
        ix = np.rint(frac[:, 0]).astype(np.int64)
        iy = np.rint(frac[:, 1]).astype(np.int64)
        iz = np.rint(frac[:, 2]).astype(np.int64)
        inside = grid.contains_index(ix, iy, iz) & (deposit > 0)
        if inside.any():
            flat = grid.flatten_index(ix[inside], iy[inside], iz[inside])
            np.add.at(dose_flat, flat, deposit[inside])
        # Advance: depth, position, lateral random walk.
        wed[alive] += config.step_mm
        s[alive] += config.step_mm
        target_sigma = lateral_sigma_mm(wed[alive], curve.range_mm, config.sigma0_mm)
        kick = np.sqrt(np.maximum(target_sigma**2 - prev_sigma[alive] ** 2, 0.0))
        u[alive] += rng.normal(0.0, 1.0, size=int(alive.sum())) * kick
        v[alive] += rng.normal(0.0, 1.0, size=int(alive.sum())) * kick
        prev_sigma[alive] = target_sigma
        alive[alive] = (
            wed[alive] * stretch[alive] <= curve.depths_mm[-1] + config.step_mm
        )

    dose_flat /= n
    nz_idx = np.flatnonzero(dose_flat > 0)
    values = dose_flat[nz_idx]
    if config.relative_cutoff > 0 and values.size:
        keep = values >= config.relative_cutoff * values.max()
        nz_idx, values = nz_idx[keep], values[keep]
    return SpotDose(nz_idx.astype(np.int64), values)


def _entry_offset(phantom: Phantom, beam: "Beam") -> float:  # noqa: F821
    """Axis offset (from isocenter, negative upstream) where the beam
    first meets tissue, found by coarse marching."""
    grid = phantom.grid
    extent = float(max(grid.extent_mm)) * 1.5
    steps = np.linspace(-extent, 0.0, 200)
    u_axis, v_axis = beam.bev_axes
    iso = np.asarray(beam.isocenter_mm)
    world = iso[None, :] + steps[:, None] * beam.direction[None, :]
    frac = grid.world_to_index(world)
    ix = np.rint(frac[:, 0]).astype(np.int64)
    iy = np.rint(frac[:, 1]).astype(np.int64)
    iz = np.rint(frac[:, 2]).astype(np.int64)
    inside = grid.contains_index(ix, iy, iz)
    if not inside.any():
        return -extent
    dens = np.zeros(steps.shape[0])
    flat = grid.flatten_index(ix[inside], iy[inside], iz[inside])
    dens[inside] = phantom.density_flat()[flat]
    tissue = np.flatnonzero(dens > 0.05)
    if tissue.size == 0:
        return -extent
    return float(steps[tissue[0]])
