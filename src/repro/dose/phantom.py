"""Voxel phantoms for the two paper cases: liver and prostate.

The paper's patient CTs are not available; these synthetic phantoms supply
what the dose engine actually consumes — a mass-density volume and the
target/organ contours — with realistic anatomy-scale heterogeneity (lung
air, soft tissue, bone) so radiological depth differs along beam angles,
as it does for a real liver 4-beam arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.dose.grid import DoseGrid
from repro.dose.structures import ROIMask, ellipsoid_mask, sphere_mask
from repro.util.errors import GeometryError

#: Mass densities in g/cc.
DENSITY_AIR = 0.001
DENSITY_LUNG = 0.30
DENSITY_FAT = 0.92
DENSITY_SOFT = 1.00
DENSITY_LIVER = 1.06
DENSITY_BONE = 1.60


@dataclass(frozen=True)
class Phantom:
    """A synthetic patient: grid, densities and contoured structures."""

    name: str
    grid: DoseGrid
    #: density volume (g/cc) shaped ``(nz, ny, nx)``.
    density: np.ndarray
    #: contoured structures; must include ``"target"``.
    structures: Dict[str, ROIMask] = field(default_factory=dict)

    def __post_init__(self) -> None:
        nx, ny, nz = self.grid.shape
        density = np.asarray(self.density, dtype=np.float64)
        if density.shape != (nz, ny, nx):
            raise GeometryError(
                f"density shape {density.shape} does not match grid "
                f"{(nz, ny, nx)}"
            )
        if np.any(density < 0):
            raise GeometryError("densities must be non-negative")
        if "target" not in self.structures:
            raise GeometryError(f"phantom {self.name!r} must contour a 'target'")
        density.setflags(write=False)
        object.__setattr__(self, "density", density)

    @property
    def target(self) -> ROIMask:
        """The tumor volume the plan must cover."""
        return self.structures["target"]

    def oar_names(self) -> Tuple[str, ...]:
        """Organ-at-risk structure names (everything except the target/body)."""
        return tuple(
            n for n in self.structures if n not in ("target", "body")
        )

    def density_flat(self) -> np.ndarray:
        """Flat per-voxel densities (lexicographic order)."""
        return self.density.ravel()


def _body_ellipse(
    grid: DoseGrid, rx: float = 0.44, ry: float = 0.42
) -> np.ndarray:
    """Elliptic-cylinder body outline filled with soft tissue density.

    ``rx``/``ry`` are half-axis fractions of the grid extent.
    """
    ex, ey, _ = grid.extent_mm
    cx, cy, _ = grid.center_mm
    xs, ys, zs = grid.axes()
    gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
    inside = ((gx - cx) / (rx * ex)) ** 2 + ((gy - cy) / (ry * ey)) ** 2 <= 1.0
    density = np.full(inside.shape, DENSITY_AIR)
    density[inside] = DENSITY_SOFT
    return density


def build_liver_phantom(
    shape: Tuple[int, int, int] = (45, 44, 30),
    spacing: Tuple[float, float, float] = (6.0, 6.0, 8.0),
) -> Phantom:
    """The liver case: four-beam geometry, target inside the liver.

    Anatomy: elliptic body, right-sided liver with an embedded spherical
    GTV, left lung remnant (low density) superiorly, spinal cord
    posteriorly, and a vertebral bone column.  The default shape gives
    59 400 voxels — 1/50 of the paper's 2.97e6-voxel liver grid.
    """
    grid = DoseGrid(shape, spacing)
    density = _body_ellipse(grid)
    cx, cy, cz = grid.center_mm
    ex, ey, ez = grid.extent_mm

    xs, ys, zs = grid.axes()
    gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")

    # Liver: large ellipsoid on the patient's right (our +x), mid-anterior.
    liver_center = (cx + 0.16 * ex, cy - 0.07 * ey, cz + 0.05 * ez)
    liver = ellipsoid_mask(
        grid, liver_center, (0.24 * ex, 0.22 * ey, 0.32 * ez), "liver"
    )
    density[liver.mask] = DENSITY_LIVER

    # Lung remnant superiorly on the left: low density wedge.
    lung = ellipsoid_mask(
        grid,
        (cx - 0.22 * ex, cy - 0.05 * ey, cz + 0.3 * ez),
        (0.14 * ex, 0.18 * ey, 0.18 * ez),
        "lung",
    )
    density[lung.mask] = DENSITY_LUNG

    # Vertebral column: posterior bone cylinder.
    bone = ellipsoid_mask(
        grid,
        (cx, cy + 0.3 * ey, cz),
        (0.05 * ex, 0.06 * ey, 0.55 * ez),
        "vertebrae",
    )
    density[bone.mask] = DENSITY_BONE

    # Spinal cord inside the column.
    cord = ellipsoid_mask(
        grid,
        (cx, cy + 0.3 * ey, cz),
        (0.018 * ex, 0.02 * ey, 0.55 * ez),
        "spinal_cord",
    )

    # GTV: sphere inside the liver.
    target = sphere_mask(
        grid,
        (liver_center[0] - 0.02 * ex, liver_center[1], liver_center[2]),
        0.11 * min(ex, ey),
        "target",
    )

    body_mask = density > DENSITY_AIR * 2
    body = ROIMask("body", grid, body_mask)
    return Phantom(
        name="liver",
        grid=grid,
        density=density,
        structures={
            "target": target,
            "liver": liver.minus(target, "liver"),
            "lung": lung,
            "spinal_cord": cord,
            "body": body,
        },
    )


def build_prostate_phantom(
    shape: Tuple[int, int, int] = (36, 33, 18),
    spacing: Tuple[float, float, float] = (7.0, 7.0, 9.0),
) -> Phantom:
    """The prostate case: two parallel-opposed lateral beams.

    Anatomy: pelvis body, central prostate target, bladder anterior,
    rectum posterior, femoral heads laterally (bone the lateral beams
    traverse).  The default shape gives 21 384 voxels — ~1/50 of the
    paper's 1.03e6-voxel prostate grid.
    """
    grid = DoseGrid(shape, spacing)
    density = _body_ellipse(grid, rx=0.46, ry=0.40)
    cx, cy, cz = grid.center_mm
    ex, ey, ez = grid.extent_mm

    # Prostate: small central ellipsoid, slightly posterior.
    target = ellipsoid_mask(
        grid,
        (cx, cy + 0.06 * ey, cz),
        (0.085 * ex, 0.09 * ey, 0.16 * ez),
        "target",
    )

    bladder = ellipsoid_mask(
        grid,
        (cx, cy - 0.14 * ey, cz + 0.05 * ez),
        (0.14 * ex, 0.12 * ey, 0.22 * ez),
        "bladder",
    )

    rectum = ellipsoid_mask(
        grid,
        (cx, cy + 0.24 * ey, cz),
        (0.06 * ex, 0.07 * ey, 0.3 * ez),
        "rectum",
    )
    # Rectal gas pocket lowers density.
    density[rectum.mask] = 0.6

    femur_r = ellipsoid_mask(
        grid,
        (cx + 0.32 * ex, cy + 0.02 * ey, cz),
        (0.07 * ex, 0.09 * ey, 0.28 * ez),
        "femoral_head_r",
    )
    femur_l = ellipsoid_mask(
        grid,
        (cx - 0.32 * ex, cy + 0.02 * ey, cz),
        (0.07 * ex, 0.09 * ey, 0.28 * ez),
        "femoral_head_l",
    )
    density[femur_r.mask] = DENSITY_BONE
    density[femur_l.mask] = DENSITY_BONE

    body_mask = density > DENSITY_AIR * 2
    body = ROIMask("body", grid, body_mask)
    return Phantom(
        name="prostate",
        grid=grid,
        density=density,
        structures={
            "target": target,
            "bladder": bladder.minus(target, "bladder"),
            "rectum": rectum.minus(target, "rectum"),
            "femoral_head_r": femur_r,
            "femoral_head_l": femur_l,
            "body": body,
        },
    )
