"""Gamma-index analysis — the clinical standard for comparing dose grids.

When a clinic changes its dose engine (say, from a CPU SpMV to the paper's
GPU kernel, or from pencil beam to Monte Carlo), the new distribution must
be shown equivalent to the old one.  The gamma index (Low et al., 1998)
is the accepted metric: point ``r`` of the evaluated distribution passes
against reference distribution ``D_ref`` if some nearby reference point
``r'`` satisfies

    sqrt( |r - r'|^2 / dta^2  +  (D_eval(r) - D_ref(r'))^2 / dd^2 ) <= 1

with criteria ``dta`` (distance-to-agreement, typically 3 mm) and ``dd``
(dose difference, typically 3 % of the prescription).  A plan change is
conventionally accepted when >= 95 % of points above a low-dose threshold
pass at 3 %/3 mm.

This implementation does the exact local search over a voxel neighbourhood
(vectorized per offset), sufficient for the grid sizes in this library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dose.grid import DoseGrid
from repro.util.errors import ShapeError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class GammaResult:
    """Outcome of a gamma analysis."""

    #: per-voxel gamma values over evaluated voxels (NaN below threshold).
    gamma: np.ndarray
    #: fraction of evaluated voxels with gamma <= 1.
    pass_rate: float
    #: number of voxels evaluated (above the dose threshold).
    n_evaluated: int
    dd_fraction: float
    dta_mm: float

    @property
    def accepted(self) -> bool:
        """The conventional 95 % acceptance criterion."""
        return self.pass_rate >= 0.95

    @property
    def mean_gamma(self) -> float:
        vals = self.gamma[np.isfinite(self.gamma)]
        return float(vals.mean()) if vals.size else 0.0


def gamma_index(
    reference: np.ndarray,
    evaluated: np.ndarray,
    grid: DoseGrid,
    dd_fraction: float = 0.03,
    dta_mm: float = 3.0,
    dose_threshold_fraction: float = 0.10,
    normalization: float = None,
) -> GammaResult:
    """Global-gamma analysis of two flat dose vectors on one grid.

    Parameters
    ----------
    reference / evaluated:
        flat per-voxel doses (lexicographic order).
    dd_fraction:
        dose-difference criterion as a fraction of ``normalization``.
    dta_mm:
        distance-to-agreement criterion.
    dose_threshold_fraction:
        voxels with reference dose below this fraction of the
        normalization are excluded (standard practice: the low-dose bath
        is clinically irrelevant and numerically noisy).
    normalization:
        dose normalizing both criteria; defaults to the reference maximum
        (global gamma).
    """
    check_positive(dd_fraction, "dd_fraction")
    check_positive(dta_mm, "dta_mm")
    reference = np.asarray(reference, dtype=np.float64)
    evaluated = np.asarray(evaluated, dtype=np.float64)
    if reference.shape != (grid.n_voxels,) or evaluated.shape != reference.shape:
        raise ShapeError(
            f"dose vectors must both have shape ({grid.n_voxels},); got "
            f"{reference.shape} and {evaluated.shape}"
        )
    if normalization is None:
        normalization = float(reference.max())
    if normalization <= 0:
        raise ShapeError("reference distribution has no dose to normalize by")

    ref_vol = grid.flat_to_volume(reference)
    ev_vol = grid.flat_to_volume(evaluated)
    dd_abs = dd_fraction * normalization

    # Search neighbourhood: all voxel offsets within dta (plus one ring,
    # since a closer continuous point may live inside a farther voxel).
    dx, dy, dz = grid.spacing
    rx = int(np.ceil(dta_mm / dx)) + 1
    ry = int(np.ceil(dta_mm / dy)) + 1
    rz = int(np.ceil(dta_mm / dz)) + 1

    evaluate_mask = ref_vol >= dose_threshold_fraction * normalization
    gamma_sq = np.full(ref_vol.shape, np.inf)

    for oz in range(-rz, rz + 1):
        for oy in range(-ry, ry + 1):
            for ox in range(-rx, rx + 1):
                dist_sq = (ox * dx) ** 2 + (oy * dy) ** 2 + (oz * dz) ** 2
                space_term = dist_sq / dta_mm**2
                if space_term > 9.0:
                    continue  # cannot bring gamma below 3; irrelevant
                shifted = _shift(ref_vol, oz, oy, ox)
                dose_term = (ev_vol - shifted) ** 2 / dd_abs**2
                np.minimum(gamma_sq, space_term + dose_term, out=gamma_sq)

    gamma = np.sqrt(gamma_sq)
    gamma[~evaluate_mask] = np.nan
    evaluated_vals = gamma[evaluate_mask]
    n_eval = int(evaluate_mask.sum())
    pass_rate = (
        float(np.count_nonzero(evaluated_vals <= 1.0)) / n_eval if n_eval else 1.0
    )
    return GammaResult(
        gamma=gamma.ravel(),
        pass_rate=pass_rate,
        n_evaluated=n_eval,
        dd_fraction=dd_fraction,
        dta_mm=dta_mm,
    )


def _shift(volume: np.ndarray, oz: int, oy: int, ox: int) -> np.ndarray:
    """``shifted[k] = volume[k + offset]`` with indices clamped at edges."""
    nz, ny, nx = volume.shape
    z = np.clip(np.arange(nz) + oz, 0, nz - 1)
    y = np.clip(np.arange(ny) + oy, 0, ny - 1)
    x = np.clip(np.arange(nx) + ox, 0, nx - 1)
    return volume[np.ix_(z, y, x)]
