"""Reference SpMV implementations and FLOP accounting.

Every simulated kernel is validated against :func:`spmv_reference`.  The
module also centralizes the paper's FLOP convention — SpMV performs exactly
``2 * nnz`` floating-point operations (one multiply + one add per stored
value) — so all GFLOP/s numbers across benches use the same numerator.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ellpack import ELLMatrix
from repro.sparse.rscf import RSCFMatrix
from repro.sparse.sellcs import SellCSigmaMatrix

AnySparse = Union[CSRMatrix, COOMatrix, ELLMatrix, SellCSigmaMatrix, RSCFMatrix]


def spmv_flops(matrix: AnySparse) -> int:
    """Floating-point operations for one SpMV: ``2 * nnz``.

    This is the convention the paper uses to convert measured time into
    GFLOP/s and to compute operational intensity.
    """
    return 2 * matrix.nnz


def spmv_reference(
    matrix: AnySparse, x: np.ndarray, accum_dtype: np.dtype = np.float64
) -> np.ndarray:
    """Format-dispatching reference SpMV ``y = A @ x``.

    Accumulation happens in ``accum_dtype`` (double by default — the
    RayStation requirement for the input/output vectors).
    """
    return matrix.matvec(x, accum_dtype=accum_dtype)


def spmv_rowwise_python(
    matrix: CSRMatrix, x: np.ndarray, accum_dtype: np.dtype = np.float64
) -> np.ndarray:
    """A deliberately simple scalar row loop (oracle for the oracle).

    Slow and only used in tests to cross-check the vectorized
    :meth:`CSRMatrix.matvec` on small matrices; accumulates strictly
    left-to-right per row, which is also the ordering the fixed-order warp
    reduction must be equivalent to in exact arithmetic.
    """
    x = np.asarray(x, dtype=accum_dtype)
    y = np.zeros(matrix.n_rows, dtype=accum_dtype)
    for i in range(matrix.n_rows):
        start, end = int(matrix.indptr[i]), int(matrix.indptr[i + 1])
        acc = np.zeros((), dtype=accum_dtype)
        for k in range(start, end):
            acc = acc + np.asarray(
                matrix.data[k], dtype=accum_dtype
            ) * x[int(matrix.indices[k])]
        y[i] = acc
    return y


def relative_error(y: np.ndarray, y_ref: np.ndarray) -> float:
    """Relative L2 error ``||y - y_ref|| / ||y_ref||`` (0 if ref is zero)."""
    y = np.asarray(y, dtype=np.float64)
    y_ref = np.asarray(y_ref, dtype=np.float64)
    denom = float(np.linalg.norm(y_ref))
    if denom == 0.0:
        return float(np.linalg.norm(y))
    return float(np.linalg.norm(y - y_ref)) / denom
