"""Compressed Sparse Row (CSR) matrices.

This is the format the paper converts RayStation's custom compressed format
into, and the format all evaluated SpMV kernels operate on.  We implement it
from scratch (three arrays: ``data`` in row-major order, ``indices`` with the
column of each value, ``indptr`` with the start of each row) rather than using
``scipy.sparse`` so that:

* value storage can be IEEE-754 half precision (``float16``) while keeping
  full control over the accumulation dtype, matching the paper's mixed
  half/double requirement;
* the index width is explicit (``int32`` by default, ``uint16`` available for
  the column-index-width ablation the paper proposes as future work);
* the GPU simulator can inspect raw arrays to count memory transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import DTypeError, FormatError, ShapeError
from repro.util.validation import check_1d, check_index_range

#: Value dtypes a dose deposition matrix may be stored in.
VALUE_DTYPES = (np.float16, np.float32, np.float64)

#: Index dtypes supported for ``indices`` (column indices).
INDEX_DTYPES = (np.int32, np.int64, np.uint16, np.uint32)


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR sparse matrix.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    data:
        Non-zero values in row-major order, length ``nnz``.
    indices:
        Column index of each value, length ``nnz``.
    indptr:
        Row start offsets, length ``n_rows + 1``, monotonically
        non-decreasing, ``indptr[0] == 0`` and ``indptr[-1] == nnz``.
    """

    shape: Tuple[int, int]
    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ShapeError(f"negative matrix shape {self.shape}")
        data = check_1d(self.data, "data")
        indices = check_1d(self.indices, "indices")
        indptr = check_1d(self.indptr, "indptr")
        if data.dtype not in [np.dtype(d) for d in VALUE_DTYPES]:
            raise DTypeError(f"unsupported value dtype {data.dtype}")
        if indices.dtype not in [np.dtype(d) for d in INDEX_DTYPES]:
            raise DTypeError(f"unsupported index dtype {indices.dtype}")
        if indptr.shape[0] != n_rows + 1:
            raise FormatError(
                f"indptr has length {indptr.shape[0]}, expected {n_rows + 1}"
            )
        if data.shape[0] != indices.shape[0]:
            raise FormatError(
                f"data ({data.shape[0]}) and indices ({indices.shape[0]}) "
                "length mismatch"
            )
        if indptr.shape[0] and (indptr[0] != 0 or indptr[-1] != data.shape[0]):
            raise FormatError(
                f"indptr endpoints ({indptr[0]}, {indptr[-1]}) do not match "
                f"nnz {data.shape[0]}"
            )
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be monotonically non-decreasing")
        check_index_range(indices, n_cols, "indices")
        # Freeze the buffers so the dataclass is genuinely immutable.
        for arr in (data, indices, indptr):
            arr.setflags(write=False)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "indptr", indptr)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_arrays(
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Build from raw arrays, normalizing dtypes (values kept as given)."""
        data = np.ascontiguousarray(data)
        indices = np.ascontiguousarray(indices)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        return CSRMatrix(tuple(shape), data, indices, indptr)

    @staticmethod
    def from_dense(
        dense: np.ndarray,
        value_dtype: np.dtype = np.float32,
        index_dtype: np.dtype = np.int32,
    ) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"dense must be 2-D, got {dense.shape}")
        rows, cols = np.nonzero(dense)
        data = dense[rows, cols].astype(value_dtype)
        indices = cols.astype(index_dtype)
        counts = np.bincount(rows, minlength=dense.shape[0])
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(dense.shape, data, indices, indptr)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def n_rows(self) -> int:
        """Number of rows (dose-grid voxels for a deposition matrix)."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns (spots for a deposition matrix)."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """Fraction of entries stored (the paper's "non-zero ratio")."""
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    @property
    def value_dtype(self) -> np.dtype:
        """Dtype the non-zero values are stored in."""
        return self.data.dtype

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype the column indices are stored in."""
        return self.indices.dtype

    def row_lengths(self) -> np.ndarray:
        """Non-zeros per row, length ``n_rows`` (int64)."""
        return np.diff(self.indptr)

    def nbytes(self) -> int:
        """Total bytes of the three storage arrays."""
        return int(self.data.nbytes + self.indices.nbytes + self.indptr.nbytes)

    def size_bytes_paper(self) -> int:
        """Bytes counted the way the paper's Table I does.

        Table I counts value + 4-byte column index per non-zero with the
        value width given by the storage precision; the indptr array is
        negligible and excluded.
        """
        return int(self.nnz * (self.data.dtype.itemsize + 4))

    # ------------------------------------------------------------------ #
    # Row access and arithmetic
    # ------------------------------------------------------------------ #

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row ``i``."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        start, end = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:end], self.data[start:end]

    def matvec(
        self, x: np.ndarray, accum_dtype: np.dtype = np.float64
    ) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` with explicit accumulation dtype.

        This is the *numerical oracle* the simulated kernels are tested
        against.  Matrix values are widened to ``accum_dtype`` before the
        multiply, matching the paper's mixed-precision semantics where a
        half-stored value participates in a double-precision FMA.
        """
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"x has shape {x.shape}, expected ({self.n_cols},)"
            )
        vals = self.data.astype(accum_dtype, copy=False)
        contrib = vals * x.astype(accum_dtype, copy=False)[self.indices]
        y = np.zeros(self.n_rows, dtype=accum_dtype)
        # reduceat is deterministic left-to-right within each row segment.
        nz_rows = np.flatnonzero(np.diff(self.indptr) > 0)
        if nz_rows.size:
            starts = self.indptr[nz_rows].astype(np.int64)
            y[nz_rows] = np.add.reduceat(contrib, starts)
        return y

    def transpose_matvec(
        self, y: np.ndarray, accum_dtype: np.dtype = np.float64
    ) -> np.ndarray:
        """Compute ``A.T @ y`` (needed for optimization gradients)."""
        y = np.asarray(y)
        if y.shape != (self.n_rows,):
            raise ShapeError(f"y has shape {y.shape}, expected ({self.n_rows},)")
        vals = self.data.astype(accum_dtype, copy=False)
        per_row = np.repeat(
            y.astype(accum_dtype, copy=False), self.row_lengths()
        )
        out = np.zeros(self.n_cols, dtype=accum_dtype)
        np.add.at(out, self.indices.astype(np.int64), vals * per_row)
        return out

    def transposed(self) -> "CSRMatrix":
        """The explicit transpose as a CSR matrix (``A^T`` in CSR == A in CSC).

        The optimizer's gradient needs ``A^T g`` every iteration; running
        it through the same GPU kernels requires the transpose in CSR
        layout.  Built vectorized (counting sort over column indices);
        column indices of the result are sorted within rows.
        """
        n_rows, n_cols = self.shape
        cols = self.indices.astype(np.int64)
        counts = np.bincount(cols, minlength=n_cols)
        t_indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=t_indptr[1:])
        # Stable order within each output row: sort entries by (col, row).
        src_rows = np.repeat(np.arange(n_rows, dtype=np.int64), self.row_lengths())
        order = np.lexsort((src_rows, cols))
        index_dtype = np.int32 if n_rows <= np.iinfo(np.int32).max else np.int64
        t_indices = src_rows[order].astype(index_dtype)
        t_data = self.data[order].copy()
        return CSRMatrix((n_cols, n_rows), t_data, t_indices, t_indptr)

    def to_dense(self, dtype: np.dtype = np.float64) -> np.ndarray:
        """Materialize as a dense 2-D array (small matrices / tests only)."""
        out = np.zeros(self.shape, dtype=dtype)
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        out[rows, self.indices.astype(np.int64)] = self.data.astype(dtype)
        return out

    def astype(self, value_dtype: np.dtype) -> "CSRMatrix":
        """Return a copy with values cast to ``value_dtype``."""
        return CSRMatrix(
            self.shape,
            self.data.astype(value_dtype),
            self.indices.copy(),
            self.indptr.copy(),
        )

    def with_index_dtype(self, index_dtype: np.dtype) -> "CSRMatrix":
        """Return a copy with column indices in ``index_dtype``.

        Raises :class:`FormatError` if a column index does not fit, which is
        exactly the check the paper performs before suggesting 16-bit column
        indices for the prostate cases.
        """
        index_dtype = np.dtype(index_dtype)
        info = np.iinfo(index_dtype)
        if self.indices.size and (
            int(self.indices.max()) > info.max or int(self.indices.min()) < info.min
        ):
            raise FormatError(
                f"column indices up to {int(self.indices.max())} do not fit "
                f"in {index_dtype}"
            )
        return CSRMatrix(
            self.shape,
            self.data.copy(),
            self.indices.astype(index_dtype),
            self.indptr.copy(),
        )

    def sorted_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        data = np.array(self.data)
        indices = np.array(self.indices)
        for i in range(self.n_rows):
            start, end = int(self.indptr[i]), int(self.indptr[i + 1])
            order = np.argsort(indices[start:end], kind="stable")
            indices[start:end] = indices[start:end][order]
            data[start:end] = data[start:end][order]
        return CSRMatrix(self.shape, data, indices, self.indptr.copy())

    def has_sorted_indices(self) -> bool:
        """True if column indices are non-decreasing within every row."""
        for i in range(self.n_rows):
            start, end = int(self.indptr[i]), int(self.indptr[i + 1])
            seg = self.indices[start:end]
            if seg.size > 1 and np.any(np.diff(seg.astype(np.int64)) < 0):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"values={self.value_dtype}, indices={self.index_dtype})"
        )
