"""Synthetic sparse-matrix workload generators.

The six Table I cases come from the dose engine; these generators produce
matrices with *prescribed* structural statistics instead — for testing the
kernels and the timing model beyond the paper's cases, and for users who
want SpMV workloads shaped like theirs:

* :func:`lognormal_rows` — heavy-tailed row lengths (dose-matrix-like);
* :func:`banded` — regular banded structure (stencil/FEM-like contrast);
* :func:`uniform_random` — the classic Erdos-Renyi sparsity;
* :func:`dose_like` — empty-row fraction + lognormal tail + column runs,
  the full dose-deposition signature without running the dose engine.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import RngLike, make_rng


def uniform_random(
    n_rows: int,
    n_cols: int,
    density: float,
    value_dtype=np.float32,
    rng: RngLike = None,
) -> CSRMatrix:
    """Erdos-Renyi sparsity: every entry present independently."""
    _check_dims(n_rows, n_cols)
    if not 0 < density <= 1:
        raise ShapeError(f"density must be in (0, 1], got {density}")
    rng = make_rng(rng)
    nnz_target = int(round(n_rows * n_cols * density))
    rows = rng.integers(0, n_rows, size=nnz_target)
    cols = rng.integers(0, n_cols, size=nnz_target)
    vals = rng.random(nnz_target) + 0.01
    coo = COOMatrix((n_rows, n_cols), rows, cols, vals)
    return coo_to_csr(coo, value_dtype=value_dtype)


def banded(
    n_rows: int,
    n_cols: int,
    bandwidth: int,
    value_dtype=np.float32,
    rng: RngLike = None,
) -> CSRMatrix:
    """A banded matrix: row i holds columns [i*c/r - b, i*c/r + b]."""
    _check_dims(n_rows, n_cols)
    if bandwidth <= 0:
        raise ShapeError(f"bandwidth must be positive, got {bandwidth}")
    rng = make_rng(rng)
    centers = (np.arange(n_rows) * n_cols) // max(n_rows, 1)
    rows_list, cols_list = [], []
    for i in range(n_rows):
        lo = max(int(centers[i]) - bandwidth, 0)
        hi = min(int(centers[i]) + bandwidth + 1, n_cols)
        cols_i = np.arange(lo, hi)
        rows_list.append(np.full(cols_i.size, i))
        cols_list.append(cols_i)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = rng.random(rows.size) + 0.01
    return coo_to_csr(
        COOMatrix((n_rows, n_cols), rows, cols, vals), value_dtype=value_dtype
    )


def lognormal_rows(
    n_rows: int,
    n_cols: int,
    mean_row_length: float,
    sigma: float = 1.2,
    empty_fraction: float = 0.0,
    value_dtype=np.float32,
    rng: RngLike = None,
) -> CSRMatrix:
    """Heavy-tailed row lengths: lognormal with the given mean.

    Columns within a row are a contiguous run at a random offset (the
    dose matrices' locality), clipped to ``n_cols``.
    """
    _check_dims(n_rows, n_cols)
    if mean_row_length <= 0:
        raise ShapeError("mean_row_length must be positive")
    if not 0 <= empty_fraction < 1:
        raise ShapeError("empty_fraction must be in [0, 1)")
    rng = make_rng(rng)
    # lognormal mean = exp(mu + sigma^2/2)  =>  mu from requested mean.
    mu = np.log(mean_row_length) - sigma**2 / 2.0
    lengths = np.clip(
        rng.lognormal(mu, sigma, size=n_rows).astype(np.int64), 1, n_cols
    )
    lengths[rng.random(n_rows) < empty_fraction] = 0
    starts = rng.integers(0, np.maximum(n_cols - lengths, 1))
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int32)
    for i in range(n_rows):
        k = int(lengths[i])
        if k:
            indices[indptr[i] : indptr[i] + k] = np.arange(
                starts[i], starts[i] + k
            )
    data = (rng.random(nnz) + 0.01).astype(value_dtype)
    return CSRMatrix((n_rows, n_cols), data, indices, indptr)


def dose_like(
    n_rows: int,
    n_cols: int,
    density: float = 0.0073,
    empty_fraction: float = 0.70,
    tail_sigma: float = 1.3,
    value_dtype=np.float32,
    rng: RngLike = None,
) -> CSRMatrix:
    """The full Table I signature without the dose engine.

    Reproduces the structural facts the paper reports: the given density,
    ~70 % empty rows, lognormal row-length tail, contiguous column runs.
    """
    _check_dims(n_rows, n_cols)
    nonempty = 1.0 - empty_fraction
    if nonempty <= 0:
        raise ShapeError("empty_fraction must leave some non-empty rows")
    mean_len = density * n_cols / nonempty
    if mean_len < 1:
        mean_len = 1.0
    return lognormal_rows(
        n_rows,
        n_cols,
        mean_row_length=mean_len,
        sigma=tail_sigma,
        empty_fraction=empty_fraction,
        value_dtype=value_dtype,
        rng=rng,
    )


def _check_dims(n_rows: int, n_cols: int) -> None:
    if n_rows <= 0 or n_cols <= 0:
        raise ShapeError(f"matrix dimensions must be positive, got "
                         f"({n_rows}, {n_cols})")
