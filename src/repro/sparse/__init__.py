"""Sparse-matrix substrate: formats, conversions, statistics, reference SpMV.

Implemented from scratch (NumPy only) so that value precision (half/single/
double), index width (16/32-bit) and raw array layout are fully controlled —
the knobs the paper's kernels and ablations turn.
"""

from repro.sparse.convert import (
    coo_to_csr,
    csr_to_coo,
    csr_to_ellpack,
    csr_to_rscf,
    csr_to_sellcs,
    ellpack_to_csr,
    rscf_to_csr,
    sellcs_to_csr,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ellpack import ELLMatrix
from repro.sparse.io import load_csr, load_rscf, save_csr, save_rscf
from repro.sparse.partition import (
    RowPartition,
    extract_row_block,
    partition_quality,
    partition_rows_balanced,
    partition_rows_equal,
)
from repro.sparse.rscf import RSCFMatrix, quantize_block
from repro.sparse.sellcs import SellCSigmaMatrix
from repro.sparse.spmv_ref import (
    relative_error,
    spmv_flops,
    spmv_reference,
    spmv_rowwise_python,
)
from repro.sparse.stats import (
    MatrixStats,
    RowLengthProfile,
    gini_coefficient,
    matrix_stats,
    row_length_profile,
)
from repro.sparse.synth import banded, dose_like, lognormal_rows, uniform_random

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "RSCFMatrix",
    "SellCSigmaMatrix",
    "quantize_block",
    "coo_to_csr",
    "csr_to_coo",
    "csr_to_ellpack",
    "csr_to_rscf",
    "csr_to_sellcs",
    "ellpack_to_csr",
    "rscf_to_csr",
    "sellcs_to_csr",
    "MatrixStats",
    "RowLengthProfile",
    "gini_coefficient",
    "matrix_stats",
    "row_length_profile",
    "relative_error",
    "spmv_flops",
    "spmv_reference",
    "spmv_rowwise_python",
    "load_csr",
    "load_rscf",
    "save_csr",
    "save_rscf",
    "RowPartition",
    "extract_row_block",
    "partition_quality",
    "partition_rows_balanced",
    "partition_rows_equal",
    "banded",
    "dose_like",
    "lognormal_rows",
    "uniform_random",
]
