"""ELLPACK sparse format.

ELLPACK pads every row to the same width ``K`` (the maximum row length) and
stores values and column indices as dense ``n_rows x K`` arrays in
column-major order, which gives perfectly coalesced loads on SIMT hardware.
The paper names ELLPACK as a future-work format to investigate; we implement
it so the format ablation bench can quantify its padding cost on the highly
irregular dose deposition matrices (where a single 16000-long row would
force every row to 16000 slots — the reason plain ELLPACK loses badly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import FormatError, ShapeError


@dataclass(frozen=True)
class ELLMatrix:
    """An immutable ELLPACK matrix.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    values:
        ``(n_rows, width)`` array, padded with zeros.
    col_indices:
        ``(n_rows, width)`` array, padding slots hold ``-1``.
    row_lengths:
        true non-zero count of each row, length ``n_rows``.
    """

    shape: Tuple[int, int]
    values: np.ndarray
    col_indices: np.ndarray
    row_lengths: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        values = np.asarray(self.values)
        cols = np.asarray(self.col_indices)
        lens = np.asarray(self.row_lengths)
        if values.ndim != 2 or cols.ndim != 2:
            raise ShapeError("values and col_indices must be 2-D")
        if values.shape != cols.shape:
            raise FormatError(
                f"values {values.shape} and col_indices {cols.shape} mismatch"
            )
        if values.shape[0] != n_rows:
            raise FormatError(
                f"values has {values.shape[0]} rows, expected {n_rows}"
            )
        if lens.shape != (n_rows,):
            raise FormatError("row_lengths length mismatch")
        if lens.size and int(lens.max(initial=0)) > values.shape[1]:
            raise FormatError("row length exceeds ELLPACK width")
        valid = cols >= 0
        if valid.any() and int(cols[valid].max()) >= n_cols:
            raise FormatError("column index out of range")
        for arr in (values, cols, lens):
            arr.setflags(write=False)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "col_indices", cols)
        object.__setattr__(self, "row_lengths", lens)

    @property
    def width(self) -> int:
        """Padded row width ``K`` (max row length)."""
        return int(self.values.shape[1])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """True non-zero count (excludes padding)."""
        return int(self.row_lengths.sum())

    @property
    def padding_ratio(self) -> float:
        """Stored slots divided by true non-zeros (>= 1; 1 == no padding)."""
        nnz = self.nnz
        if nnz == 0:
            return 1.0
        return (self.n_rows * self.width) / nnz

    def nbytes(self) -> int:
        """Bytes of the padded storage arrays."""
        return int(
            self.values.nbytes + self.col_indices.nbytes + self.row_lengths.nbytes
        )

    def matvec(self, x: np.ndarray, accum_dtype: np.dtype = np.float64) -> np.ndarray:
        """Reference SpMV over the padded layout (padding contributes 0)."""
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        safe_cols = np.where(self.col_indices >= 0, self.col_indices, 0)
        gathered = x.astype(accum_dtype)[safe_cols]
        vals = self.values.astype(accum_dtype)
        mask = self.col_indices >= 0
        return np.where(mask, vals * gathered, 0.0).sum(axis=1)

    def to_dense(self, dtype: np.dtype = np.float64) -> np.ndarray:
        """Materialize as dense (tests only)."""
        out = np.zeros(self.shape, dtype=dtype)
        for i in range(self.n_rows):
            k = int(self.row_lengths[i])
            cols = self.col_indices[i, :k].astype(np.int64)
            out[i, cols] = self.values[i, :k].astype(dtype)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ELLMatrix(shape={self.shape}, width={self.width}, "
            f"nnz={self.nnz}, padding={self.padding_ratio:.2f}x)"
        )
