"""SELL-C-sigma sparse format (Kreutzer et al., SISC 2014).

SELL-C-sigma is the second future-work format the paper names.  Rows are
sorted by length within windows of ``sigma`` rows, grouped into chunks of
``C`` rows, and each chunk is padded only to *its own* maximum row length.
This keeps the SIMD-friendliness of ELLPACK while bounding padding, which is
exactly what the dose deposition matrices need given their heavy-tailed row
lengths (70 % empty rows next to 16000-long rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.errors import FormatError, ShapeError


@dataclass(frozen=True)
class SellCSigmaMatrix:
    """An immutable SELL-C-sigma matrix.

    Storage is a list of per-chunk dense blocks.  Chunk ``j`` covers rows
    ``perm[j*C : (j+1)*C]`` of the original matrix (``perm`` is the
    sigma-window sorting permutation) padded to that chunk's max length.

    Attributes
    ----------
    shape:
        original ``(n_rows, n_cols)``.
    chunk_size:
        ``C`` — rows per chunk (a warp width like 32 is typical).
    sigma:
        sorting-window size; ``sigma == 1`` disables sorting,
        ``sigma >= n_rows`` is a global sort.
    perm:
        permutation mapping chunk-local storage order to original row ids:
        storage slot ``s`` holds original row ``perm[s]``.
    chunk_values / chunk_cols:
        per-chunk ``(C, width_j)`` arrays (last chunk may have fewer rows);
        padding slots hold 0 values and -1 column indices.
    row_lengths:
        per storage slot, true row lengths (aligned with ``perm``).
    """

    shape: Tuple[int, int]
    chunk_size: int
    sigma: int
    perm: np.ndarray
    chunk_values: List[np.ndarray]
    chunk_cols: List[np.ndarray]
    row_lengths: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if self.chunk_size <= 0:
            raise FormatError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.sigma <= 0:
            raise FormatError(f"sigma must be positive, got {self.sigma}")
        perm = np.asarray(self.perm)
        if perm.shape != (n_rows,):
            raise FormatError("perm must have one entry per row")
        if n_rows and not np.array_equal(np.sort(perm), np.arange(n_rows)):
            raise FormatError("perm is not a permutation of rows")
        n_chunks = (n_rows + self.chunk_size - 1) // self.chunk_size
        if len(self.chunk_values) != n_chunks or len(self.chunk_cols) != n_chunks:
            raise FormatError(
                f"expected {n_chunks} chunks, got {len(self.chunk_values)} values "
                f"and {len(self.chunk_cols)} cols"
            )
        lens = np.asarray(self.row_lengths)
        if lens.shape != (n_rows,):
            raise FormatError("row_lengths length mismatch")
        for j, (vals, cols) in enumerate(zip(self.chunk_values, self.chunk_cols)):
            if vals.shape != cols.shape:
                raise FormatError(f"chunk {j}: values/cols shape mismatch")
            rows_in_chunk = min(self.chunk_size, n_rows - j * self.chunk_size)
            if vals.shape[0] != rows_in_chunk:
                raise FormatError(
                    f"chunk {j}: has {vals.shape[0]} rows, expected {rows_in_chunk}"
                )
        object.__setattr__(self, "perm", perm)
        object.__setattr__(self, "row_lengths", lens)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def n_chunks(self) -> int:
        """Number of row chunks."""
        return len(self.chunk_values)

    @property
    def nnz(self) -> int:
        """True non-zero count (excludes padding)."""
        return int(self.row_lengths.sum())

    @property
    def padded_slots(self) -> int:
        """Total stored slots including padding."""
        return int(sum(v.size for v in self.chunk_values))

    @property
    def padding_ratio(self) -> float:
        """Stored slots / true non-zeros; the metric SELL-C-sigma minimizes."""
        nnz = self.nnz
        return self.padded_slots / nnz if nnz else 1.0

    def nbytes(self) -> int:
        """Bytes of all chunk storage plus bookkeeping arrays."""
        total = self.perm.nbytes + self.row_lengths.nbytes
        for vals, cols in zip(self.chunk_values, self.chunk_cols):
            total += vals.nbytes + cols.nbytes
        return int(total)

    def matvec(self, x: np.ndarray, accum_dtype: np.dtype = np.float64) -> np.ndarray:
        """Reference SpMV; output is in original row order."""
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        y = np.zeros(self.n_rows, dtype=accum_dtype)
        xa = x.astype(accum_dtype)
        for j, (vals, cols) in enumerate(zip(self.chunk_values, self.chunk_cols)):
            if vals.size == 0:
                continue
            mask = cols >= 0
            safe = np.where(mask, cols, 0)
            partial = np.where(mask, vals.astype(accum_dtype) * xa[safe], 0.0).sum(
                axis=1
            )
            slots = np.arange(
                j * self.chunk_size, j * self.chunk_size + vals.shape[0]
            )
            y[self.perm[slots]] = partial
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SellCSigmaMatrix(shape={self.shape}, C={self.chunk_size}, "
            f"sigma={self.sigma}, nnz={self.nnz}, "
            f"padding={self.padding_ratio:.2f}x)"
        )
