"""Coordinate-list (COO) sparse matrices.

COO stores three parallel arrays: row index, column index and value for each
non-zero.  It is the natural output format of the Monte Carlo dose engine
(each energy deposition event lands at an arbitrary voxel/spot pair) and is
converted to CSR before any SpMV is run, mirroring the paper's
RayStation-export → CSR pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import FormatError, ShapeError
from repro.util.validation import check_1d, check_index_range


@dataclass(frozen=True)
class COOMatrix:
    """An immutable COO sparse matrix with possibly duplicate entries.

    Duplicates are legal (Monte Carlo scoring hits the same voxel/spot pair
    many times) and are summed by :meth:`sum_duplicates` or during
    conversion to CSR.
    """

    shape: Tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        rows = check_1d(np.asarray(self.rows), "rows")
        cols = check_1d(np.asarray(self.cols), "cols")
        data = check_1d(np.asarray(self.data), "data")
        if not (rows.shape == cols.shape == data.shape):
            raise FormatError(
                f"rows/cols/data length mismatch: {rows.shape[0]}, "
                f"{cols.shape[0]}, {data.shape[0]}"
            )
        check_index_range(rows, n_rows, "rows")
        check_index_range(cols, n_cols, "cols")
        for arr in (rows, cols, data):
            arr.setflags(write=False)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "data", data)

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted individually)."""
        return int(self.data.shape[0])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def sum_duplicates(self) -> "COOMatrix":
        """Return a COO matrix with duplicate (row, col) entries summed.

        Entries are ordered row-major afterwards.  Accumulation happens in
        float64 regardless of storage dtype, then is cast back — the same
        policy the dose engine uses when scoring half-stored deposits.
        """
        if self.nnz == 0:
            return self
        keys = self.rows.astype(np.int64) * self.n_cols + self.cols.astype(np.int64)
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        data_sorted = self.data[order].astype(np.float64)
        boundaries = np.flatnonzero(np.diff(keys_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        summed = np.add.reduceat(data_sorted, starts)
        unique_keys = keys_sorted[starts]
        rows = (unique_keys // self.n_cols).astype(self.rows.dtype)
        cols = (unique_keys % self.n_cols).astype(self.cols.dtype)
        return COOMatrix(self.shape, rows, cols, summed.astype(self.data.dtype))

    def matvec(self, x: np.ndarray, accum_dtype: np.dtype = np.float64) -> np.ndarray:
        """Reference SpMV for COO (duplicates contribute additively)."""
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        y = np.zeros(self.n_rows, dtype=accum_dtype)
        contrib = self.data.astype(accum_dtype) * x.astype(accum_dtype)[
            self.cols.astype(np.int64)
        ]
        np.add.at(y, self.rows.astype(np.int64), contrib)
        return y

    def to_dense(self, dtype: np.dtype = np.float64) -> np.ndarray:
        """Materialize as dense (tests only); duplicates are summed."""
        out = np.zeros(self.shape, dtype=dtype)
        np.add.at(
            out,
            (self.rows.astype(np.int64), self.cols.astype(np.int64)),
            self.data.astype(dtype),
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
