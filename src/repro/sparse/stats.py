"""Structural statistics of sparse matrices.

These functions regenerate the paper's Table I columns (rows, columns,
non-zeros, non-zero ratio, size in GB) and the Figure 2 cumulative
row-length histograms, including the derived statistics the paper quotes:
the fraction of empty rows (~70 %) and the fraction of *non-empty* rows
shorter than one warp (5.6 % liver / 14.2 % prostate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.units import bytes_to_gb


@dataclass(frozen=True)
class MatrixStats:
    """Table-I-style summary of one dose deposition matrix."""

    name: str
    n_rows: int
    n_cols: int
    nnz: int
    value_bytes: int

    @property
    def density(self) -> float:
        """Non-zero ratio (the paper's percentage column, as a fraction)."""
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    @property
    def row_skew(self) -> float:
        """rows / columns — the paper notes 40–200x for these matrices."""
        return self.n_rows / self.n_cols if self.n_cols else float("inf")

    @property
    def size_bytes(self) -> int:
        """Matrix footprint: value + 4-byte column index per non-zero.

        This matches Table I's "size (GB)" column: e.g. liver beam 1 with
        1.48e9 nnz at (2 B half + 4 B index) = 8.88 GB.
        """
        return self.nnz * (self.value_bytes + 4)

    @property
    def size_gb(self) -> float:
        """Size in decimal GB, as printed in Table I."""
        return bytes_to_gb(self.size_bytes)

    def table_row(self) -> Tuple[str, float, float, float, str, float]:
        """One formatted Table I row."""
        return (
            self.name,
            float(self.n_rows),
            float(self.n_cols),
            float(self.nnz),
            f"{self.density * 100:.2f}%",
            self.size_gb,
        )


def matrix_stats(
    name: str, matrix: CSRMatrix, value_bytes: Optional[int] = None
) -> MatrixStats:
    """Summarize a CSR matrix; ``value_bytes`` defaults to its storage width."""
    if value_bytes is None:
        value_bytes = matrix.value_dtype.itemsize
    return MatrixStats(name, matrix.n_rows, matrix.n_cols, matrix.nnz, value_bytes)


@dataclass(frozen=True)
class RowLengthProfile:
    """Figure-2-style row-length distribution of a sparse matrix."""

    lengths: np.ndarray  # per-row nnz, including empty rows

    @property
    def n_rows(self) -> int:
        return int(self.lengths.shape[0])

    @property
    def empty_fraction(self) -> float:
        """Fraction of rows with zero non-zeros (paper: ~70 %)."""
        if self.n_rows == 0:
            return 0.0
        return float(np.count_nonzero(self.lengths == 0)) / self.n_rows

    @property
    def nonempty_lengths(self) -> np.ndarray:
        """Lengths of non-empty rows only (Fig. 2 excludes empty rows)."""
        return self.lengths[self.lengths > 0]

    @property
    def mean_nonempty(self) -> float:
        """Average non-zeros per non-empty row (printed on Fig. 2)."""
        ne = self.nonempty_lengths
        return float(ne.mean()) if ne.size else 0.0

    @property
    def max_length(self) -> int:
        """Longest row (paper: ~16000 for liver)."""
        return int(self.lengths.max(initial=0))

    def fraction_below(self, threshold: int) -> float:
        """Fraction of *non-empty* rows with fewer than ``threshold`` nnz.

        ``fraction_below(32)`` is the paper's warp-efficiency statistic:
        5.6 % (liver 1) and 14.2 % (prostate 1).
        """
        ne = self.nonempty_lengths
        if ne.size == 0:
            return 0.0
        return float(np.count_nonzero(ne < threshold)) / ne.size

    def cumulative(
        self, bins: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative distribution over non-empty rows.

        Returns ``(edges, fractions)`` where ``fractions[i]`` is the share
        of non-empty rows with length ``<= edges[i]`` — the curve plotted
        in Figure 2.
        """
        ne = self.nonempty_lengths
        if bins is None:
            top = max(self.max_length, 1)
            edges = np.unique(
                np.concatenate(
                    [
                        np.array([1, 2, 4, 8, 16, 32, 64, 128, 256, 512]),
                        np.geomspace(1, top, 40).astype(np.int64),
                        np.array([top]),
                    ]
                )
            )
            edges = edges[edges <= top]
        else:
            edges = np.asarray(bins, dtype=np.int64)
        if ne.size == 0:
            return edges, np.zeros(edges.shape[0])
        sorted_lengths = np.sort(ne)
        counts = np.searchsorted(sorted_lengths, edges, side="right")
        return edges, counts / ne.size

    def percentile(self, q: float) -> float:
        """Percentile of non-empty row lengths (q in [0, 100])."""
        ne = self.nonempty_lengths
        return float(np.percentile(ne, q)) if ne.size else 0.0


def row_length_profile(matrix: CSRMatrix) -> RowLengthProfile:
    """Build a :class:`RowLengthProfile` from a CSR matrix."""
    return RowLengthProfile(matrix.row_lengths().astype(np.int64))


def gini_coefficient(lengths: np.ndarray) -> float:
    """Gini coefficient of a row-length distribution (0 = uniform).

    A compact scalar for the "high level of irregularity" the paper
    describes; useful in tests asserting that generated matrices are as
    skewed as the paper's.
    """
    lengths = np.sort(np.asarray(lengths, dtype=np.float64))
    n = lengths.shape[0]
    total = lengths.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(lengths)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2.0 * cum.sum() / total) / n)
