"""RSCF — a RayStation-like custom compressed sparse format.

The paper converts dose deposition matrices out of "RayStation's custom
storage format", described only as (a) developed for memory-starved CPUs,
(b) storing matrix entries in 16 bits.  The format itself is proprietary, so
we implement a faithful stand-in with the properties the paper relies on:

* **Column (spot) major**: the Monte Carlo dose engine computes one spot's
  dose at a time, and "a column of the dose deposition matrix is the
  contribution of a single spot to the dose in all voxels" — so the natural
  storage unit is the compressed column.  This is also what makes the
  RayStation CPU algorithm (and its GPU port, the paper's *Baseline*)
  column-parallel: concurrent spots write the same voxels, hence the
  per-thread scratch arrays on CPU and the atomics on GPU.
* **Run-length row compression**: a spot's dose is a compact blob in the
  patient, so within a column the voxels receiving dose form a handful of
  *contiguous row runs* (voxels are numbered lexicographically).  RSCF
  stores, per column, ``(start_row, run_length)`` segments followed by the
  run values — no per-value row index, which is the memory saving over COO.
* **16-bit block-scaled values**: values are quantized to ``uint16`` against
  a per-column scale factor (classic fixed-point compression), matching
  "16 bits to store the entries".

The conversion ``RSCF -> CSR`` in :mod:`repro.sparse.convert` mirrors the
paper's export pipeline (including the change of major axis), and the
RayStation CPU / GPU-Baseline kernels in :mod:`repro.kernels` operate
directly on this format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.errors import FormatError, ShapeError
from repro.util.validation import check_1d

#: Largest quantized magnitude (uint16 full scale).
QUANT_MAX = 2**16 - 1


@dataclass(frozen=True)
class RSCFMatrix:
    """An immutable column-compressed RSCF matrix.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)`` — voxels x spots, same convention as CSR.
    col_ptr:
        length ``n_cols + 1``; segments of column ``j`` are
        ``seg_start[col_ptr[j]:col_ptr[j+1]]``.
    seg_start:
        starting *row* (voxel index) of each segment.
    seg_len:
        length (number of consecutive rows) of each segment.
    val_ptr:
        length ``n_cols + 1``; start offset of each column's values in
        ``values`` (column values are the concatenation of its segments'
        values, in segment order).
    values:
        ``uint16`` quantized magnitudes, length ``nnz``.
    col_scale:
        ``float32`` per-column dequantization scale; the true value of code
        ``q`` in column ``j`` is ``q * col_scale[j]``.
    """

    shape: Tuple[int, int]
    col_ptr: np.ndarray
    seg_start: np.ndarray
    seg_len: np.ndarray
    val_ptr: np.ndarray
    values: np.ndarray
    col_scale: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        col_ptr = check_1d(np.asarray(self.col_ptr), "col_ptr")
        seg_start = check_1d(np.asarray(self.seg_start), "seg_start")
        seg_len = check_1d(np.asarray(self.seg_len), "seg_len")
        val_ptr = check_1d(np.asarray(self.val_ptr), "val_ptr")
        values = check_1d(np.asarray(self.values), "values")
        col_scale = check_1d(np.asarray(self.col_scale), "col_scale")
        if values.dtype != np.uint16:
            raise FormatError(f"values must be uint16, got {values.dtype}")
        if col_ptr.shape[0] != n_cols + 1 or val_ptr.shape[0] != n_cols + 1:
            raise FormatError("col_ptr/val_ptr must have length n_cols + 1")
        if col_scale.shape[0] != n_cols:
            raise FormatError("col_scale must have one entry per column")
        if seg_start.shape != seg_len.shape:
            raise FormatError("seg_start/seg_len length mismatch")
        if np.any(np.diff(col_ptr) < 0) or np.any(np.diff(val_ptr) < 0):
            raise FormatError("col_ptr and val_ptr must be non-decreasing")
        if col_ptr[-1] != seg_start.shape[0]:
            raise FormatError("col_ptr end does not match number of segments")
        if val_ptr[-1] != values.shape[0]:
            raise FormatError("val_ptr end does not match number of values")
        if seg_len.size and int(seg_len.min()) <= 0:
            raise FormatError("segment lengths must be positive")
        # Column value counts must equal the sum of that column's segment
        # lengths, and segments must stay inside the matrix and not overlap.
        for j in range(n_cols):
            s0, s1 = int(col_ptr[j]), int(col_ptr[j + 1])
            starts = seg_start[s0:s1].astype(np.int64)
            lens = seg_len[s0:s1].astype(np.int64)
            if int(lens.sum()) != int(val_ptr[j + 1] - val_ptr[j]):
                raise FormatError(
                    f"column {j}: segment lengths sum to {int(lens.sum())} but "
                    f"column has {int(val_ptr[j + 1] - val_ptr[j])} values"
                )
            ends = starts + lens
            if starts.size:
                if int(starts.min()) < 0 or int(ends.max()) > n_rows:
                    raise FormatError(f"column {j}: segment outside matrix rows")
                if np.any(starts[1:] < ends[:-1]):
                    raise FormatError(f"column {j}: segments overlap or unsorted")
        for arr in (col_ptr, seg_start, seg_len, val_ptr, values, col_scale):
            arr.setflags(write=False)
        object.__setattr__(self, "col_ptr", col_ptr)
        object.__setattr__(self, "seg_start", seg_start)
        object.__setattr__(self, "seg_len", seg_len)
        object.__setattr__(self, "val_ptr", val_ptr)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "col_scale", col_scale)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored values."""
        return int(self.values.shape[0])

    @property
    def n_segments(self) -> int:
        """Total number of row runs across all columns."""
        return int(self.seg_start.shape[0])

    def nbytes(self) -> int:
        """Bytes of all storage arrays (the format's selling point)."""
        return int(
            self.col_ptr.nbytes
            + self.seg_start.nbytes
            + self.seg_len.nbytes
            + self.val_ptr.nbytes
            + self.values.nbytes
            + self.col_scale.nbytes
        )

    def column_entries(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, float64_values)`` of column ``j``."""
        if not 0 <= j < self.n_cols:
            raise IndexError(f"column {j} out of range")
        s0, s1 = int(self.col_ptr[j]), int(self.col_ptr[j + 1])
        v0, v1 = int(self.val_ptr[j]), int(self.val_ptr[j + 1])
        rows = np.empty(v1 - v0, dtype=np.int64)
        out = 0
        for s in range(s0, s1):
            start = int(self.seg_start[s])
            length = int(self.seg_len[s])
            rows[out : out + length] = np.arange(start, start + length)
            out += length
        vals = self.values[v0:v1].astype(np.float64) * float(self.col_scale[j])
        return rows, vals

    def column_dense(self, j: int, dtype: np.dtype = np.float64) -> np.ndarray:
        """Dequantize column ``j`` into a dense length-``n_rows`` vector."""
        rows, vals = self.column_entries(j)
        out = np.zeros(self.n_rows, dtype=dtype)
        out[rows] = vals.astype(dtype)
        return out

    def matvec(self, x: np.ndarray, accum_dtype: np.dtype = np.float64) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` in column order.

        Columns are applied left to right (deterministic), matching the
        sequential CPU algorithm's accumulation order.
        """
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        y = np.zeros(self.n_rows, dtype=accum_dtype)
        for j in range(self.n_cols):
            rows, vals = self.column_entries(j)
            if rows.size:
                y[rows] += (vals * float(x[j])).astype(accum_dtype)
        return y

    def to_dense(self, dtype: np.dtype = np.float64) -> np.ndarray:
        """Materialize as dense (tests only)."""
        out = np.zeros(self.shape, dtype=dtype)
        for j in range(self.n_cols):
            rows, vals = self.column_entries(j)
            out[rows, j] = vals.astype(dtype)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RSCFMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"segments={self.n_segments})"
        )


def quantize_block(values: np.ndarray) -> Tuple[np.ndarray, float]:
    """Quantize one block of non-negative values to uint16 codes + scale.

    Returns ``(codes, scale)`` with ``codes * scale`` approximating the
    input; an all-zero block gets scale 0.
    """
    values = np.asarray(values, dtype=np.float64)
    peak = float(np.abs(values).max(initial=0.0))
    if peak == 0.0:
        return np.zeros(values.shape, dtype=np.uint16), 0.0
    scale = peak / QUANT_MAX
    codes = np.rint(values / scale).clip(0, QUANT_MAX).astype(np.uint16)
    return codes, scale
