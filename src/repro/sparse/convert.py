"""Conversions between sparse formats.

The central conversion is :func:`rscf_to_csr`, the step the paper performs
when exporting dose deposition matrices from RayStation before running the
GPU kernels.  The others support the format-ablation benches (ELLPACK and
SELL-C-sigma are the paper's named future work) and the Monte Carlo engine
(COO scoring output → CSR).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ellpack import ELLMatrix
from repro.sparse.rscf import RSCFMatrix, quantize_block
from repro.sparse.sellcs import SellCSigmaMatrix
from repro.util.errors import FormatError


def coo_to_csr(
    coo: COOMatrix,
    value_dtype: np.dtype = np.float32,
    index_dtype: np.dtype = np.int32,
) -> CSRMatrix:
    """Convert COO to CSR, summing duplicate entries.

    Values are accumulated in float64 during the duplicate sum and cast to
    ``value_dtype`` at the end, so half-precision storage does not lose the
    many small Monte Carlo deposits that sum to a significant dose.
    """
    dedup = coo.sum_duplicates()
    counts = np.bincount(dedup.rows.astype(np.int64), minlength=dedup.n_rows)
    indptr = np.zeros(dedup.n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(
        dedup.shape,
        dedup.data.astype(value_dtype),
        dedup.cols.astype(index_dtype),
        indptr,
    )


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Convert CSR to COO (row-major entry order is preserved)."""
    rows = np.repeat(
        np.arange(csr.n_rows, dtype=np.int64), csr.row_lengths()
    )
    return COOMatrix(csr.shape, rows, csr.indices.astype(np.int64), csr.data.copy())


def csr_to_ellpack(csr: CSRMatrix, max_width: Optional[int] = None) -> ELLMatrix:
    """Convert CSR to ELLPACK, padding every row to the longest row.

    ``max_width`` may cap the width for testing; rows longer than the cap
    raise :class:`FormatError` (ELLPACK cannot drop values).
    """
    lengths = csr.row_lengths()
    width = int(lengths.max(initial=0))
    if max_width is not None:
        if width > max_width:
            raise FormatError(
                f"row of length {width} exceeds ELLPACK width cap {max_width}"
            )
        width = max_width
    values = np.zeros((csr.n_rows, width), dtype=csr.value_dtype)
    cols = np.full((csr.n_rows, width), -1, dtype=np.int64)
    for i in range(csr.n_rows):
        start, end = int(csr.indptr[i]), int(csr.indptr[i + 1])
        k = end - start
        values[i, :k] = csr.data[start:end]
        cols[i, :k] = csr.indices[start:end]
    return ELLMatrix(csr.shape, values, cols, lengths.astype(np.int64))


def ellpack_to_csr(
    ell: ELLMatrix, index_dtype: np.dtype = np.int32
) -> CSRMatrix:
    """Convert ELLPACK back to CSR (padding slots are dropped)."""
    lengths = ell.row_lengths.astype(np.int64)
    indptr = np.zeros(ell.n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    data = np.empty(nnz, dtype=ell.values.dtype)
    indices = np.empty(nnz, dtype=index_dtype)
    for i in range(ell.n_rows):
        k = int(lengths[i])
        data[indptr[i] : indptr[i] + k] = ell.values[i, :k]
        indices[indptr[i] : indptr[i] + k] = ell.col_indices[i, :k]
    return CSRMatrix(ell.shape, data, indices, indptr)


def csr_to_sellcs(
    csr: CSRMatrix, chunk_size: int = 32, sigma: int = 1024
) -> SellCSigmaMatrix:
    """Convert CSR to SELL-C-sigma.

    Rows are sorted by descending length within windows of ``sigma`` rows,
    then grouped into chunks of ``chunk_size`` rows, each padded to its own
    maximum length.
    """
    if chunk_size <= 0:
        raise FormatError(f"chunk_size must be positive, got {chunk_size}")
    if sigma <= 0:
        raise FormatError(f"sigma must be positive, got {sigma}")
    n_rows = csr.n_rows
    lengths = csr.row_lengths().astype(np.int64)
    perm = np.empty(n_rows, dtype=np.int64)
    for w_start in range(0, max(n_rows, 1), sigma):
        w_end = min(w_start + sigma, n_rows)
        window = np.arange(w_start, w_end)
        # Descending length; stable so equal-length rows keep original order.
        order = np.argsort(-lengths[window], kind="stable")
        perm[w_start:w_end] = window[order]
    chunk_values: List[np.ndarray] = []
    chunk_cols: List[np.ndarray] = []
    for c_start in range(0, n_rows, chunk_size):
        c_end = min(c_start + chunk_size, n_rows)
        rows = perm[c_start:c_end]
        width = int(lengths[rows].max(initial=0))
        vals = np.zeros((len(rows), width), dtype=csr.value_dtype)
        cols = np.full((len(rows), width), -1, dtype=np.int64)
        for local, r in enumerate(rows):
            start, end = int(csr.indptr[r]), int(csr.indptr[r + 1])
            k = end - start
            vals[local, :k] = csr.data[start:end]
            cols[local, :k] = csr.indices[start:end]
        chunk_values.append(vals)
        chunk_cols.append(cols)
    if n_rows == 0:
        chunk_values, chunk_cols = [], []
    return SellCSigmaMatrix(
        csr.shape,
        chunk_size,
        sigma,
        perm,
        chunk_values,
        chunk_cols,
        lengths[perm],
    )


def sellcs_to_csr(
    sell: SellCSigmaMatrix, index_dtype: np.dtype = np.int32
) -> CSRMatrix:
    """Convert SELL-C-sigma back to CSR in original row order."""
    n_rows = sell.n_rows
    lengths_by_row = np.zeros(n_rows, dtype=np.int64)
    lengths_by_row[sell.perm] = sell.row_lengths
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths_by_row, out=indptr[1:])
    nnz = int(indptr[-1])
    value_dtype = (
        sell.chunk_values[0].dtype if sell.chunk_values else np.dtype(np.float32)
    )
    data = np.empty(nnz, dtype=value_dtype)
    indices = np.empty(nnz, dtype=index_dtype)
    for j, (vals, cols) in enumerate(zip(sell.chunk_values, sell.chunk_cols)):
        for local in range(vals.shape[0]):
            slot = j * sell.chunk_size + local
            row = int(sell.perm[slot])
            k = int(sell.row_lengths[slot])
            data[indptr[row] : indptr[row] + k] = vals[local, :k]
            indices[indptr[row] : indptr[row] + k] = cols[local, :k]
    return CSRMatrix(sell.shape, data, indices, indptr)


def csr_to_rscf(csr: CSRMatrix) -> RSCFMatrix:
    """Compress a CSR matrix into the column-major RSCF format.

    This is the inverse of the paper's export conversion: entries are
    re-sorted column-major, consecutive *rows* within a column collapse
    into run-length segments, and each column's values are block-quantized
    to 16 bits against a per-column scale.
    """
    n_rows, n_cols = csr.shape
    entry_rows = np.repeat(np.arange(n_rows, dtype=np.int64), csr.row_lengths())
    entry_cols = csr.indices.astype(np.int64)
    entry_vals = csr.data.astype(np.float64)
    order = np.lexsort((entry_rows, entry_cols))
    entry_rows = entry_rows[order]
    entry_cols = entry_cols[order]
    entry_vals = entry_vals[order]

    col_counts = np.bincount(entry_cols, minlength=n_cols)
    val_ptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(col_counts, out=val_ptr[1:])

    values = np.empty(csr.nnz, dtype=np.uint16)
    col_scale = np.zeros(n_cols, dtype=np.float32)
    col_ptr = np.zeros(n_cols + 1, dtype=np.int64)
    seg_start_list: List[np.ndarray] = []
    seg_len_list: List[np.ndarray] = []
    n_segments = 0
    for j in range(n_cols):
        v0, v1 = int(val_ptr[j]), int(val_ptr[j + 1])
        rows = entry_rows[v0:v1]
        codes, scale = quantize_block(entry_vals[v0:v1])
        values[v0:v1] = codes
        col_scale[j] = scale
        if rows.size:
            breaks = np.flatnonzero(np.diff(rows) != 1) + 1
            starts = np.concatenate(([0], breaks))
            ends = np.concatenate((breaks, [rows.size]))
            seg_start_list.append(rows[starts])
            seg_len_list.append(ends - starts)
            n_segments += starts.size
        col_ptr[j + 1] = n_segments
    if seg_start_list:
        seg_start = np.concatenate(seg_start_list).astype(np.int32)
        seg_len = np.concatenate(seg_len_list).astype(np.int32)
    else:
        seg_start = np.empty(0, dtype=np.int32)
        seg_len = np.empty(0, dtype=np.int32)
    return RSCFMatrix(
        csr.shape, col_ptr, seg_start, seg_len, val_ptr, values, col_scale
    )


def _expand_segments(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand run-length segments into explicit indices, vectorized.

    ``starts=[3, 10], lengths=[2, 3]`` -> ``[3, 4, 10, 11, 12]``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    offsets = np.concatenate(([0], ends[:-1]))
    out[offsets] = starts
    out[offsets[1:]] -= starts[:-1] + lengths[:-1] - 1
    return np.cumsum(out)


def rscf_to_csr(
    rscf: RSCFMatrix,
    value_dtype: np.dtype = np.float16,
    index_dtype: np.dtype = np.int32,
) -> CSRMatrix:
    """Decompress RSCF into CSR — the paper's export conversion.

    This is the change-of-major-axis step: column-compressed RSCF entries
    are expanded, re-sorted row-major, and stored with ``value_dtype``
    values (half precision by default, matching the paper: matrix in half,
    vectors in double).  Dequantization happens in float64 before the final
    cast.
    """
    n_rows, n_cols = rscf.shape
    entry_rows = _expand_segments(rscf.seg_start, rscf.seg_len)
    # Column id of every value: val_ptr gives per-column value counts.
    col_counts = np.diff(rscf.val_ptr.astype(np.int64))
    entry_cols = np.repeat(np.arange(n_cols, dtype=np.int64), col_counts)
    scales = np.repeat(rscf.col_scale.astype(np.float64), col_counts)
    entry_vals = rscf.values.astype(np.float64) * scales

    order = np.lexsort((entry_cols, entry_rows))
    entry_rows = entry_rows[order]
    entry_cols = entry_cols[order]
    entry_vals = entry_vals[order]

    row_counts = np.bincount(entry_rows, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    return CSRMatrix(
        rscf.shape,
        entry_vals.astype(value_dtype),
        entry_cols.astype(index_dtype),
        indptr,
    )
