"""Row partitioning for chunked and multi-worker SpMV.

Two consumers need balanced row partitions of a deposition matrix:

* the memory planner's chunked execution (each chunk must fit the device
  and take comparable time -> balance by *non-zeros*, not rows — the
  heavy-tailed row lengths make equal-row chunks wildly unbalanced);
* the CPU implementation's thread decomposition.

:func:`partition_rows_balanced` is the greedy prefix partitioner (optimal
for contiguous chunks); :func:`partition_quality` quantifies the imbalance
so benches can show the equal-rows vs equal-nnz difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row ranges covering a matrix."""

    #: boundaries, length n_parts + 1; part k is rows [bounds[k], bounds[k+1]).
    bounds: np.ndarray
    #: non-zeros per part.
    nnz_per_part: np.ndarray

    @property
    def n_parts(self) -> int:
        return int(self.bounds.shape[0]) - 1

    def part(self, k: int) -> Tuple[int, int]:
        """Row range ``[start, end)`` of part ``k``."""
        if not 0 <= k < self.n_parts:
            raise IndexError(f"part {k} out of range [0, {self.n_parts})")
        return int(self.bounds[k]), int(self.bounds[k + 1])

    @property
    def imbalance(self) -> float:
        """max part nnz / mean part nnz (1.0 == perfectly balanced)."""
        mean = self.nnz_per_part.mean()
        return float(self.nnz_per_part.max() / mean) if mean else 1.0


def partition_rows_equal(matrix: CSRMatrix, n_parts: int) -> RowPartition:
    """Equal-ROW-count partition (the naive decomposition)."""
    _check_parts(matrix, n_parts)
    bounds = np.linspace(0, matrix.n_rows, n_parts + 1).astype(np.int64)
    return _with_counts(matrix, bounds)


def partition_rows_balanced(matrix: CSRMatrix, n_parts: int) -> RowPartition:
    """Equal-NNZ partition: boundaries at nnz quantiles of ``indptr``.

    Each contiguous chunk gets as close to ``nnz / n_parts`` stored values
    as row granularity allows — the right decomposition for the dose
    matrices, whose row lengths span four orders of magnitude.
    """
    _check_parts(matrix, n_parts)
    targets = np.linspace(0, matrix.nnz, n_parts + 1)
    bounds = np.searchsorted(matrix.indptr, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = matrix.n_rows
    # Guarantee monotonicity if many empty rows share an indptr value.
    np.maximum.accumulate(bounds, out=bounds)
    return _with_counts(matrix, bounds)


def partition_rows_by_cost(
    matrix: CSRMatrix,
    n_parts: int,
    nnz_cost: float = 6.0,
    row_cost: float = 200.0,
) -> RowPartition:
    """Partition on a *modeled per-row cost*, not raw non-zeros.

    Equal-nnz boundaries balance the value/index stream but ignore the
    fixed per-row work every processed row pays (row-pointer read, the
    warp reduction, the output write, sector-alignment slack) — on
    matrices with many short rows that fixed term dominates, and an
    nnz-balanced chunk holding most of the *rows* becomes the straggler.
    Here each row ``i`` is charged ``nnz_cost * len(i) + row_cost``
    (both in equivalent bytes, mirroring the timing model's DRAM
    channel) and boundaries sit at quantiles of the cumulative cost.

    Like every contiguous row partition, this cannot change a result
    bit: each row's reduction is self-contained, so only *where* rows
    are computed moves, never *what* they compute.
    """
    _check_parts(matrix, n_parts)
    if nnz_cost < 0 or row_cost < 0:
        raise ShapeError(
            f"costs must be non-negative, got nnz_cost={nnz_cost}, "
            f"row_cost={row_cost}"
        )
    lengths = np.diff(matrix.indptr).astype(np.float64)
    cum = np.zeros(matrix.n_rows + 1, dtype=np.float64)
    np.cumsum(lengths * nnz_cost + row_cost, out=cum[1:])
    targets = np.linspace(0.0, cum[-1], n_parts + 1)
    bounds = np.searchsorted(cum, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = matrix.n_rows
    np.maximum.accumulate(bounds, out=bounds)
    return _with_counts(matrix, bounds)


def partition_quality(partition: RowPartition) -> dict:
    """Summary statistics for reporting/benching."""
    nnz = partition.nnz_per_part
    return {
        "n_parts": partition.n_parts,
        "imbalance": partition.imbalance,
        "max_nnz": int(nnz.max(initial=0)),
        "min_nnz": int(nnz.min(initial=0)),
    }


def extract_row_block(matrix: CSRMatrix, start: int, end: int) -> CSRMatrix:
    """Materialize one contiguous row block as its own CSR matrix.

    The block shares the column space (the input vector is reused across
    chunks), so chunked SpMV concatenates block outputs to reconstruct
    the full result bit-for-bit.
    """
    if not 0 <= start <= end <= matrix.n_rows:
        raise ShapeError(
            f"block [{start}, {end}) outside matrix rows [0, {matrix.n_rows})"
        )
    lo = int(matrix.indptr[start])
    hi = int(matrix.indptr[end])
    indptr = matrix.indptr[start : end + 1].astype(np.int64) - lo
    return CSRMatrix(
        (end - start, matrix.n_cols),
        matrix.data[lo:hi].copy(),
        matrix.indices[lo:hi].copy(),
        indptr,
    )


def _check_parts(matrix: CSRMatrix, n_parts: int) -> None:
    if n_parts <= 0:
        raise ShapeError(f"n_parts must be positive, got {n_parts}")
    if n_parts > max(matrix.n_rows, 1):
        raise ShapeError(
            f"cannot split {matrix.n_rows} rows into {n_parts} parts"
        )


def _with_counts(matrix: CSRMatrix, bounds: np.ndarray) -> RowPartition:
    nnz = matrix.indptr[bounds[1:]] - matrix.indptr[bounds[:-1]]
    return RowPartition(bounds=bounds, nnz_per_part=nnz.astype(np.int64))
