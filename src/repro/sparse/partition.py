"""Row partitioning for chunked and multi-worker SpMV.

Two consumers need balanced row partitions of a deposition matrix:

* the memory planner's chunked execution (each chunk must fit the device
  and take comparable time -> balance by *non-zeros*, not rows — the
  heavy-tailed row lengths make equal-row chunks wildly unbalanced);
* the CPU implementation's thread decomposition.

:func:`partition_rows_balanced` is the greedy prefix partitioner (optimal
for contiguous chunks); :func:`partition_quality` quantifies the imbalance
so benches can show the equal-rows vs equal-nnz difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class RowCostModel:
    """A named per-row work model: ``cost(i) = nnz_cost*len(i) + row_cost``.

    Both coefficients are in equivalent bytes, mirroring the timing
    model's DRAM channel: ``nnz_cost`` prices the per-element value +
    index stream, ``row_cost`` the fixed per-row work (row-pointer read,
    warp reduction, output write, sector-alignment slack).  Different
    sparsity families weight these differently — banded photon FPB rows
    are long and dense (stream-dominated), VMAT aperture columns make
    short contiguous runs (row-overhead-dominated) — so the model is a
    *registration*, not a constant: every workload registers its own and
    partitioners resolve coefficients by name.
    """

    name: str
    nnz_cost: float
    row_cost: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("cost model name must be non-empty")
        if self.nnz_cost < 0 or self.row_cost < 0:
            raise ShapeError(
                f"cost model {self.name!r}: coefficients must be "
                f"non-negative, got nnz_cost={self.nnz_cost}, "
                f"row_cost={self.row_cost}"
            )

    def row_costs(self, matrix: CSRMatrix) -> np.ndarray:
        """Modeled cost of every row (float64, length ``n_rows``)."""
        lengths = np.diff(matrix.indptr).astype(np.float64)
        return lengths * self.nnz_cost + self.row_cost


#: the proton-PBS default: half value (2 B) + int32 index (4 B) per
#: stored element, 200 B-equivalent fixed work per row.  These are the
#: historical hard-coded constants, now the *named* default rather than
#: an implicit assumption baked into every partitioner call.
PBS_COST_MODEL = RowCostModel(
    name="pbs",
    nnz_cost=6.0,  # analyze: allow[cost-literal] -- the named PBS default itself
    row_cost=200.0,  # analyze: allow[cost-literal] -- the named PBS default itself
    description="proton pencil-beam scanning (paper Table I structure)",
)

_COST_MODELS: Dict[str, RowCostModel] = {}


def register_cost_model(model: RowCostModel,
                        replace: bool = False) -> RowCostModel:
    """Register a named row-cost model (workloads call this at import)."""
    if model.name in _COST_MODELS and not replace:
        existing = _COST_MODELS[model.name]
        if (existing.nnz_cost, existing.row_cost) != (
            model.nnz_cost, model.row_cost
        ):
            raise ShapeError(
                f"cost model {model.name!r} already registered with "
                f"different coefficients; pass replace=True to overwrite"
            )
        return existing
    _COST_MODELS[model.name] = model
    return model


def get_cost_model(name: str) -> RowCostModel:
    """Look up a registered cost model by name."""
    try:
        return _COST_MODELS[name]
    except KeyError:
        raise ShapeError(
            f"no cost model named {name!r}; registered: "
            f"{sorted(_COST_MODELS)}"
        ) from None


def cost_model_names() -> Tuple[str, ...]:
    return tuple(sorted(_COST_MODELS))


register_cost_model(PBS_COST_MODEL)


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row ranges covering a matrix."""

    #: boundaries, length n_parts + 1; part k is rows [bounds[k], bounds[k+1]).
    bounds: np.ndarray
    #: non-zeros per part.
    nnz_per_part: np.ndarray

    @property
    def n_parts(self) -> int:
        return int(self.bounds.shape[0]) - 1

    def part(self, k: int) -> Tuple[int, int]:
        """Row range ``[start, end)`` of part ``k``."""
        if not 0 <= k < self.n_parts:
            raise IndexError(f"part {k} out of range [0, {self.n_parts})")
        return int(self.bounds[k]), int(self.bounds[k + 1])

    @property
    def imbalance(self) -> float:
        """max part nnz / mean part nnz (1.0 == perfectly balanced)."""
        mean = self.nnz_per_part.mean()
        return float(self.nnz_per_part.max() / mean) if mean else 1.0


def partition_rows_equal(matrix: CSRMatrix, n_parts: int) -> RowPartition:
    """Equal-ROW-count partition (the naive decomposition)."""
    _check_parts(matrix, n_parts)
    bounds = np.linspace(0, matrix.n_rows, n_parts + 1).astype(np.int64)
    return _with_counts(matrix, bounds)


def partition_rows_balanced(matrix: CSRMatrix, n_parts: int) -> RowPartition:
    """Equal-NNZ partition: boundaries at nnz quantiles of ``indptr``.

    Each contiguous chunk gets as close to ``nnz / n_parts`` stored values
    as row granularity allows — the right decomposition for the dose
    matrices, whose row lengths span four orders of magnitude.
    """
    _check_parts(matrix, n_parts)
    targets = np.linspace(0, matrix.nnz, n_parts + 1)
    bounds = np.searchsorted(matrix.indptr, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = matrix.n_rows
    # Guarantee monotonicity if many empty rows share an indptr value.
    np.maximum.accumulate(bounds, out=bounds)
    return _with_counts(matrix, bounds)


def partition_rows_by_cost(
    matrix: CSRMatrix,
    n_parts: int,
    nnz_cost: Optional[float] = None,
    row_cost: Optional[float] = None,
    cost_model: Union[str, RowCostModel] = "pbs",
) -> RowPartition:
    """Partition on a *modeled per-row cost*, not raw non-zeros.

    Equal-nnz boundaries balance the value/index stream but ignore the
    fixed per-row work every processed row pays (row-pointer read, the
    warp reduction, the output write, sector-alignment slack) — on
    matrices with many short rows that fixed term dominates, and an
    nnz-balanced chunk holding most of the *rows* becomes the straggler.
    Each row ``i`` is charged ``nnz_cost * len(i) + row_cost`` (both in
    equivalent bytes, mirroring the timing model's DRAM channel) and
    boundaries sit at quantiles of the cumulative cost.

    Coefficients come from a registered :class:`RowCostModel` — the
    ``"pbs"`` default reproduces the historical hard-coded constants —
    and explicit ``nnz_cost``/``row_cost`` arguments override the model
    coefficient-wise (kept for callers that sweep coefficients).

    Like every contiguous row partition, this cannot change a result
    bit: each row's reduction is self-contained, so only *where* rows
    are computed moves, never *what* they compute.
    """
    _check_parts(matrix, n_parts)
    model = (
        cost_model if isinstance(cost_model, RowCostModel)
        else get_cost_model(cost_model)
    )
    if nnz_cost is None:
        nnz_cost = model.nnz_cost
    if row_cost is None:
        row_cost = model.row_cost
    if nnz_cost < 0 or row_cost < 0:
        raise ShapeError(
            f"costs must be non-negative, got nnz_cost={nnz_cost}, "
            f"row_cost={row_cost}"
        )
    lengths = np.diff(matrix.indptr).astype(np.float64)
    cum = np.zeros(matrix.n_rows + 1, dtype=np.float64)
    np.cumsum(lengths * nnz_cost + row_cost, out=cum[1:])
    targets = np.linspace(0.0, cum[-1], n_parts + 1)
    bounds = np.searchsorted(cum, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = matrix.n_rows
    np.maximum.accumulate(bounds, out=bounds)
    return _with_counts(matrix, bounds)


def partition_quality(partition: RowPartition) -> dict:
    """Summary statistics for reporting/benching."""
    nnz = partition.nnz_per_part
    return {
        "n_parts": partition.n_parts,
        "imbalance": partition.imbalance,
        "max_nnz": int(nnz.max(initial=0)),
        "min_nnz": int(nnz.min(initial=0)),
    }


def extract_row_block(matrix: CSRMatrix, start: int, end: int) -> CSRMatrix:
    """Materialize one contiguous row block as its own CSR matrix.

    The block shares the column space (the input vector is reused across
    chunks), so chunked SpMV concatenates block outputs to reconstruct
    the full result bit-for-bit.
    """
    if not 0 <= start <= end <= matrix.n_rows:
        raise ShapeError(
            f"block [{start}, {end}) outside matrix rows [0, {matrix.n_rows})"
        )
    lo = int(matrix.indptr[start])
    hi = int(matrix.indptr[end])
    indptr = matrix.indptr[start : end + 1].astype(np.int64) - lo
    return CSRMatrix(
        (end - start, matrix.n_cols),
        matrix.data[lo:hi].copy(),
        matrix.indices[lo:hi].copy(),
        indptr,
    )


def _check_parts(matrix: CSRMatrix, n_parts: int) -> None:
    if n_parts <= 0:
        raise ShapeError(f"n_parts must be positive, got {n_parts}")
    if n_parts > max(matrix.n_rows, 1):
        raise ShapeError(
            f"cannot split {matrix.n_rows} rows into {n_parts} parts"
        )


def _with_counts(matrix: CSRMatrix, bounds: np.ndarray) -> RowPartition:
    nnz = matrix.indptr[bounds[1:]] - matrix.indptr[bounds[:-1]]
    return RowPartition(bounds=bounds, nnz_per_part=nnz.astype(np.int64))
