"""The autotuner: sweep execution configurations, validate, remember.

In the spirit of the paper's Figure-4 block-size sweep, extended to the
distribution layer's knobs.  For one ``(matrix, kernel, device, pool
width)`` problem the tuner:

1. enumerates the candidate space (block size x shard count x shard
   policy x placement), pruned of degenerate duplicates;
2. prices every candidate with the sharded evaluator's analytic model
   **and** bitwise-validates its dose against the single-device
   compiled-plan reference — a candidate that fails validation aborts
   the tune, because the bitwise identity is a theorem and a violation
   means a bug, not a slow configuration;
3. picks the fastest modeled wall (ties break deterministically via
   :meth:`ExecutionConfig.sort_key`) and stores the winner in the
   tuning cache, single-flighted per key.

Warm path: a cache hit skips the sweep entirely and is recorded in the
run artifact's ``tune`` phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.device import get_device
from repro.kernels.base import SpMVKernel
from repro.obs import artifact, metrics
from repro.obs.trace import span as trace_span
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ReproError
from repro.util.rng import make_rng, stable_seed

from repro.dist.evaluator import ShardedEvaluator
from repro.dist.pool import DevicePool

from repro.tune.cache import TunedEntry, TuningCache, get_tune_cache
from repro.tune.config import ExecutionConfig, TuneKey

#: block sizes of the paper's Figure-4 sweep.
DEFAULT_BLOCK_SIZES: Tuple[int, ...] = (128, 256, 512, 1024)

#: shard-count ladder matching the strong-scaling bench.
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)

#: partition policies worth trying (equal_rows exists for reporting
#: contrast only — it is strictly dominated on heavy-tailed matrices).
DEFAULT_SHARD_POLICIES: Tuple[str, ...] = ("balanced", "cost")

#: placement policies worth trying on a homogeneous pool.
DEFAULT_PLACEMENTS: Tuple[str, ...] = ("memory",)


@dataclass(frozen=True)
class CandidateOutcome:
    """One examined configuration with its evidence."""

    config: ExecutionConfig
    modeled_wall_s: float
    bitwise_identical: bool


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`autotune` call."""

    entry: TunedEntry
    #: True when the answer came from the cache (no sweep ran).
    cache_hit: bool
    #: every candidate the sweep examined (empty on a cache hit).
    outcomes: Tuple[CandidateOutcome, ...]


def candidate_space(
    n_rows: int,
    n_devices: int,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    shard_policies: Sequence[str] = DEFAULT_SHARD_POLICIES,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    dispatch: str = "graph",
) -> Tuple[ExecutionConfig, ...]:
    """Enumerate the deduplicated candidate configurations.

    Shard counts above the row count are dropped (cannot partition);
    with one shard, policy and placement are inert, so only one
    representative survives.
    """
    seen = set()
    configs: List[ExecutionConfig] = []
    for tpb in block_sizes:
        for n_shards in shard_counts:
            if n_shards > max(n_rows, 1):
                continue
            policies = shard_policies if n_shards > 1 else ("balanced",)
            places = placements if n_shards > 1 else (placements[0],)
            for policy in policies:
                for placement in places:
                    config = ExecutionConfig(
                        threads_per_block=tpb,
                        n_shards=n_shards,
                        shard_policy=policy,
                        placement=placement,
                        dispatch=dispatch,
                    )
                    if config not in seen:
                        seen.add(config)
                        configs.append(config)
    return tuple(configs)


def _sweep(
    matrix: CSRMatrix,
    kernel: SpMVKernel,
    key: TuneKey,
    candidates: Sequence[ExecutionConfig],
    seed: int,
) -> Tuple[TunedEntry, Tuple[CandidateOutcome, ...]]:
    """Run the full sweep: price + bitwise-validate every candidate."""
    device = get_device(key.device)
    rng = make_rng(stable_seed("tune-probe", key.key_string(), seed))
    probe = rng.random(matrix.n_cols, dtype=np.float64)
    reference = kernel.run(
        matrix, probe, device=device, plan=kernel.prepare_plan(matrix)
    )
    outcomes: List[CandidateOutcome] = []
    with trace_span(
        "tune.sweep",
        key=key.key_string(),
        candidates=len(candidates),
    ):
        for config in candidates:
            evaluator = ShardedEvaluator(
                matrix,
                kernel,
                config.n_shards,
                pool=DevicePool.of(
                    min(config.n_shards, key.n_devices), key.device
                ),
                placement=config.placement,
                shard_policy=config.shard_policy,
                dispatch=config.dispatch,
                threads_per_block=config.threads_per_block,
            )
            evaluation = evaluator.evaluate(probe)
            identical = bool(np.array_equal(evaluation.doses, reference.y))
            outcomes.append(
                CandidateOutcome(
                    config=config,
                    modeled_wall_s=evaluation.wall_time_s,
                    bitwise_identical=identical,
                )
            )
            if not identical:
                raise ReproError(
                    f"tuning candidate {config.as_dict()} failed bitwise "
                    "validation against the single-device reference — "
                    "this is a kernel/evaluator bug, not a slow "
                    "configuration; refusing to tune"
                )
    if not outcomes:
        raise ReproError("tuning sweep examined zero candidates")
    best = min(
        outcomes,
        key=lambda o: (o.modeled_wall_s,) + o.config.sort_key(),
    )
    entry = TunedEntry(
        key=key,
        config=best.config,
        modeled_wall_s=best.modeled_wall_s,
        single_device_time_s=reference.timing.time_s,
        candidates_tried=len(outcomes),
        bitwise_validated=all(o.bitwise_identical for o in outcomes),
    )
    return entry, tuple(outcomes)


def autotune(
    matrix: CSRMatrix,
    kernel: SpMVKernel,
    device: str = "A100",
    n_devices: int = 4,
    cache: Optional[TuningCache] = None,
    candidates: Optional[Sequence[ExecutionConfig]] = None,
    seed: int = 20210419,
) -> TuneResult:
    """Tune one problem, consulting and populating the tuning cache.

    ``matrix`` must already be stored in the kernel's matrix precision
    (exactly as for a run).  Returns the cached entry when the key is
    warm — the sweep is skipped and the hit recorded in the artifact's
    ``tune`` phase.
    """
    if not hasattr(kernel, "plan_family"):
        raise ReproError(
            f"kernel {kernel.name!r} has no compiled-plan family; "
            "autotuning requires a plan-family kernel"
        )
    key = TuneKey.for_problem(
        matrix,
        kernel.name,
        kernel.precision.name,
        device=device,
        n_devices=n_devices,
    )
    store = cache if cache is not None else get_tune_cache()
    space = (
        tuple(candidates)
        if candidates is not None
        else candidate_space(matrix.n_rows, n_devices)
    )
    swept: List[Tuple[CandidateOutcome, ...]] = []

    def run_sweep() -> TunedEntry:
        entry, outcomes = _sweep(matrix, kernel, key, space, seed)
        swept.append(outcomes)
        return entry

    entry = store.get_or_tune(key, run_sweep)
    cache_hit = not swept
    if cache_hit:
        metrics.counter("tune.sweeps_skipped").inc()
        if artifact.enabled():
            artifact.record(
                "tune",
                event="cache_hit",
                key=key.key_string(),
                config=entry.config.as_dict(),
                modeled_wall_s=entry.modeled_wall_s,
            )
    else:
        metrics.counter("tune.sweeps_run").inc()
    return TuneResult(
        entry=entry,
        cache_hit=cache_hit,
        outcomes=swept[0] if swept else (),
    )


def tuned_config_for(
    matrix: CSRMatrix,
    kernel: SpMVKernel,
    device: str = "A100",
    n_devices: int = 4,
    cache: Optional[TuningCache] = None,
) -> Optional[ExecutionConfig]:
    """Consult-only cache lookup (never tunes, never blocks on a sweep).

    The serving backend and the optimization service call this on their
    hot construction paths: a warm cache transparently upgrades their
    evaluators; a cold one changes nothing.
    """
    if not hasattr(kernel, "plan_family"):
        return None
    key = TuneKey.for_problem(
        matrix,
        kernel.name,
        kernel.precision.name,
        device=device,
        n_devices=n_devices,
    )
    store = cache if cache is not None else get_tune_cache()
    entry = store.get(key)
    return entry.config if entry is not None else None
