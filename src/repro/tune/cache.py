"""Persistent tuning cache: ``repro.tune-cache/v1``.

One JSON document maps :class:`~repro.tune.config.TuneKey` strings to
their tuned entry — the winning configuration plus the evidence it won
on (modeled wall, single-device reference, candidate count, and the
bitwise-validation flag that must be true for the entry to exist).

Persistence is **opt-in**: a cache constructed without a path (the
default for the process-global cache unless ``REPRO_TUNE_CACHE`` is set)
lives in memory only, so tests and libraries never write files as a
side effect.  With a path, every store rewrites the document atomically
(temp file + ``os.replace``) so a crashed process can never leave a
torn cache behind.

Population is single-flighted per key: concurrent callers asking for
the same missing key run one sweep; the rest block on the first
caller's per-key lock and read its answer.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs import artifact, metrics
from repro.obs.lockwitness import guarded_lock
from repro.util.errors import ReproError

from repro.tune.config import ExecutionConfig, TuneKey

#: schema tag of the cache document.
TUNE_CACHE_SCHEMA = "repro.tune-cache/v1"

#: environment variable naming the process-global cache file.
TUNE_CACHE_ENV = "REPRO_TUNE_CACHE"


@dataclass(frozen=True)
class TunedEntry:
    """One cached tuning decision and the evidence behind it."""

    key: TuneKey
    config: ExecutionConfig
    #: modeled wall time of the winning configuration.
    modeled_wall_s: float
    #: the unsharded single-device reference the speedup is against.
    single_device_time_s: float
    #: configurations examined by the sweep that produced this entry.
    candidates_tried: int
    #: every examined candidate reproduced the reference dose bitwise.
    bitwise_validated: bool

    @property
    def speedup(self) -> float:
        if self.modeled_wall_s <= 0:
            return 0.0
        return self.single_device_time_s / self.modeled_wall_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key.as_dict(),
            "config": self.config.as_dict(),
            "modeled_wall_s": self.modeled_wall_s,
            "single_device_time_s": self.single_device_time_s,
            "candidates_tried": self.candidates_tried,
            "bitwise_validated": self.bitwise_validated,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TunedEntry":
        return cls(
            key=TuneKey.from_dict(payload["key"]),
            config=ExecutionConfig.from_dict(payload["config"]),
            modeled_wall_s=float(payload["modeled_wall_s"]),
            single_device_time_s=float(payload["single_device_time_s"]),
            candidates_tried=int(payload["candidates_tried"]),
            bitwise_validated=bool(payload["bitwise_validated"]),
        )


class TuningCache:
    """Thread-safe tuned-entry store with optional JSON persistence."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = guarded_lock(  # analyze: lock-guards[_entries,_inflight]
            "tune.cache.TuningCache"
        )
        self._entries: Dict[str, TunedEntry] = {}
        self._inflight: Dict[str, threading.Lock] = {}
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def _load(self, path: Path) -> None:
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"tuning cache {path} is unreadable: {exc}"
            ) from exc
        schema = document.get("schema")
        if schema != TUNE_CACHE_SCHEMA:
            raise ReproError(
                f"tuning cache {path} carries schema {schema!r}, "
                f"expected {TUNE_CACHE_SCHEMA!r}"
            )
        entries = {
            key: TunedEntry.from_dict(payload)
            for key, payload in document.get("entries", {}).items()
        }
        with self._lock:
            self._entries.update(entries)

    def _persist_locked(self) -> None:
        """Atomically rewrite the document (caller holds the lock)."""
        if self.path is None:
            return
        document = {
            "schema": TUNE_CACHE_SCHEMA,
            "entries": {
                key: entry.as_dict()
                for key, entry in sorted(self._entries.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #

    def get(self, key: TuneKey) -> Optional[TunedEntry]:
        """Consult-only lookup; counts a hit or miss metric either way."""
        with self._lock:
            entry = self._entries.get(key.key_string())
        if entry is None:
            metrics.counter("tune.cache_misses").inc()
        else:
            metrics.counter("tune.cache_hits").inc()
        return entry

    def put(self, entry: TunedEntry) -> None:
        """Store one tuned entry (rejects unvalidated ones) and persist."""
        if not entry.bitwise_validated:
            raise ReproError(
                "refusing to cache a tuning entry that was not "
                "bitwise-validated"
            )
        with self._lock:
            self._entries[entry.key.key_string()] = entry
            self._persist_locked()
        metrics.counter("tune.cache_stores").inc()

    def get_or_tune(
        self, key: TuneKey, tune_fn: Callable[[], TunedEntry]
    ) -> TunedEntry:
        """Return the cached entry or run ``tune_fn`` exactly once.

        Concurrent callers for the same missing key are single-flighted:
        one runs the sweep under the key's in-flight lock, the rest wait
        and read its result.  Distinct keys tune concurrently.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        ks = key.key_string()
        with self._lock:
            gate = self._inflight.get(ks)
            if gate is None:
                gate = guarded_lock(f"tune.cache.inflight[{ks}]")
                self._inflight[ks] = gate
        with gate:  # analyze: allow[RL504] -- deliberate single-flight: the sweep runs under the per-key gate so concurrent callers tune once; bounded CPU work, no I/O under the main lock
            cached = self.get(key)
            if cached is not None:
                return cached
            entry = tune_fn()
            if entry.key.key_string() != ks:
                raise ReproError(
                    f"tune_fn produced entry for {entry.key.key_string()!r}, "
                    f"expected {ks!r}"
                )
            self.put(entry)
        with self._lock:
            self._inflight.pop(ks, None)
        if artifact.enabled():
            artifact.record(
                "tune",
                event="populated",
                key=ks,
                config=entry.config.as_dict(),
                modeled_wall_s=entry.modeled_wall_s,
                speedup=entry.speedup,
                candidates_tried=entry.candidates_tried,
            )
        return entry

    def entries(self) -> List[TunedEntry]:
        """All cached entries, key-ordered (a snapshot copy)."""
        with self._lock:
            return [
                entry for _, entry in sorted(self._entries.items())
            ]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._persist_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# --------------------------------------------------------------------- #
# the process-global cache
# --------------------------------------------------------------------- #

_cache: Optional[TuningCache] = None
_cache_lock = guarded_lock("tune.cache.global")  # analyze: lock-guards[_cache]


def get_tune_cache() -> TuningCache:
    """The process-global tuning cache.

    Backed by the file named in ``REPRO_TUNE_CACHE`` when that variable
    is set; in-memory otherwise.  Created lazily, once.
    """
    global _cache
    with _cache_lock:
        if _cache is None:
            path = os.environ.get(TUNE_CACHE_ENV)
            _cache = TuningCache(path if path else None)
        return _cache


def set_tune_cache(cache: TuningCache) -> Optional[TuningCache]:
    """Install ``cache`` as the process-global one; returns the old."""
    global _cache
    with _cache_lock:
        previous, _cache = _cache, cache
        return previous


def reset_tune_cache() -> None:
    """Drop the process-global cache (next access re-resolves the env)."""
    global _cache
    with _cache_lock:
        _cache = None
