"""Execution-configuration autotuning (the paper's Figure-4 sweep, as a
subsystem).

The paper picks its launch configuration by sweeping block sizes per
kernel and reading the best point off Figure 4.  This package does the
same mechanically — and extends the search space to the knobs the
distribution layer added: shard count, shard policy, placement and
dispatch mode — then remembers the answer:

* :mod:`repro.tune.config` — the tunable :class:`ExecutionConfig`, the
  cache key (:class:`TuneKey`) and the structure fingerprint it is
  derived from (invariant under row/column permutations: timing depends
  on the row-length *distribution*, not on row order);
* :mod:`repro.tune.cache` — the persistent JSON tuning cache
  (schema ``repro.tune-cache/v1``), atomic writes, single-flight
  population;
* :mod:`repro.tune.autotuner` — the sweep itself: every candidate is
  priced by the analytic timing model **and bitwise-validated** against
  the single-device compiled-plan dose before it may win.

Everything here is deterministic: candidate ranking uses modeled time
(a pure function of structure + config), ties break lexicographically,
and no wall clock is ever read.
"""

from repro.tune.autotuner import (
    DEFAULT_BLOCK_SIZES,
    DEFAULT_PLACEMENTS,
    DEFAULT_SHARD_COUNTS,
    DEFAULT_SHARD_POLICIES,
    TuneResult,
    autotune,
    candidate_space,
    tuned_config_for,
)
from repro.tune.cache import (
    TUNE_CACHE_ENV,
    TUNE_CACHE_SCHEMA,
    TunedEntry,
    TuningCache,
    get_tune_cache,
    reset_tune_cache,
    set_tune_cache,
)
from repro.tune.config import (
    ExecutionConfig,
    TuneKey,
    structure_fingerprint,
)

__all__ = [
    "DEFAULT_BLOCK_SIZES",
    "DEFAULT_PLACEMENTS",
    "DEFAULT_SHARD_COUNTS",
    "DEFAULT_SHARD_POLICIES",
    "ExecutionConfig",
    "TUNE_CACHE_ENV",
    "TUNE_CACHE_SCHEMA",
    "TuneKey",
    "TuneResult",
    "TunedEntry",
    "TuningCache",
    "autotune",
    "candidate_space",
    "get_tune_cache",
    "reset_tune_cache",
    "set_tune_cache",
    "structure_fingerprint",
    "tuned_config_for",
]
