"""Tunable execution configuration, cache key, and structure fingerprint.

The cache key answers "which tuned entry applies to this problem?".
Three observations shape it:

* modeled timing is a pure function of **matrix structure** (shape, nnz,
  row-length distribution), device, and configuration — never of the
  stored values — so the fingerprint hashes structure only;
* permuting rows permutes the row-length array and permuting columns
  renumbers indices within rows; neither changes the row-length
  *histogram*, the traffic totals, or the partition-quality landscape a
  tuned configuration was chosen on — so the fingerprint is built from
  the histogram and is invariant under both (the property tests pin
  this);
* the same structure tuned for a different kernel, precision, device or
  pool width is a different problem — those ride in the key next to the
  fingerprint.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError

from repro.dist.evaluator import DISPATCH_MODES
from repro.dist.pool import PLACEMENT_POLICIES
from repro.dist.sharding import SHARD_POLICIES


@dataclass(frozen=True)
class ExecutionConfig:
    """One point of the tuning search space.

    Every field affects modeled timing only; the dose bits are invariant
    across the whole space (the autotuner verifies, it does not trust).
    """

    threads_per_block: int
    n_shards: int
    shard_policy: str = "balanced"
    placement: str = "memory"
    dispatch: str = "graph"

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0:
            raise ShapeError(
                f"threads_per_block must be positive, "
                f"got {self.threads_per_block}"
            )
        if self.n_shards <= 0:
            raise ShapeError(f"n_shards must be positive, got {self.n_shards}")
        if self.shard_policy not in SHARD_POLICIES:
            raise ShapeError(
                f"unknown shard policy {self.shard_policy!r}; "
                f"expected one of {SHARD_POLICIES}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ShapeError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
        if self.dispatch not in DISPATCH_MODES:
            raise ShapeError(
                f"unknown dispatch {self.dispatch!r}; "
                f"expected one of {DISPATCH_MODES}"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "threads_per_block": self.threads_per_block,
            "n_shards": self.n_shards,
            "shard_policy": self.shard_policy,
            "placement": self.placement,
            "dispatch": self.dispatch,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecutionConfig":
        return cls(
            threads_per_block=int(payload["threads_per_block"]),
            n_shards=int(payload["n_shards"]),
            shard_policy=str(payload["shard_policy"]),
            placement=str(payload["placement"]),
            dispatch=str(payload["dispatch"]),
        )

    def sort_key(self) -> Tuple[int, int, str, str, str]:
        """Deterministic tie-break order among equal-time candidates:
        fewer shards first (less machinery), then smaller blocks, then
        lexicographic names."""
        return (
            self.n_shards,
            self.threads_per_block,
            self.shard_policy,
            self.placement,
            self.dispatch,
        )


def structure_fingerprint(matrix: CSRMatrix) -> str:
    """Permutation-invariant hash of a matrix's timing-relevant structure.

    Hashes ``(n_rows, n_cols, nnz, value dtype, row-length histogram)``.
    The histogram — sorted ``(length, count)`` pairs over all rows — is
    unchanged by row reordering (it permutes the length array) and by
    column reordering (row lengths do not involve column ids), which is
    exactly the invariance the tuning cache key needs: such permutations
    cannot change any quantity the timing model reads.
    """
    lengths = np.diff(matrix.indptr)
    values, counts = np.unique(lengths, return_counts=True)
    digest = hashlib.sha256()
    digest.update(
        f"{matrix.n_rows}:{matrix.n_cols}:{matrix.nnz}:"
        f"{np.dtype(matrix.value_dtype).str}".encode()
    )
    digest.update(np.ascontiguousarray(values, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(counts, dtype=np.int64).tobytes())
    return digest.hexdigest()[:24]


@dataclass(frozen=True)
class TuneKey:
    """What one tuned entry is keyed on."""

    fingerprint: str
    kernel: str
    precision: str
    device: str
    n_devices: int

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ShapeError(
                f"n_devices must be positive, got {self.n_devices}"
            )

    def key_string(self) -> str:
        """The JSON-map key (stable, human-greppable)."""
        return (
            f"{self.fingerprint}:{self.kernel}:{self.precision}:"
            f"{self.device}:{self.n_devices}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "kernel": self.kernel,
            "precision": self.precision,
            "device": self.device,
            "n_devices": self.n_devices,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TuneKey":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            kernel=str(payload["kernel"]),
            precision=str(payload["precision"]),
            device=str(payload["device"]),
            n_devices=int(payload["n_devices"]),
        )

    @classmethod
    def for_problem(
        cls,
        matrix: CSRMatrix,
        kernel_name: str,
        precision_name: str,
        device: str = "A100",
        n_devices: int = 4,
    ) -> "TuneKey":
        return cls(
            fingerprint=structure_fingerprint(matrix),
            kernel=kernel_name,
            precision=precision_name,
            device=device,
            n_devices=n_devices,
        )
