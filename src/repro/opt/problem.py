"""The plan-optimization problem: spot weights -> dose -> objective.

Ties together the deposition matrices of a multi-beam plan (dose adds
linearly across beams: ``d = sum_b A_b w_b``), the composite objective,
and — the point of the paper — a pluggable SpMV kernel, so the same
optimization can run against the reference matvec or any simulated GPU
kernel, and the harness can count how much SpMV time an optimization
spends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dose.deposition import DoseDepositionMatrix
from repro.kernels.base import SpMVKernel
from repro.opt.objectives import CompositeObjective
from repro.util.errors import ShapeError


@dataclass
class SpMVAccounting:
    """Tally of dose calculations performed during an optimization."""

    n_forward: int = 0
    n_transpose: int = 0
    modelled_spmv_seconds: float = 0.0

    @property
    def n_dose_calculations(self) -> int:
        return self.n_forward


class PlanOptimizationProblem:
    """Multi-beam spot-weight optimization over quadratic dose objectives.

    Parameters
    ----------
    beams:
        deposition matrices, one per beam.
    objective:
        composite dose objective.
    kernel:
        optional simulated kernel used for the *forward* dose calculation;
        when given, each forward product also accrues modelled GPU time in
        :attr:`accounting` (the quantity the paper's speedups translate
        into at the application level).  Gradients always use the exact
        transpose product numerically; with ``model_gradients=True`` the
        transpose product's modelled GPU time (the same kernel run on the
        explicitly transposed matrix) is accrued as well, so the
        accounting covers the optimizer's full SpMV load.
    """

    def __init__(
        self,
        beams: List[DoseDepositionMatrix],
        objective: CompositeObjective,
        kernel: Optional[SpMVKernel] = None,
        model_gradients: bool = False,
    ) -> None:
        if not beams:
            raise ValueError("need at least one beam")
        n_voxels = beams[0].n_voxels
        for b in beams:
            if b.n_voxels != n_voxels:
                raise ShapeError("all beams must share the dose grid")
        self.beams = list(beams)
        self.objective = objective
        self.kernel = kernel
        self.model_gradients = model_gradients
        self.accounting = SpMVAccounting()
        self._offsets = np.cumsum([0] + [b.n_spots for b in beams])
        # Half-stored copies for the simulated kernel (built lazily).
        self._half_matrices = None
        self._half_transposes = None

    @property
    def n_weights(self) -> int:
        """Total spot count across beams (the optimization dimension)."""
        return int(self._offsets[-1])

    @property
    def n_voxels(self) -> int:
        return self.beams[0].n_voxels

    def split_weights(self, w: np.ndarray) -> List[np.ndarray]:
        """Per-beam views of the concatenated weight vector."""
        w = np.asarray(w)
        if w.shape != (self.n_weights,):
            raise ShapeError(f"w has shape {w.shape}, expected ({self.n_weights},)")
        return [
            w[self._offsets[b] : self._offsets[b + 1]]
            for b in range(len(self.beams))
        ]

    def dose(self, w: np.ndarray) -> np.ndarray:
        """Total dose ``sum_b A_b w_b``, through the configured kernel."""
        parts = self.split_weights(w)
        total = np.zeros(self.n_voxels, dtype=np.float64)
        if self.kernel is None:
            for beam, wb in zip(self.beams, parts):
                total += beam.matrix.matvec(wb.astype(np.float64))
        else:
            if self._half_matrices is None:
                self._half_matrices = [b.as_half() for b in self.beams]
            for mat, wb in zip(self._half_matrices, parts):
                result = self.kernel.run(mat, wb.astype(np.float64))
                total += result.y
                self.accounting.modelled_spmv_seconds += result.timing.time_s
        self.accounting.n_forward += len(self.beams)
        return total

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        """Objective value and gradient w.r.t. the spot weights.

        ``grad_w = A^T grad_d`` per beam (the optimizer's backward pass).
        """
        dose = self.dose(w)
        value, grad_d = self.objective.value_and_gradient(dose)
        grads = []
        for beam in self.beams:
            grads.append(beam.matrix.transpose_matvec(grad_d))
            self.accounting.n_transpose += 1
        if self.kernel is not None and self.model_gradients:
            if self._half_transposes is None:
                self._half_transposes = [
                    b.as_half().transposed() for b in self.beams
                ]
            for t_mat in self._half_transposes:
                result = self.kernel.run(t_mat, grad_d)
                self.accounting.modelled_spmv_seconds += result.timing.time_s
        return value, np.concatenate(grads)

    def dvh_doses(self, w: np.ndarray) -> Dict[str, np.ndarray]:
        """Dose vector keyed for DVH evaluation (single entry: 'total')."""
        return {"total": self.dose(w)}
