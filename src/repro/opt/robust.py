"""Scenario-based robust plan optimization.

The paper motivates faster dose calculation with exactly this workload
(Section II-A): "robust optimization, where uncertainties in treatment
delivery due to, e.g., changes in the patient geometry between successive
treatment sessions and patient movement ... can be taken into account by
the optimization algorithm".  Robust optimization multiplies the number of
dose calculations per iteration by the scenario count — which is why a
3-4x faster SpMV directly enables it clinically.

Model: discrete setup-error scenarios.  Scenario ``s`` displaces the
patient rigidly by ``shift_mm`` (equivalently: shifts every beam's
isocenter by ``-shift_mm``), giving per-scenario deposition matrices
``A_b^s``; one weight vector ``w`` must produce an acceptable dose in all
scenarios.  Two classic aggregations are provided:

* ``expected``  —  ``(1/S) * sum_s f(d_s)``  (stochastic programming);
* ``worst_case`` — smooth maximum ``logsumexp_s f(d_s)`` (minimax
  with a temperature, differentiable everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dose.beam import Beam
from repro.dose.deposition import (
    DepositionConfig,
    DoseDepositionMatrix,
    build_deposition_matrix,
)
from repro.dose.phantom import Phantom
from repro.opt.objectives import CompositeObjective
from repro.opt.problem import SpMVAccounting
from repro.util.errors import ReproError, ShapeError


@dataclass(frozen=True)
class Scenario:
    """One setup-error realization."""

    name: str
    #: rigid patient displacement in mm (x, y, z); zero = nominal.
    shift_mm: Tuple[float, float, float]
    #: scenario probability weight (used by the 'expected' aggregation).
    probability: float = 1.0


def setup_error_scenarios(
    magnitude_mm: float = 5.0,
    include_nominal: bool = True,
    diagonal: bool = False,
) -> List[Scenario]:
    """The standard 6-face (optionally 14-point) setup-error scenario set.

    Axis-aligned shifts of +-``magnitude_mm`` along each axis, as used in
    clinical minimax robust optimization; ``diagonal`` adds the 8 corner
    shifts at the same Euclidean magnitude.
    """
    if magnitude_mm <= 0:
        raise ReproError(f"shift magnitude must be positive, got {magnitude_mm}")
    scenarios: List[Scenario] = []
    if include_nominal:
        scenarios.append(Scenario("nominal", (0.0, 0.0, 0.0)))
    axes = "xyz"
    for axis in range(3):
        for sign in (+1.0, -1.0):
            shift = [0.0, 0.0, 0.0]
            shift[axis] = sign * magnitude_mm
            label = f"{axes[axis]}{'+' if sign > 0 else '-'}"
            scenarios.append(Scenario(label, tuple(shift)))
    if diagonal:
        r = magnitude_mm / np.sqrt(3.0)
        for sx in (+1.0, -1.0):
            for sy in (+1.0, -1.0):
                for sz in (+1.0, -1.0):
                    scenarios.append(
                        Scenario(
                            f"corner{int(sx > 0)}{int(sy > 0)}{int(sz > 0)}",
                            (sx * r, sy * r, sz * r),
                        )
                    )
    # Equal probabilities by default.
    p = 1.0 / len(scenarios)
    return [Scenario(s.name, s.shift_mm, p) for s in scenarios]


def build_scenario_matrices(
    phantom: Phantom,
    beams: Sequence[Beam],
    scenarios: Sequence[Scenario],
    spot_spacing_mm: float = 12.0,
    layer_spacing_mm: float = 15.0,
    config: Optional[DepositionConfig] = None,
) -> Dict[str, List[DoseDepositionMatrix]]:
    """Per-scenario deposition matrices.

    A rigid patient shift by ``delta`` equals shifting every beam's
    isocenter by ``-delta`` in the patient frame, which is how scenario
    matrices are built here (one full dose-engine run per scenario x beam
    — the computational burden the paper's GPU port is meant to carry).

    The *spot map* is frozen at the nominal geometry: the machine delivers
    the same plan regardless of where the patient actually is.
    """
    config = config or DepositionConfig()
    out: Dict[str, List[DoseDepositionMatrix]] = {}
    # Freeze nominal spot maps so every scenario shares the column space.
    from repro.dose.pencilbeam import compute_beam_geometry
    from repro.dose.spots import generate_spot_map

    nominal_maps = []
    for beam in beams:
        geo = compute_beam_geometry(phantom, beam)
        nominal_maps.append(
            generate_spot_map(
                phantom, beam, geo,
                spot_spacing_mm=spot_spacing_mm,
                layer_spacing_mm=layer_spacing_mm,
            )
        )
    for scenario in scenarios:
        delta = np.asarray(scenario.shift_mm)
        per_beam = []
        for beam, spot_map in zip(beams, nominal_maps):
            shifted = Beam(
                f"{beam.name}[{scenario.name}]",
                beam.gantry_angle_deg,
                tuple(np.asarray(beam.isocenter_mm) - delta),
                beam.source_distance_mm,
            )
            # Re-anchor the frozen spot map onto the shifted beam.
            shifted_map = type(spot_map)(
                beam=shifted,
                u_mm=spot_map.u_mm,
                v_mm=spot_map.v_mm,
                layer=spot_map.layer,
                energy_mev=spot_map.energy_mev,
                layer_depths_mm=spot_map.layer_depths_mm,
            )
            per_beam.append(
                build_deposition_matrix(  # analyze: allow[RA109] -- legacy robust builder predating repro.workloads
                    phantom,
                    shifted,
                    config=config,
                    spot_map=shifted_map,
                )
            )
        out[scenario.name] = per_beam
    return out


class RobustPlanProblem:
    """Robust spot-weight optimization over setup-error scenarios.

    Exposes the same ``value_and_gradient``/``dose`` interface as
    :class:`repro.opt.problem.PlanOptimizationProblem`, so the existing
    solvers work unchanged.
    """

    def __init__(
        self,
        scenario_beams: Dict[str, List[DoseDepositionMatrix]],
        scenarios: Sequence[Scenario],
        objective: CompositeObjective,
        aggregation: str = "worst_case",
        temperature: float = 0.05,
    ) -> None:
        if aggregation not in ("expected", "worst_case"):
            raise ReproError(f"unknown aggregation {aggregation!r}")
        if not scenario_beams:
            raise ReproError("need at least one scenario")
        self.scenarios = list(scenarios)
        self.scenario_beams = scenario_beams
        self.objective = objective
        self.aggregation = aggregation
        self.temperature = temperature
        self.accounting = SpMVAccounting()
        first = next(iter(scenario_beams.values()))
        self._offsets = np.cumsum([0] + [b.n_spots for b in first])
        for name, beams in scenario_beams.items():
            if len(beams) != len(first):
                raise ShapeError(f"scenario {name!r} has a different beam count")
            for b, ref in zip(beams, first):
                if b.n_spots != ref.n_spots:
                    raise ShapeError(
                        f"scenario {name!r}: spot count differs from nominal"
                    )

    @property
    def n_weights(self) -> int:
        return int(self._offsets[-1])

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_beams)

    def _split(self, w: np.ndarray) -> List[np.ndarray]:
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.n_weights,):
            raise ShapeError(f"w has shape {w.shape}, expected ({self.n_weights},)")
        return [
            w[self._offsets[b] : self._offsets[b + 1]]
            for b in range(self._offsets.size - 1)
        ]

    def scenario_dose(self, name: str, w: np.ndarray) -> np.ndarray:
        """Dose under one scenario."""
        parts = self._split(w)
        beams = self.scenario_beams[name]
        total = np.zeros(beams[0].n_voxels, dtype=np.float64)
        for beam, wb in zip(beams, parts):
            total += beam.matrix.matvec(wb)
        self.accounting.n_forward += len(beams)
        return total

    def dose(self, w: np.ndarray) -> np.ndarray:
        """Nominal-scenario dose (for DVH reporting)."""
        name = (
            "nominal"
            if "nominal" in self.scenario_beams
            else next(iter(self.scenario_beams))
        )
        return self.scenario_dose(name, w)

    def scenario_objectives(self, w: np.ndarray) -> Dict[str, float]:
        """Objective value per scenario (robustness diagnostics)."""
        return {
            name: self.objective.value(self.scenario_dose(name, w))
            for name in self.scenario_beams
        }

    def value_and_gradient(self, w: np.ndarray) -> Tuple[float, np.ndarray]:
        """Aggregated objective and gradient across scenarios."""
        parts = self._split(w)
        values = []
        grads = []
        for scenario in self.scenarios:
            beams = self.scenario_beams[scenario.name]
            dose = np.zeros(beams[0].n_voxels, dtype=np.float64)
            for beam, wb in zip(beams, parts):
                dose += beam.matrix.matvec(wb)
            self.accounting.n_forward += len(beams)
            v, grad_d = self.objective.value_and_gradient(dose)
            g = np.concatenate(
                [beam.matrix.transpose_matvec(grad_d) for beam in beams]
            )
            self.accounting.n_transpose += len(beams)
            values.append(v)
            grads.append(g)
        values_arr = np.asarray(values)
        if self.aggregation == "expected":
            probs = np.asarray([s.probability for s in self.scenarios])
            probs = probs / probs.sum()
            total = float(probs @ values_arr)
            grad = np.einsum("s,sw->w", probs, np.stack(grads))
            return total, grad
        # Smooth worst case: T * logsumexp(v / T); gradient is the
        # softmax-weighted combination of scenario gradients.
        t = self.temperature * max(float(np.abs(values_arr).max()), 1e-12)
        shifted = (values_arr - values_arr.max()) / t
        weights = np.exp(shifted)
        weights /= weights.sum()
        total = float(values_arr.max() + t * np.log(np.exp(shifted).sum()))
        grad = np.einsum("s,sw->w", weights, np.stack(grads))
        return total, grad

    def worst_case_value(self, w: np.ndarray) -> Tuple[str, float]:
        """The (name, value) of the worst scenario — reporting helper."""
        per = self.scenario_objectives(w)
        name = max(per, key=per.get)
        return name, per[name]
