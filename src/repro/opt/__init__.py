"""Plan-optimization application layer: objectives, problem, solvers."""

from repro.opt.dvh_objectives import (
    MaxDVHObjective,
    MinDVHObjective,
    dvh_objective_satisfied,
)
from repro.opt.objectives import (
    CompositeObjective,
    DoseObjective,
    MaxDoseObjective,
    MeanDoseObjective,
    MinDoseObjective,
    UniformDoseObjective,
)
from repro.opt.problem import PlanOptimizationProblem, SpMVAccounting
from repro.opt.robust import (
    RobustPlanProblem,
    Scenario,
    build_scenario_matrices,
    setup_error_scenarios,
)
from repro.opt.solver import (
    IterationRecord,
    OptimizationResult,
    project_nonnegative,
    solve_lbfgs,
    solve_projected_gradient,
    solver_stats,
)

__all__ = [
    "CompositeObjective",
    "DoseObjective",
    "MaxDoseObjective",
    "MeanDoseObjective",
    "MinDoseObjective",
    "UniformDoseObjective",
    "MaxDVHObjective",
    "MinDVHObjective",
    "dvh_objective_satisfied",
    "PlanOptimizationProblem",
    "SpMVAccounting",
    "RobustPlanProblem",
    "Scenario",
    "build_scenario_matrices",
    "setup_error_scenarios",
    "IterationRecord",
    "OptimizationResult",
    "project_nonnegative",
    "solve_lbfgs",
    "solve_projected_gradient",
    "solver_stats",
]
