"""The resumable optimization loop and its checkpoint schema.

The classic solver (:mod:`repro.opt.solver`) is a closed loop: state
lives in local variables, so a killed optimization is gone.  This module
restructures projected gradient with Barzilai-Borwein steps as an
explicit state machine:

* :class:`OptimizerState` — everything iteration ``k+1`` depends on
  (iterate, objective value, gradient, next step size, convergence
  anchor, counters);
* :func:`advance` — a *pure* transition ``state -> state`` (one
  iteration, including backtracking);
* :func:`checkpoint_dict` / :func:`restore_state` — a bitwise-exact
  serialization of the state (arrays as base64 of their raw
  little-endian bytes, floats as ``float.hex()``), recorded through the
  :mod:`repro.obs.artifact` sink as the ``opt_checkpoint`` phase.

Because ``advance`` is deterministic given (state bits, matrix bits,
objective spec), the trajectory from any restored checkpoint is
**bitwise identical** to the uninterrupted run — kill-and-resume cannot
change a single bit of any subsequent iterate, objective value, or
gradient.  The solver draws no random numbers after the warm start, so
the "RNG state" of a checkpoint is exactly the warm-start seed recorded
beside it (``checkpoint["rng"]``); restoring needs no generator state.

Per-iteration bitwise witnesses (:class:`TrajectoryPoint`) are recorded
as the ``opt_iteration`` phase: objective/step/gradient-norm as exact
hex floats plus sha256 digests of the iterate and gradient — enough for
the post-run audit to compare whole trajectories across shard counts,
arrival orders, and kill/resume without storing every array.
"""

from __future__ import annotations

import base64
import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.obs import artifact, metrics
from repro.obs.clock import get_clock
from repro.obs.trace import span as trace_span
from repro.opt.objectives import CompositeObjective
from repro.opt.solver import project_nonnegative
from repro.util.errors import ReproError

from repro.opt.dist.evaluator import ObjectiveEvaluation

CHECKPOINT_SCHEMA = "repro.opt-checkpoint/v1"


class CheckpointError(ReproError):
    """A checkpoint that cannot be restored."""


class ObjectiveEvaluator(Protocol):
    """What the loop needs from an evaluation backend."""

    @property
    def n_weights(self) -> int: ...

    @property
    def n_shards(self) -> int: ...

    def value_and_gradient(
        self, w: np.ndarray, objective: CompositeObjective
    ) -> ObjectiveEvaluation: ...


class TerminalState(enum.Enum):
    """Why an optimization stopped (the service's typed outcomes)."""

    CONVERGED = "converged"
    BUDGET_EXHAUSTED = "budget_exhausted"
    PREEMPTED = "preempted"
    FAILED = "failed"


@dataclass(frozen=True)
class OptimizerState:
    """Everything the next iteration depends on — the checkpoint unit.

    ``step`` is the step size the *next* iteration will open with (the
    Barzilai-Borwein step computed at the end of the previous one), so
    no extra line-search memory is needed.  ``initial_norm`` anchors the
    relative convergence test; ``n_evals`` counts objective/gradient
    evaluations (dose calculations) for accounting and the audit.
    """

    iteration: int
    w: np.ndarray
    value: float
    grad: np.ndarray
    pg_norm: float
    step: float
    initial_norm: float
    n_evals: int

    def __post_init__(self) -> None:
        self.w.setflags(write=False)
        self.grad.setflags(write=False)


@dataclass(frozen=True)
class TrajectoryPoint:
    """One iteration's bitwise witness (what the audit compares)."""

    iteration: int
    objective: float
    objective_hex: str
    gradient_norm: float
    gradient_norm_hex: str
    step_hex: str
    w_sha256: str
    grad_sha256: str
    n_evals: int

    def key(self) -> Tuple[str, str, str, str, str]:
        """The bitwise-comparable content (counters excluded)."""
        return (
            self.objective_hex,
            self.gradient_norm_hex,
            self.step_hex,
            self.w_sha256,
            self.grad_sha256,
        )


@dataclass
class OptRunOutcome:
    """Result of driving a state to a terminal condition."""

    terminal: TerminalState
    state: OptimizerState
    points: List[TrajectoryPoint]
    detail: str = ""


def _pg_norm(w: np.ndarray, grad: np.ndarray) -> float:
    """Projected-gradient norm (descent directions only at bounds)."""
    pg = grad.copy()
    pg[(w <= 0.0) & (grad > 0)] = 0.0
    return float(np.linalg.norm(pg))


def trajectory_point(state: OptimizerState) -> TrajectoryPoint:
    """The bitwise witness of ``state``."""
    return TrajectoryPoint(
        iteration=state.iteration,
        objective=state.value,
        objective_hex=float(state.value).hex(),
        gradient_norm=state.pg_norm,
        gradient_norm_hex=float(state.pg_norm).hex(),
        step_hex=float(state.step).hex(),
        w_sha256=artifact.dose_sha256(state.w),
        grad_sha256=artifact.dose_sha256(state.grad),
        n_evals=state.n_evals,
    )


def initial_state(
    evaluator: ObjectiveEvaluator,
    objective: CompositeObjective,
    w0: np.ndarray,
    initial_step: float = 1.0,
) -> OptimizerState:
    """Evaluate the warm start and open the trajectory at iteration 0."""
    w = project_nonnegative(
        np.asarray(w0, dtype=np.float64).copy()
    )
    ev = evaluator.value_and_gradient(w, objective)
    metrics.counter("opt.objective_evals").inc()
    return OptimizerState(
        iteration=0,
        w=w,
        value=ev.value,
        grad=ev.gradient,
        pg_norm=_pg_norm(w, ev.gradient),
        step=float(initial_step),
        initial_norm=_pg_norm(w, ev.gradient),
        n_evals=1,
    )


def converged(state: OptimizerState, tolerance: float) -> bool:
    """Relative projected-gradient convergence test."""
    return state.pg_norm <= tolerance * state.initial_norm


def advance(
    evaluator: ObjectiveEvaluator,
    objective: CompositeObjective,
    state: OptimizerState,
    initial_step: float = 1.0,
    max_backtracks: int = 20,
) -> OptimizerState:
    """One projected-gradient iteration with BB step adaptation.

    A pure transition: the returned state is a deterministic function of
    the input state's bits (plus matrix + objective), which is the whole
    checkpoint/resume argument.  Mirrors
    :func:`repro.opt.solver.solve_projected_gradient` iteration for
    iteration.
    """
    w, value, grad, step = state.w, state.value, state.grad, state.step
    evals = 0
    with trace_span(
        "opt.iteration", solver="dist_pgd", iteration=state.iteration + 1
    ) as sp:
        w_new = project_nonnegative(w - step * grad)
        ev = evaluator.value_and_gradient(w_new, objective)
        evals += 1
        backtracks = 0
        while ev.value > value and backtracks < max_backtracks:
            step *= 0.5
            w_new = project_nonnegative(w - step * grad)
            ev = evaluator.value_and_gradient(w_new, objective)
            evals += 1
            backtracks += 1
        # Barzilai-Borwein step for the next iteration.
        s = w_new - w
        g = ev.gradient - grad
        sg = float(s @ g)
        next_step = float(s @ s) / sg if sg > 1e-30 else float(initial_step)
        pg = _pg_norm(w_new, ev.gradient)
        sp.set_attrs(objective=ev.value, gradient_norm=pg,
                     backtracks=backtracks)
    metrics.counter("opt.iterations").inc()
    metrics.counter("opt.objective_evals").inc(evals)
    return OptimizerState(
        iteration=state.iteration + 1,
        w=w_new,
        value=ev.value,
        grad=ev.gradient,
        pg_norm=pg,
        step=next_step,
        initial_norm=state.initial_norm,
        n_evals=state.n_evals + evals,
    )


# --------------------------------------------------------------------- #
# checkpoint serialization (bitwise exact)
# --------------------------------------------------------------------- #


def _encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """JSON-safe bitwise encoding of a float array."""
    contiguous = np.ascontiguousarray(arr)
    if contiguous.dtype.byteorder not in ("=", "<", "|"):
        contiguous = contiguous.astype(contiguous.dtype.newbyteorder("<"))
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data_b64": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(data: Dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(str(data["data_b64"]))
    arr = np.frombuffer(bytearray(raw), dtype=np.dtype(str(data["dtype"])))
    return arr.reshape([int(n) for n in data["shape"]]).copy()


def checkpoint_dict(
    state: OptimizerState, seed: Optional[int] = None
) -> Dict[str, Any]:
    """Bitwise-exact, JSON-safe serialization of ``state``.

    Floats are carried as ``float.hex()`` (the readable float fields are
    informational only); arrays as base64 of their raw bytes.  ``rng``
    documents the warm-start provenance: the loop draws no randomness
    after iteration 0, so the seed *is* the complete RNG state.
    """
    return {
        "schema": CHECKPOINT_SCHEMA,
        "iteration": state.iteration,
        "n_evals": state.n_evals,
        "value": state.value,
        "value_hex": float(state.value).hex(),
        "pg_norm_hex": float(state.pg_norm).hex(),
        "step_hex": float(state.step).hex(),
        "initial_norm_hex": float(state.initial_norm).hex(),
        "w": _encode_array(state.w),
        "grad": _encode_array(state.grad),
        "rng": {"kind": "stable_seed", "seed": seed, "draws_after_warm_start": 0},
    }


def restore_state(data: Dict[str, Any]) -> OptimizerState:
    """Rebuild an :class:`OptimizerState` bit for bit from a checkpoint."""
    if data.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unknown checkpoint schema {data.get('schema')!r}; expected "
            f"{CHECKPOINT_SCHEMA}"
        )
    try:
        return OptimizerState(
            iteration=int(data["iteration"]),
            w=_decode_array(data["w"]),
            value=float.fromhex(str(data["value_hex"])),
            grad=_decode_array(data["grad"]),
            pg_norm=float.fromhex(str(data["pg_norm_hex"])),
            step=float.fromhex(str(data["step_hex"])),
            initial_norm=float.fromhex(str(data["initial_norm_hex"])),
            n_evals=int(data["n_evals"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc


# --------------------------------------------------------------------- #
# artifact recording
# --------------------------------------------------------------------- #


def record_iteration_point(
    opt_id: str, point: TrajectoryPoint, shards: int, wall_s: float = 0.0
) -> None:
    """Record one iteration's bitwise witness (``opt_iteration`` phase)."""
    if not artifact.enabled():
        return
    artifact.record(
        "opt_iteration",
        opt_id=opt_id,
        iteration=point.iteration,
        objective=point.objective,
        objective_hex=point.objective_hex,
        gradient_norm=point.gradient_norm,
        gradient_norm_hex=point.gradient_norm_hex,
        step_hex=point.step_hex,
        w_sha256=point.w_sha256,
        grad_sha256=point.grad_sha256,
        n_evals=point.n_evals,
        shards=shards,
        wall_s=wall_s,
    )


def record_checkpoint(
    opt_id: str,
    state: OptimizerState,
    seed: Optional[int] = None,
    reason: str = "interval",
) -> Dict[str, Any]:
    """Record a full resumable checkpoint (``opt_checkpoint`` phase)."""
    data = checkpoint_dict(state, seed=seed)
    if artifact.enabled():
        artifact.record(
            "opt_checkpoint",
            opt_id=opt_id,
            iteration=state.iteration,
            reason=reason,
            state=data,
        )
    metrics.counter("opt.checkpoints").inc()
    return data


# --------------------------------------------------------------------- #
# the drive loop (CLI single-optimization path)
# --------------------------------------------------------------------- #


def run_to_completion(
    evaluator: ObjectiveEvaluator,
    objective: CompositeObjective,
    state: OptimizerState,
    *,
    opt_id: str = "opt",
    tolerance: float = 1e-6,
    max_iterations: int = 50,
    initial_step: float = 1.0,
    checkpoint_every: int = 0,
    halt_after: Optional[int] = None,
    seed: Optional[int] = None,
    on_point: Optional[Callable[[TrajectoryPoint, OptimizerState], None]] = None,
) -> OptRunOutcome:
    """Drive ``state`` until a typed terminal condition.

    Records every iteration's witness and (when ``checkpoint_every > 0``
    or at any terminal) resumable checkpoints through the artifact sink.
    ``halt_after`` preempts cooperatively after that many iterations —
    the CLI's deterministic stand-in for a kill.
    """
    clock = get_clock()
    points: List[TrajectoryPoint] = []

    def emit(pt: TrajectoryPoint, st: OptimizerState, wall_s: float) -> None:
        points.append(pt)
        record_iteration_point(
            opt_id, pt, shards=evaluator.n_shards, wall_s=wall_s
        )
        if on_point is not None:
            on_point(pt, st)

    if state.iteration == 0 and not points:
        emit(trajectory_point(state), state, 0.0)
    while True:
        if converged(state, tolerance):
            record_checkpoint(opt_id, state, seed=seed, reason="terminal")
            return OptRunOutcome(TerminalState.CONVERGED, state, points)
        if state.iteration >= max_iterations:
            record_checkpoint(opt_id, state, seed=seed, reason="terminal")
            return OptRunOutcome(
                TerminalState.BUDGET_EXHAUSTED, state, points,
                detail=f"max_iterations={max_iterations}",
            )
        if halt_after is not None and state.iteration >= halt_after:
            record_checkpoint(opt_id, state, seed=seed, reason="preempt")
            return OptRunOutcome(
                TerminalState.PREEMPTED, state, points,
                detail=f"halted after iteration {halt_after}",
            )
        t0 = clock.monotonic()
        try:
            state = advance(
                evaluator, objective, state, initial_step=initial_step
            )
        except Exception as exc:  # typed terminal, not a crash
            record_checkpoint(opt_id, state, seed=seed, reason="failure")
            return OptRunOutcome(
                TerminalState.FAILED, state, points,
                detail=f"{type(exc).__name__}: {exc}",
            )
        emit(trajectory_point(state), state, clock.monotonic() - t0)
        if checkpoint_every > 0 and state.iteration % checkpoint_every == 0:
            record_checkpoint(opt_id, state, seed=seed, reason="interval")


def warm_start(seed: int, n_weights: int, opt_id: str = "") -> np.ndarray:
    """Deterministic warm-start weights from a stable seed."""
    from repro.util.rng import make_rng, stable_seed

    rng = make_rng(stable_seed("opt-warm-start", seed, opt_id))
    return 0.5 + rng.random(n_weights)
