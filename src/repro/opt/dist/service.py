"""The plan-optimization service: many plans, one device pool.

:class:`OptimizationService` turns the repo's serving story from "serves
dose evaluations" into "serves plan optimizations": it multiplexes many
warm-started concurrent optimizations over the existing
:class:`~repro.serve.service.DoseEvaluationService` micro-batcher.
Every iteration's **forward** product is submitted as an ordinary
:class:`~repro.serve.request.EvaluationRequest`, so forward doses from
concurrent optimizations of the *same plan* coalesce into one SpMM
micro-batch exactly like clinical traffic (and, with ``shards > 1``,
run through the sharded backend).  The **adjoint** product runs on a
per-(plan, precision) sharded evaluator over the explicitly transposed
matrix, compiled once and shared by every optimization of that plan.

Scheduling is cooperative: a worker advances one optimization by
``quantum`` iterations, then requeues it at the tail, so long
optimizations cannot starve short ones.  Between iterations the service
checks, in a fixed order, the typed terminal conditions —
**converged**, **budget-exhausted** (per-run ``max_iterations`` or the
tenant's shared iteration budget), **preempted** (cooperative
:meth:`OptimizationService.preempt` or service shutdown), **failed**
(evaluator exception) — and resolves the caller's
:class:`OptTicket` with an :class:`OptimizationOutcome` carrying the
final state, the bitwise trajectory witnesses, and a resumable
checkpoint.

Determinism: an optimization's trajectory is a pure function of
(matrix bits, objective specs, warm start, tolerance).  Served forward
doses are bitwise equal to stand-alone evaluation regardless of batch
composition (the serve contract), and the adjoint is bitwise
shard-count-independent (the evaluator contract) — so neither
concurrency, nor arrival order, nor budgets/preemption (which only
truncate) can change a single bit of any iterate.  The post-run audit
(:mod:`repro.opt.dist.audit`) enforces this end to end.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.dist.evaluator import ShardedEvaluator
from repro.dist.pool import DevicePool
from repro.kernels.base import SpMVKernel
from repro.kernels.dispatch import make_kernel
from repro.kernels.plan import TransposePlan, compile_transpose_plan
from repro.obs import artifact, metrics
from repro.obs.clock import Clock, get_clock
from repro.obs.lockwitness import guarded_lock
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span as trace_span
from repro.opt.objectives import CompositeObjective
from repro.serve.request import EvaluationRequest, EvaluationResult, Rejected
from repro.serve.scheduler import BatchingPolicy
from repro.serve.service import DoseEvaluationService, ServiceConfig
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ReproError

from repro.opt.dist.evaluator import ObjectiveEvaluation
from repro.opt.dist.loop import (
    OptimizerState,
    TerminalState,
    TrajectoryPoint,
    advance,
    converged,
    initial_state,
    record_checkpoint,
    record_iteration_point,
    trajectory_point,
    warm_start,
)
from repro.opt.dist.objective_spec import (
    ObjectiveTermSpec,
    build_objective,
    specs_to_dicts,
)

_log = get_logger("opt.service")


class OptServeError(ReproError):
    """An invalid interaction with the optimization service."""


class OptRejectReason(enum.Enum):
    """Why the service refused an optimization request."""

    UNKNOWN_PLAN = "unknown_plan"
    UNKNOWN_PRECISION = "unknown_precision"
    NONREPRODUCIBLE = "nonreproducible"
    UNSHARDABLE = "unshardable"
    DUPLICATE_ID = "duplicate_id"
    QUEUE_FULL = "queue_full"
    TENANT_BUDGET = "tenant_budget"
    BAD_REQUEST = "bad_request"
    SHUTTING_DOWN = "shutting_down"


@dataclass(frozen=True)
class OptimizationRequest:
    """One plan optimization to run to a typed terminal state."""

    opt_id: str
    plan_id: str
    objective: Tuple[ObjectiveTermSpec, ...]
    tenant: str = "default"
    precision: str = "half_double"
    seed: int = 0
    #: explicit warm start; when ``None``, derived from ``seed``/``opt_id``.
    w0: Optional[np.ndarray] = None
    max_iterations: int = 50
    tolerance: float = 1e-6
    initial_step: float = 1.0

    def __post_init__(self) -> None:
        if not self.objective:
            raise OptServeError(
                f"optimization {self.opt_id!r}: need at least one "
                "objective term"
            )
        if self.max_iterations <= 0:
            raise OptServeError(
                f"optimization {self.opt_id!r}: max_iterations must be "
                f"positive, got {self.max_iterations}"
            )


@dataclass(frozen=True)
class OptRejected:
    """A typed refusal to start (or continue admitting) an optimization."""

    opt_id: str
    reason: OptRejectReason
    detail: str = ""


@dataclass
class OptimizationOutcome:
    """A finished optimization: terminal state + trajectory + checkpoint."""

    opt_id: str
    tenant: str
    plan_id: str
    terminal: TerminalState
    iterations: int
    objective: float
    n_evals: int
    points: List[TrajectoryPoint]
    #: resumable bitwise checkpoint of the final state.
    checkpoint: Dict[str, object]
    detail: str = ""


OptOutcomeOrReject = Union[OptimizationOutcome, OptRejected]


@dataclass
class OptTicket:
    """In-flight handle for one submitted optimization (a minimal future)."""

    opt_id: str
    _event: threading.Event = field(default_factory=threading.Event,
                                    repr=False)
    _outcome: Optional[OptOutcomeOrReject] = field(default=None, repr=False)

    def done(self) -> bool:
        return self._event.is_set()

    def outcome(self, timeout: Optional[float] = None) -> OptOutcomeOrReject:
        """Block until terminal; raises :class:`OptServeError` on timeout."""
        if not self._event.wait(timeout):
            raise OptServeError(
                f"optimization {self.opt_id!r} not finished within {timeout}s"
            )
        assert self._outcome is not None
        return self._outcome

    def resolve(self, outcome: OptOutcomeOrReject) -> None:
        if self._event.is_set():
            raise OptServeError(
                f"optimization {self.opt_id!r} resolved twice"
            )
        self._outcome = outcome
        self._event.set()


@dataclass
class OptServiceConfig:
    """All optimization-service knobs in one place."""

    #: optimizer worker threads (how many optimizations advance at once).
    n_workers: int = 2
    #: row shards per matrix product (forward and adjoint).
    shards: int = 1
    #: devices in the simulated pool (defaults to ``min(shards, 4)``).
    dist_devices: int = 0
    placement: str = "memory"
    #: iterations one scheduling quantum advances before requeueing.
    quantum: int = 1
    #: record a resumable checkpoint every N iterations (0 = terminals only).
    checkpoint_every: int = 5
    #: concurrent optimizations the service will hold (admission bound).
    queue_capacity: int = 64
    #: shared per-tenant iteration budgets (``None`` = unlimited).
    tenant_budgets: Optional[Dict[str, int]] = None
    #: inner dose-serving micro-batcher knobs.
    serve_workers: int = 2
    batching: BatchingPolicy = field(default_factory=BatchingPolicy)
    plan_cache_capacity: int = 8
    #: timeout for one served forward evaluation.
    eval_timeout_s: float = 60.0


@dataclass
class _PlanEngine:
    """Per-(plan, precision) machinery shared by its optimizations."""

    kernel: SpMVKernel
    matrix: CSRMatrix  # kernel-precision converted matrix
    n_weights: int
    #: single-device adjoint (shards == 1): the first-class transpose plan.
    tplan: Optional[TransposePlan]
    #: sharded adjoint (shards > 1).
    adjoint: Optional[ShardedEvaluator]


class _ServedObjectiveEvaluator:
    """``(f, ∇f)`` backend routing forwards through the micro-batcher.

    Implements the loop's ``ObjectiveEvaluator`` protocol for one
    optimization task: forward dose via a served
    :class:`EvaluationRequest` (bitwise equal to stand-alone evaluation
    — the serve contract), adjoint via the plan's shared engine.
    """

    def __init__(
        self,
        service: DoseEvaluationService,
        engine: _PlanEngine,
        plan_id: str,
        precision: str,
        tenant: str,
        opt_id: str,
        shards: int,
        timeout_s: float,
    ) -> None:
        self._service = service
        self._engine = engine
        self._plan_id = plan_id
        self._precision = precision
        self._tenant = tenant
        self._opt_id = opt_id
        self._shards = shards
        self._timeout_s = timeout_s
        self._eval_seq = 0

    @property
    def n_weights(self) -> int:
        return self._engine.n_weights

    @property
    def n_shards(self) -> int:
        return self._shards

    def value_and_gradient(
        self, w: np.ndarray, objective: CompositeObjective
    ) -> ObjectiveEvaluation:
        self._eval_seq += 1
        request = EvaluationRequest(
            request_id=f"{self._opt_id}-e{self._eval_seq}",
            plan_id=self._plan_id,
            weights=np.asarray(w, dtype=np.float64),
            precision=self._precision,
            client_id=self._tenant,
        )
        submitted = self._service.submit(request)
        if isinstance(submitted, Rejected):
            raise OptServeError(
                f"forward evaluation rejected: {submitted.reason.value} "
                f"({submitted.detail})"
            )
        outcome = submitted.outcome(self._timeout_s)
        if isinstance(outcome, Rejected):
            raise OptServeError(
                f"forward evaluation abandoned: {outcome.reason.value} "
                f"({outcome.detail})"
            )
        assert isinstance(outcome, EvaluationResult)
        dose = outcome.dose
        value, grad_d = objective.value_and_gradient(dose)
        engine = self._engine
        if engine.adjoint is not None:
            adj = engine.adjoint.evaluate(grad_d)
            gradient = adj.doses
            adjoint_time = adj.wall_time_s
            retries = adj.retries
        else:
            assert engine.tplan is not None
            result = engine.kernel.run(
                engine.tplan.matrix, grad_d, plan=engine.tplan.plan
            )
            gradient = result.y
            adjoint_time = result.timing.time_s
            retries = 0
        return ObjectiveEvaluation(
            value=float(value),
            gradient=gradient,
            dose=dose,
            modeled_time_s=outcome.modeled_time_s + adjoint_time,
            retries=retries,
        )


class _OptTask:
    """One optimization's mutable service-side state (worker-owned).

    Mutable fields are touched only by the worker currently running the
    task (tasks are in exactly one place: the ready queue or a worker),
    except ``preempt_flag`` which is a one-way latch any thread may set.
    """

    def __init__(self, request: OptimizationRequest, ticket: OptTicket,
                 objective: CompositeObjective,
                 evaluator: _ServedObjectiveEvaluator) -> None:
        self.request = request
        self.ticket = ticket
        self.objective = objective
        self.evaluator = evaluator
        self.state: Optional[OptimizerState] = None
        self.points: List[TrajectoryPoint] = []
        self.preempt_flag = threading.Event()


class OptimizationService:
    """Concurrent optimization front end over the dose micro-batcher."""

    def __init__(self, config: Optional[OptServiceConfig] = None,
                 clock: Optional[Clock] = None) -> None:
        self.config = config or OptServiceConfig()
        if self.config.n_workers <= 0:
            raise OptServeError("need at least one optimizer worker")
        if self.config.quantum <= 0:
            raise OptServeError("quantum must be positive")
        self._clock = clock or get_clock()
        self._inner = DoseEvaluationService(
            ServiceConfig(
                n_workers=self.config.serve_workers,
                batching=self.config.batching,
                plan_cache_capacity=self.config.plan_cache_capacity,
                shards=self.config.shards,
                dist_devices=self.config.dist_devices or None,
                dist_placement=self.config.placement,
            ),
            clock=self._clock,
        )
        self.plans = self._inner.plans
        self._queue_lock = guarded_lock(  # analyze: lock-guards[_ready, _tasks, _stopping]
            "opt.service.queue"
        )
        self._queue_cond = threading.Condition(self._queue_lock)
        self._ready: Deque[_OptTask] = deque()
        self._tasks: Dict[str, _OptTask] = {}
        self._stopping = False
        self._engines_lock = guarded_lock(  # analyze: lock-guards[_engines]
            "opt.service.engines"
        )
        self._engines: Dict[Tuple[str, str], _PlanEngine] = {}
        self._accounting = guarded_lock(  # analyze: lock-guards[_budget_left, _terminal_counts, _iterations_total, _evals_total]
            "opt.service.accounting"
        )
        self._budget_left: Dict[str, int] = dict(
            self.config.tenant_budgets or {}
        )
        self._terminal_counts: Dict[str, int] = {
            t.value: 0 for t in TerminalState
        }
        self._iterations_total = 0
        self._evals_total = 0
        self._threads: List[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "OptimizationService":
        if self._started:
            raise OptServeError("optimization service already started")
        self._started = True
        self._inner.start()
        for i in range(self.config.n_workers):
            thread = threading.Thread(  # analyze: allow[RL505] -- _worker_loop keeps no unguarded shared state: tasks are owned by exactly one worker at a time (handed over through the guarded ready queue)
                target=self._worker_loop,
                name=f"opt-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        _log.info(kv("optimization service started",
                     workers=self.config.n_workers,
                     shards=self.config.shards))
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Preempt everything still running, then stop workers + serving."""
        with self._queue_cond:
            if not self._started or self._stopping:
                already = True
            else:
                already = False
                self._stopping = True
                for task in self._tasks.values():
                    task.preempt_flag.set()
            self._queue_cond.notify_all()
        if already:
            return
        for thread in self._threads:
            thread.join(timeout)
        self._inner.stop(timeout)
        _log.info(kv("optimization service stopped"))

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # plans and engines
    # ------------------------------------------------------------------ #

    def register_plan(self, plan_id: str, matrix: CSRMatrix,
                      source: str = "custom") -> None:
        """Register a float32 master deposition matrix for optimization."""
        self.plans.register(plan_id, matrix, source=source)

    def register_case(self, plan_id: str, case_name: str,
                      preset: str = "tiny") -> None:
        """Register one of the paper's Table I cases."""
        self.plans.register_case(plan_id, case_name, preset)

    def _engine_for(self, plan_id: str, precision: str) -> _PlanEngine:
        """The shared per-(plan, precision) engine (single-flight build)."""
        key = (plan_id, precision)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
            record = self.plans.get(plan_id)
            if record is None:
                raise OptServeError(f"plan {plan_id!r} disappeared")
            from repro.bench.harness import convert_for_kernel

            kernel = make_kernel(precision)
            matrix = convert_for_kernel(record.matrix, precision)
            # Build under the lock on purpose (single-flight): two
            # optimizations racing for one plan must share one adjoint
            # evaluator, and compilation is bounded CPU work.
            if self.config.shards > 1:
                adjoint: Optional[ShardedEvaluator] = ShardedEvaluator(  # analyze: allow[RL504] -- deliberate single-flight: compiling under the lock guarantees one engine per (plan, precision); bounded CPU work, no I/O
                    matrix.transposed(),
                    kernel,
                    self.config.shards,
                    pool=DevicePool.homogeneous(
                        self.config.dist_devices
                        or min(self.config.shards, 4)
                    ),
                    placement=self.config.placement,
                )
                tplan = None
            else:
                adjoint = None
                tplan = compile_transpose_plan(  # analyze: allow[RL504] -- deliberate single-flight (see above)
                    matrix,
                    kernel.plan_family,
                    kernel.precision.accumulate.dtype,
                )
            engine = _PlanEngine(
                kernel=kernel,
                matrix=matrix,
                n_weights=matrix.n_cols,
                tplan=tplan,
                adjoint=adjoint,
            )
            self._engines[key] = engine
            return engine

    # ------------------------------------------------------------------ #
    # submission / preemption
    # ------------------------------------------------------------------ #

    def submit(
        self, request: OptimizationRequest
    ) -> Union[OptTicket, OptRejected]:
        """Admit an optimization (returns a ticket) or reject it now."""
        metrics.counter("opt.service.submitted").inc()
        rejection = self._validate(request)
        if rejection is None:
            # Admission pressure (stopping / duplicate / full) is checked
            # before the engine build so requests destined for rejection
            # never pay plan-compilation cost or populate the engine
            # cache while the service is stopping.
            with self._queue_cond:
                rejection = self._admission_reject(request)
        if rejection is not None:
            metrics.counter("opt.service.rejected").inc()
            return rejection
        engine = self._engine_for(request.plan_id, request.precision)
        if request.w0 is not None:
            w0 = np.asarray(request.w0, dtype=np.float64)
            if w0.shape != (engine.n_weights,):
                metrics.counter("opt.service.rejected").inc()
                return OptRejected(
                    request.opt_id, OptRejectReason.BAD_REQUEST,
                    f"w0 has shape {w0.shape}, plan needs "
                    f"({engine.n_weights},)",
                )
        ticket = OptTicket(opt_id=request.opt_id)
        evaluator = _ServedObjectiveEvaluator(
            self._inner, engine, request.plan_id, request.precision,
            request.tenant, request.opt_id, self.config.shards,
            self.config.eval_timeout_s,
        )
        objective = build_objective(request.objective, engine.matrix)
        task = _OptTask(request, ticket, objective, evaluator)
        with self._queue_cond:
            # Re-check under the lock: admission state may have changed
            # while the engine was building.
            rejection = self._admission_reject(request)
            if rejection is None:
                self._tasks[request.opt_id] = task
                self._ready.append(task)
                self._queue_cond.notify()
        if rejection is not None:
            metrics.counter("opt.service.rejected").inc()
            return rejection
        if artifact.enabled():
            artifact.record(
                "opt_submit",
                opt_id=request.opt_id,
                tenant=request.tenant,
                plan_id=request.plan_id,
                precision=request.precision,
                seed=request.seed,
                max_iterations=request.max_iterations,
                tolerance=request.tolerance,
                objective=specs_to_dicts(request.objective),
            )
        return ticket

    def _admission_reject(
        self, request: OptimizationRequest
    ) -> Optional[OptRejected]:
        """Cheap admission checks; the caller holds ``_queue_cond``."""
        if self._stopping:
            return OptRejected(
                request.opt_id, OptRejectReason.SHUTTING_DOWN,
                "service is stopping",
            )
        if request.opt_id in self._tasks:
            return OptRejected(
                request.opt_id, OptRejectReason.DUPLICATE_ID,
                "an optimization with this id is already running",
            )
        if len(self._tasks) >= self.config.queue_capacity:
            return OptRejected(
                request.opt_id, OptRejectReason.QUEUE_FULL,
                f"{len(self._tasks)} optimizations already admitted",
            )
        return None

    def _validate(
        self, request: OptimizationRequest
    ) -> Optional[OptRejected]:
        with self._queue_cond:
            accepting = self._started and not self._stopping
        if not accepting:
            return OptRejected(
                request.opt_id, OptRejectReason.SHUTTING_DOWN,
                "service not accepting optimizations",
            )
        record = self.plans.get(request.plan_id)
        if record is None:
            return OptRejected(
                request.opt_id, OptRejectReason.UNKNOWN_PLAN,
                f"no plan registered under {request.plan_id!r}",
            )
        shards = self.config.shards
        if shards > min(record.matrix.n_rows, record.matrix.n_cols):
            return OptRejected(
                request.opt_id, OptRejectReason.UNSHARDABLE,
                f"cannot shard a {record.matrix.n_rows}x"
                f"{record.matrix.n_cols} plan {shards} ways in both the "
                "forward and adjoint directions",
            )
        try:
            kernel = make_kernel(request.precision)
        except Exception as exc:
            return OptRejected(
                request.opt_id, OptRejectReason.UNKNOWN_PRECISION, str(exc)
            )
        if not kernel.reproducible:
            return OptRejected(
                request.opt_id, OptRejectReason.NONREPRODUCIBLE,
                f"kernel {request.precision!r} is not bitwise reproducible; "
                "optimization trajectories require determinism",
            )
        if not hasattr(kernel, "plan_family"):
            return OptRejected(
                request.opt_id, OptRejectReason.UNSHARDABLE,
                f"kernel {request.precision!r} has no compiled-plan family",
            )
        with self._accounting:
            left = self._budget_left.get(request.tenant)
        if left is not None and left <= 0:
            return OptRejected(
                request.opt_id, OptRejectReason.TENANT_BUDGET,
                f"tenant {request.tenant!r} has no iteration budget left",
            )
        return None

    def preempt(self, opt_id: str) -> bool:
        """Cooperatively preempt a running optimization.

        Takes effect at the next iteration boundary; the caller gets a
        ``PREEMPTED`` outcome with a resumable checkpoint.  Returns
        False when the optimization is unknown or already finished.
        """
        with self._queue_cond:
            task = self._tasks.get(opt_id)
        if task is None:
            return False
        task.preempt_flag.set()
        return True

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def _charge_tenant(self, tenant: str) -> bool:
        """Spend one iteration of the tenant's budget (False = exhausted)."""
        with self._accounting:
            left = self._budget_left.get(tenant)
            if left is None:
                return True
            if left <= 0:
                return False
            self._budget_left[tenant] = left - 1
            return True

    def tenant_budget_left(self, tenant: str) -> Optional[int]:
        with self._accounting:
            return self._budget_left.get(tenant)

    def stats(self) -> Dict[str, float]:
        """Service-level counters (terminal states, work totals)."""
        with self._queue_cond:
            active = len(self._tasks)
        with self._accounting:
            stats: Dict[str, float] = {
                f"terminal.{name}": float(count)
                for name, count in sorted(self._terminal_counts.items())
            }
            stats["iterations_total"] = float(self._iterations_total)
            stats["evals_total"] = float(self._evals_total)
        stats["active"] = float(active)
        return stats

    # ------------------------------------------------------------------ #
    # the cooperative worker loop
    # ------------------------------------------------------------------ #

    def _next_task(self) -> Optional[_OptTask]:
        with self._queue_cond:
            while not self._ready and not self._stopping:
                self._queue_cond.wait(0.1)
            if self._ready:
                return self._ready.popleft()
            return None  # stopping and drained

    def _requeue(self, task: _OptTask) -> None:
        with self._queue_cond:
            self._ready.append(task)
            self._queue_cond.notify()

    def _worker_loop(self) -> None:
        while True:
            task = self._next_task()
            if task is None:
                return
            try:
                requeue = self._run_quantum(task)
            except Exception as exc:  # pragma: no cover - defensive
                # _run_quantum handles task failures itself; anything
                # that still escapes (a bug in the finish path) must not
                # kill the worker thread, leak the task, or leave the
                # caller blocked on an unresolved ticket.
                _log.error(kv("optimizer worker error",
                              opt_id=task.request.opt_id,
                              error=f"{type(exc).__name__}: {exc}"))
                self._abandon(task, exc)
                requeue = False
            if requeue:
                self._requeue(task)

    def _abandon(self, task: _OptTask, exc: BaseException) -> None:
        """Last-resort retirement when finishing a task itself failed."""
        with self._queue_cond:
            self._tasks.pop(task.request.opt_id, None)
        if task.ticket.done():
            return
        state = task.state
        with self._accounting:
            self._terminal_counts[TerminalState.FAILED.value] += 1
        metrics.counter(f"opt.service.{TerminalState.FAILED.value}").inc()
        task.ticket.resolve(
            OptimizationOutcome(
                opt_id=task.request.opt_id,
                tenant=task.request.tenant,
                plan_id=task.request.plan_id,
                terminal=TerminalState.FAILED,
                iterations=state.iteration if state is not None else 0,
                objective=state.value if state is not None else float("nan"),
                n_evals=state.n_evals if state is not None else 0,
                points=task.points,
                checkpoint={},
                detail=f"{type(exc).__name__}: {exc}",
            )
        )

    def _run_quantum(self, task: _OptTask) -> bool:
        """Advance ``task`` by up to one quantum; True = more to do."""
        request = task.request
        try:
            if task.state is None:
                with trace_span("opt.warm_start", opt_id=request.opt_id):
                    w0 = (
                        np.asarray(request.w0, dtype=np.float64)
                        if request.w0 is not None
                        else warm_start(
                            request.seed,
                            task.evaluator.n_weights,
                            request.opt_id,
                        )
                    )
                    task.state = initial_state(
                        task.evaluator, task.objective, w0,
                        initial_step=request.initial_step,
                    )
                self._emit_point(task)
            for _ in range(self.config.quantum):
                state = task.state
                assert state is not None
                if converged(state, request.tolerance):
                    self._finish(task, TerminalState.CONVERGED)
                    return False
                if state.iteration >= request.max_iterations:
                    self._finish(
                        task, TerminalState.BUDGET_EXHAUSTED,
                        detail=f"max_iterations={request.max_iterations}",
                    )
                    return False
                if task.preempt_flag.is_set():
                    self._finish(
                        task, TerminalState.PREEMPTED,
                        detail="cooperative preemption",
                    )
                    return False
                if not self._charge_tenant(request.tenant):
                    self._finish(
                        task, TerminalState.BUDGET_EXHAUSTED,
                        detail=f"tenant {request.tenant!r} budget exhausted",
                    )
                    return False
                task.state = advance(
                    task.evaluator, task.objective, state,
                    initial_step=request.initial_step,
                )
                self._emit_point(task)
                if (
                    self.config.checkpoint_every > 0
                    and task.state.iteration % self.config.checkpoint_every
                    == 0
                ):
                    record_checkpoint(
                        request.opt_id, task.state, seed=request.seed,
                        reason="interval",
                    )
            return True
        except Exception as exc:
            self._finish(
                task, TerminalState.FAILED,
                detail=f"{type(exc).__name__}: {exc}",
            )
            return False

    def _emit_point(self, task: _OptTask) -> None:
        assert task.state is not None
        point = trajectory_point(task.state)
        task.points.append(point)
        record_iteration_point(
            task.request.opt_id, point, shards=self.config.shards
        )

    def _finish(self, task: _OptTask, terminal: TerminalState,
                detail: str = "") -> None:
        request = task.request
        state = task.state
        checkpoint: Dict[str, object] = {}
        if state is not None:
            checkpoint = record_checkpoint(
                request.opt_id, state, seed=request.seed,
                reason="terminal" if terminal is not TerminalState.PREEMPTED
                else "preempt",
            )
            iterations = state.iteration
            n_evals = state.n_evals
            objective = state.value
        else:
            # The task failed before warm start produced a state (e.g.
            # the very first evaluation was rejected or timed out).
            # There is nothing to checkpoint, but the task must still be
            # retired and the caller's ticket must still resolve.
            iterations = 0
            n_evals = 0
            objective = float("nan")
        with self._queue_cond:
            self._tasks.pop(request.opt_id, None)
        with self._accounting:
            self._terminal_counts[terminal.value] += 1
            self._iterations_total += iterations
            self._evals_total += n_evals
        metrics.counter(f"opt.service.{terminal.value}").inc()
        if artifact.enabled():
            artifact.record(
                "opt_run",
                opt_id=request.opt_id,
                tenant=request.tenant,
                plan_id=request.plan_id,
                precision=request.precision,
                terminal=terminal.value,
                iterations=iterations,
                n_evals=n_evals,
                objective=objective,
                objective_hex=float(objective).hex(),
                shards=self.config.shards,
                detail=detail,
            )
        task.ticket.resolve(
            OptimizationOutcome(
                opt_id=request.opt_id,
                tenant=request.tenant,
                plan_id=request.plan_id,
                terminal=terminal,
                iterations=iterations,
                objective=objective,
                n_evals=n_evals,
                points=task.points,
                checkpoint=checkpoint,
                detail=detail,
            )
        )
