"""Sharded objective + gradient evaluation for plan optimization.

One optimizer iteration needs ``f(w)`` and ``∇f(w) = A^T (∂f/∂d)`` —
a forward dose product, a pure objective evaluation on the dose, and an
adjoint product.  Both matrix products ride the existing bitwise stack:

* **forward** ``d = A @ w`` through a :class:`repro.dist.ShardedEvaluator`
  (per-shard compiled :class:`~repro.kernels.plan.SpMVPlan`\\ s, device
  pool, fixed index-ordered merge);
* **adjoint** ``A^T r`` through either the first-class
  :class:`~repro.kernels.plan.TransposePlan` (single device) or a second
  ``ShardedEvaluator`` over the explicitly transposed matrix (its rows
  are spots, so the sharded adjoint also merges by pure concatenation).

Because every output component of both products is reduced by exactly
one warp in a fixed order and both merges involve no floating-point
arithmetic, ``f`` and ``∇f`` are **bitwise identical across shard
counts** — the per-iteration leg of the trajectory-determinism
invariant.  The objective itself is pure float64 numpy on the dose, so
it cannot break the invariant.

Two flavors share the :class:`ObjectiveEvaluation` result type:

* :class:`LocalObjectiveEvaluator` — single-device reference path
  (plain ``kernel.run`` + :class:`TransposePlan`), used by the audit as
  an independent recomputation;
* :class:`DistributedObjectiveEvaluator` — the sharded production path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dist.evaluator import ShardedEvaluator
from repro.dist.pool import DevicePool
from repro.kernels.base import SpMVKernel
from repro.kernels.plan import (
    TransposePlan,
    compile_transpose_plan,
    execute_transpose_plan,
)
from repro.obs import metrics
from repro.obs.trace import span as trace_span
from repro.opt.objectives import CompositeObjective
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ReproError, ShapeError


@dataclass(frozen=True)
class ObjectiveEvaluation:
    """One ``(f, ∇f)`` evaluation with its provenance."""

    value: float
    gradient: np.ndarray
    dose: np.ndarray
    #: modeled kernel wall time (forward + adjoint) for this evaluation.
    modeled_time_s: float
    #: shard retries spent (sharded paths only).
    retries: int = 0


def _check_weights(w: np.ndarray, n_weights: int) -> np.ndarray:
    w = np.asarray(w, dtype=np.float64)
    if w.shape != (n_weights,):
        raise ShapeError(
            f"weights have shape {w.shape}, expected ({n_weights},)"
        )
    return w


class LocalObjectiveEvaluator:
    """Single-device ``(f, ∇f)`` — the audit's independent reference.

    Forward through ``kernel.run`` with a compiled plan; adjoint through
    the first-class :class:`TransposePlan`.  The sharded evaluator must
    agree with this path bit for bit at every shard count.
    """

    def __init__(self, matrix: CSRMatrix, kernel: SpMVKernel) -> None:
        if not hasattr(kernel, "plan_family"):
            raise ReproError(
                f"kernel {kernel.name!r} has no compiled-plan family; "
                "objective evaluation requires a plan-family kernel"
            )
        self.matrix = matrix
        self.kernel = kernel
        self.plan = kernel.prepare_plan(matrix)
        self.tplan: TransposePlan = compile_transpose_plan(
            matrix, kernel.plan_family, kernel.precision.accumulate.dtype
        )

    @property
    def n_weights(self) -> int:
        return self.matrix.n_cols

    @property
    def n_voxels(self) -> int:
        return self.matrix.n_rows

    @property
    def n_shards(self) -> int:
        return 1

    def value_and_gradient(
        self, w: np.ndarray, objective: CompositeObjective
    ) -> ObjectiveEvaluation:
        w = _check_weights(w, self.n_weights)
        with trace_span("opt.eval", path="local"):
            forward = self.kernel.run(self.matrix, w, plan=self.plan)
            dose = forward.y
            value, grad_d = objective.value_and_gradient(dose)
            adjoint = self.kernel.run(
                self.tplan.matrix, grad_d, plan=self.tplan.plan
            )
            gradient = adjoint.y
        metrics.counter("opt.dist.evaluations").inc()
        return ObjectiveEvaluation(
            value=float(value),
            gradient=gradient,
            dose=dose,
            modeled_time_s=forward.timing.time_s + adjoint.timing.time_s,
        )

    def adjoint_only(self, residual: np.ndarray) -> np.ndarray:
        """``A^T r`` via the transpose plan (no kernel timing model)."""
        return execute_transpose_plan(self.tplan, residual)


class DistributedObjectiveEvaluator:
    """Sharded ``(f, ∇f)`` over a simulated device pool.

    Shards both the forward matrix and its explicit transpose
    ``n_shards`` ways onto the pool.  The adjoint's shards are rows of
    ``A^T`` — whole spots — so its merge, like the forward's, is a pure
    index-ordered concatenation: no cross-shard floating-point
    reduction anywhere, which is what makes the evaluation bitwise
    shard-count-independent.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        kernel: SpMVKernel,
        n_shards: int = 1,
        pool: Optional[DevicePool] = None,
        placement: str = "memory",
        retry_budget: int = 2,
    ) -> None:
        self.matrix = matrix
        self.kernel = kernel
        with trace_span("opt.dist.compile", shards=n_shards):
            # A warm tuning-cache entry for this structure upgrades the
            # forward evaluator's configuration transparently; lookup
            # only — the optimization service never tunes inline.
            # Imported lazily: repro.tune depends on repro.dist.
            from repro.tune.autotuner import tuned_config_for

            fwd_devices = (
                pool.n_devices if pool is not None else min(n_shards, 4)
            )
            tuned = tuned_config_for(
                matrix, kernel, n_devices=fwd_devices
            )
            if tuned is not None:
                metrics.counter("opt.dist.evaluators_tuned").inc()
                self.forward = ShardedEvaluator(
                    matrix,
                    kernel,
                    tuned.n_shards,
                    pool=pool,
                    placement=tuned.placement,
                    shard_policy=tuned.shard_policy,
                    retry_budget=retry_budget,
                    dispatch=tuned.dispatch,
                    threads_per_block=tuned.threads_per_block,
                )
            else:
                self.forward = ShardedEvaluator(
                    matrix,
                    kernel,
                    n_shards,
                    pool=pool,
                    placement=placement,
                    retry_budget=retry_budget,
                )
            # The transpose's bits are a pure function of the forward
            # matrix's (stable counting sort), so local and sharded
            # evaluators agree on the adjoint operand exactly.
            self._transposed = matrix.transposed()
            self.adjoint = ShardedEvaluator(
                self._transposed,
                kernel,
                n_shards,
                pool=self.forward.pool,
                placement=placement,
                retry_budget=retry_budget,
            )
        metrics.counter("opt.dist.evaluators_built").inc()

    @property
    def n_weights(self) -> int:
        return self.matrix.n_cols

    @property
    def n_voxels(self) -> int:
        return self.matrix.n_rows

    @property
    def n_shards(self) -> int:
        return self.forward.n_shards

    def matches(self, matrix: CSRMatrix) -> bool:
        """Identity check: was this evaluator built for ``matrix``?"""
        return self.forward.matches(matrix)

    def value_and_gradient(
        self, w: np.ndarray, objective: CompositeObjective
    ) -> ObjectiveEvaluation:
        w = _check_weights(w, self.n_weights)
        with trace_span(
            "opt.eval", path="dist", shards=self.n_shards
        ):
            fwd = self.forward.evaluate(w)
            dose = fwd.doses
            value, grad_d = objective.value_and_gradient(dose)
            adj = self.adjoint.evaluate(grad_d)
            gradient = adj.doses
        metrics.counter("opt.dist.evaluations").inc()
        return ObjectiveEvaluation(
            value=float(value),
            gradient=gradient,
            dose=dose,
            modeled_time_s=fwd.wall_time_s + adj.wall_time_s,
            retries=fwd.retries + adj.retries,
        )
