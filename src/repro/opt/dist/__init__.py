"""Distributed treatment-plan optimization with deterministic trajectories.

Layers (bottom up):

* :mod:`repro.opt.dist.objective_spec` — declarative, serializable
  objective specs expanded deterministically from the plan matrix;
* :mod:`repro.opt.dist.evaluator` — sharded ``(f, ∇f)`` evaluation over
  :mod:`repro.dist` device pools (forward ``A·w`` + adjoint ``Aᵀ·r``,
  both merged by pure concatenation → bitwise shard-count-independent);
* :mod:`repro.opt.dist.loop` — the pure projected-gradient transition,
  trajectory witnesses, and checkpoint/resume state codec;
* :mod:`repro.opt.dist.service` — many concurrent optimizations
  multiplexed over the serve micro-batcher with tenant budgets,
  cooperative preemption and typed terminal states;
* :mod:`repro.opt.dist.audit` / :mod:`~repro.opt.dist.loadgen` — the
  post-run bitwise trajectory audits.
"""

from repro.opt.dist.audit import (
    TrajectoryAudit,
    audit_optimization,
    compare_trajectories,
    points_from_artifact_entries,
    run_reference,
    run_sharded,
)
from repro.opt.dist.evaluator import (
    DistributedObjectiveEvaluator,
    LocalObjectiveEvaluator,
    ObjectiveEvaluation,
)
from repro.opt.dist.loadgen import (
    OptLoadConfig,
    OptLoadReport,
    OptRunRecord,
    run_opt_loadtest,
)
from repro.opt.dist.loop import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    OptRunOutcome,
    OptimizerState,
    TerminalState,
    TrajectoryPoint,
    advance,
    checkpoint_dict,
    converged,
    initial_state,
    restore_state,
    run_to_completion,
    warm_start,
)
from repro.opt.dist.objective_spec import (
    OBJECTIVE_KINDS,
    OBJECTIVE_PRESETS,
    ObjectiveSpecError,
    ObjectiveTermSpec,
    build_objective,
    specs_from_dicts,
    specs_to_dicts,
)
from repro.opt.dist.service import (
    OptRejectReason,
    OptRejected,
    OptServeError,
    OptServiceConfig,
    OptTicket,
    OptimizationOutcome,
    OptimizationRequest,
    OptimizationService,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "DistributedObjectiveEvaluator",
    "LocalObjectiveEvaluator",
    "OBJECTIVE_KINDS",
    "OBJECTIVE_PRESETS",
    "ObjectiveEvaluation",
    "ObjectiveSpecError",
    "ObjectiveTermSpec",
    "OptLoadConfig",
    "OptLoadReport",
    "OptRejectReason",
    "OptRejected",
    "OptRunOutcome",
    "OptRunRecord",
    "OptServeError",
    "OptServiceConfig",
    "OptTicket",
    "OptimizationOutcome",
    "OptimizationRequest",
    "OptimizationService",
    "OptimizerState",
    "TerminalState",
    "TrajectoryAudit",
    "TrajectoryPoint",
    "advance",
    "audit_optimization",
    "build_objective",
    "checkpoint_dict",
    "compare_trajectories",
    "converged",
    "initial_state",
    "points_from_artifact_entries",
    "restore_state",
    "run_opt_loadtest",
    "run_reference",
    "run_sharded",
    "run_to_completion",
    "specs_from_dicts",
    "specs_to_dicts",
    "warm_start",
]
