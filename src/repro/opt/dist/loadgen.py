"""Concurrent-optimization load generator with a bitwise trajectory audit.

The serve loadgen models many clients submitting *dose evaluations*;
this one models the layer above: many tenants running whole *plan
optimizations* concurrently through the
:class:`~repro.opt.dist.service.OptimizationService` — cooperative
quantum scheduling, per-tenant iteration budgets, shared micro-batched
forwards underneath.

Everything is reconstructible from the seed: plan matrices come from
:func:`repro.sparse.synth.dose_like`, objectives from a named preset,
warm starts from ``stable_seed``.  After the run every finished
optimization is re-run *outside* the service — fresh evaluator, no
scheduler, no batching, no concurrency — and its recorded trajectory
must match the service's bit for bit (a prefix match for tenants whose
budget ran out mid-flight, whole-trajectory otherwise).  Concurrency,
arrival order and preemption must not move a single bit of any
optimization's trajectory.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import convert_for_kernel
from repro.obs import artifact
from repro.obs.clock import Clock, get_clock
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span as trace_span
from repro.sparse.csr import CSRMatrix
from repro.sparse.synth import dose_like
from repro.util.rng import make_rng, stable_seed
from repro.util.tables import Table

from repro.opt.dist.audit import compare_trajectories, run_reference
from repro.opt.dist.loop import TrajectoryPoint
from repro.opt.dist.objective_spec import (
    OBJECTIVE_PRESETS,
    ObjectiveSpecError,
)
from repro.opt.dist.service import (
    OptimizationOutcome,
    OptimizationRequest,
    OptimizationService,
    OptRejected,
    OptServiceConfig,
)

_log = get_logger(__name__)


@dataclass(frozen=True)
class OptLoadConfig:
    """Shape of one concurrent-optimization load run."""

    n_optimizations: int = 6
    n_tenants: int = 2
    n_plans: int = 2
    #: synthetic plan dimensions (voxels x spots, dose-like structure).
    plan_rows: int = 240
    plan_cols: int = 48
    precision: str = "half_double"
    objective_preset: str = "clinical"
    max_iterations: int = 8
    tolerance: float = 1e-6
    initial_step: float = 1.0
    n_workers: int = 2
    serve_workers: int = 2
    #: row shards per dose/adjoint evaluation (>1 rides repro.dist).
    shards: int = 2
    dist_devices: int = 0
    placement: str = "memory"
    quantum: int = 1
    checkpoint_every: int = 4
    #: per-tenant iteration budget (None: unlimited).
    tenant_budget: Optional[int] = None
    seed: int = 20210419
    #: run the post-run standalone bitwise audit.
    audit: bool = True

    def __post_init__(self) -> None:
        if self.n_optimizations <= 0 or self.n_tenants <= 0:
            raise ValueError(
                "n_optimizations and n_tenants must be positive"
            )
        if self.objective_preset not in OBJECTIVE_PRESETS:
            raise ObjectiveSpecError(
                f"unknown objective preset {self.objective_preset!r}; "
                f"expected one of {sorted(OBJECTIVE_PRESETS)}"
            )


@dataclass
class OptRunRecord:
    """Per-optimization outcome row of the loadtest report."""

    opt_id: str
    tenant: str
    plan_id: str
    #: terminal state value, or the rejection reason value.
    status: str
    iterations: int = 0
    n_evals: int = 0
    objective: Optional[float] = None
    detail: str = ""
    #: trajectory bitwise identical to the standalone re-run?
    bitwise: Optional[bool] = None
    #: held only until the audit runs.
    points: List[TrajectoryPoint] = field(default_factory=list)


@dataclass
class OptLoadReport:
    """Everything one concurrent-optimization load run measured."""

    config: OptLoadConfig
    records: List[OptRunRecord]
    wall_s: float
    terminal_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def finished(self) -> int:
        return sum(
            1 for r in self.records
            if r.status in ("converged", "budget_exhausted",
                            "preempted", "failed")
        )

    @property
    def rejected(self) -> int:
        return self.submitted - self.finished

    @property
    def iterations_total(self) -> int:
        return sum(r.iterations for r in self.records)

    @property
    def bitwise_checked(self) -> int:
        return sum(1 for r in self.records if r.bitwise is not None)

    @property
    def bitwise_ok(self) -> int:
        return sum(1 for r in self.records if r.bitwise)

    @property
    def bitwise_fraction(self) -> float:
        checked = self.bitwise_checked
        return self.bitwise_ok / checked if checked else 0.0

    def claims(self) -> Dict[str, float]:
        """Quantities the recording layer checks against expectations."""
        return {
            "opt_loadtest_bitwise_fraction": self.bitwise_fraction,
            "opt_loadtest_finished_fraction": (
                self.finished / self.submitted if self.submitted else 0.0
            ),
        }

    def render(self) -> str:
        summary = Table(
            ["quantity", "value"], title="Optimization loadtest summary"
        )
        rows = [
            ("optimizations submitted", self.submitted),
            ("optimizations finished", self.finished),
            ("optimizations rejected", self.rejected),
            ("iterations total", self.iterations_total),
            ("wall time (s)", round(self.wall_s, 4)),
            ("shards per evaluation", self.config.shards),
            ("objective preset", self.config.objective_preset),
            ("trajectories bitwise vs standalone",
             f"{self.bitwise_ok}/{self.bitwise_checked}"),
        ]
        if self.config.tenant_budget is not None:
            rows.append(
                ("per-tenant iteration budget", self.config.tenant_budget)
            )
        for terminal, count in sorted(self.terminal_counts.items()):
            rows.append((f"terminal[{terminal}]", count))
        for name, value in rows:
            summary.add_row([name, value])
        return summary.render()


# --------------------------------------------------------------------- #


def build_opt_plans(config: OptLoadConfig) -> Dict[str, CSRMatrix]:
    """Deterministic dose-like plan matrices for the run."""
    plans: Dict[str, CSRMatrix] = {}
    for p in range(config.n_plans):
        rng = make_rng(stable_seed("opt-loadgen-plan", config.seed, p))
        plans[f"plan-{p}"] = dose_like(
            config.plan_rows, config.plan_cols, density=0.05,
            empty_fraction=0.5, rng=rng,
        )
    return plans


def _build_request(config: OptLoadConfig, index: int,
                   plan_ids: List[str]) -> OptimizationRequest:
    """The (reconstructible) request of one synthetic optimization."""
    return OptimizationRequest(
        opt_id=f"opt-{index}",
        plan_id=plan_ids[index % len(plan_ids)],
        objective=OBJECTIVE_PRESETS[config.objective_preset],
        tenant=f"tenant-{index % config.n_tenants}",
        precision=config.precision,
        seed=stable_seed("opt-loadgen-start", config.seed, index),
        max_iterations=config.max_iterations,
        tolerance=config.tolerance,
        initial_step=config.initial_step,
    )


def run_opt_loadtest(
    config: Optional[OptLoadConfig] = None,
    clock: Optional[Clock] = None,
) -> OptLoadReport:
    """Run one concurrent-optimization load test against a fresh service."""
    config = config or OptLoadConfig()
    clock = clock or get_clock()

    budgets: Optional[Dict[str, int]] = None
    if config.tenant_budget is not None:
        budgets = {
            f"tenant-{t}": config.tenant_budget
            for t in range(config.n_tenants)
        }
    service = OptimizationService(
        OptServiceConfig(
            n_workers=config.n_workers,
            shards=config.shards,
            dist_devices=config.dist_devices,
            placement=config.placement,
            quantum=config.quantum,
            checkpoint_every=config.checkpoint_every,
            tenant_budgets=budgets,
            serve_workers=config.serve_workers,
        ),
        clock=clock,
    )
    masters: Dict[str, CSRMatrix] = {}
    for plan_id, matrix in build_opt_plans(config).items():
        service.register_plan(plan_id, matrix, source="synthetic")
        masters[plan_id] = matrix
    plan_ids = sorted(masters)

    requests = [
        _build_request(config, i, plan_ids)
        for i in range(config.n_optimizations)
    ]
    records: List[OptRunRecord] = []

    with trace_span("opt.loadtest", optimizations=config.n_optimizations,
                    tenants=config.n_tenants):
        with service:
            started = clock.monotonic()
            tickets = []
            for request in requests:
                submitted = service.submit(request)
                if isinstance(submitted, OptRejected):
                    records.append(OptRunRecord(
                        opt_id=request.opt_id,
                        tenant=request.tenant,
                        plan_id=request.plan_id,
                        status=submitted.reason.value,
                        detail=submitted.detail,
                    ))
                else:
                    tickets.append((request, submitted))
            for request, ticket in tickets:
                outcome = ticket.outcome(timeout=300.0)
                records.append(_record(request, outcome))
            wall_s = clock.monotonic() - started

    if config.audit:
        _audit_trajectories(config, records, masters)

    terminal_counts: Dict[str, int] = {}
    for record in records:
        terminal_counts[record.status] = (
            terminal_counts.get(record.status, 0) + 1
        )
    report = OptLoadReport(
        config=config,
        records=records,
        wall_s=wall_s,
        terminal_counts=terminal_counts,
    )
    _log.info(kv(
        "opt loadtest finished", finished=report.finished,
        rejected=report.rejected,
        bitwise=f"{report.bitwise_ok}/{report.bitwise_checked}",
    ))
    _enrich_artifact(config, report)
    return report


def _record(request: OptimizationRequest, outcome: object) -> OptRunRecord:
    if isinstance(outcome, OptRejected):
        return OptRunRecord(
            opt_id=request.opt_id,
            tenant=request.tenant,
            plan_id=request.plan_id,
            status=outcome.reason.value,
            detail=outcome.detail,
        )
    assert isinstance(outcome, OptimizationOutcome)
    return OptRunRecord(
        opt_id=request.opt_id,
        tenant=request.tenant,
        plan_id=request.plan_id,
        status=outcome.terminal.value,
        iterations=outcome.iterations,
        n_evals=outcome.n_evals,
        objective=outcome.objective,
        detail=outcome.detail,
        points=list(outcome.points),
    )


def _audit_trajectories(
    config: OptLoadConfig,
    records: List[OptRunRecord],
    masters: Dict[str, CSRMatrix],
) -> None:
    """Bitwise-compare every trajectory with a standalone re-run.

    Each finished optimization is reconstructed from its seeds and
    re-run *outside* the service — single evaluator, no workers, no
    batching — and the service's recorded trajectory must equal the
    standalone one point for point.  Optimizations the tenant budget
    (or preemption) cut short must be an exact *prefix* of the
    standalone trajectory: stopping early is allowed, drifting is not.
    """
    from repro.opt.dist.loop import warm_start

    with trace_span("opt.loadtest_audit"):
        for record in records:
            if record.status in ("converged", "budget_exhausted",
                                 "preempted") and record.points:
                request = _build_request(
                    config, int(record.opt_id.split("-")[1]),
                    sorted(masters),
                )
                converted = convert_for_kernel(
                    masters[record.plan_id], config.precision
                )
                w0 = warm_start(
                    request.seed, converted.n_cols, request.opt_id
                )
                reference = run_reference(
                    converted, config.precision, request.objective, w0,
                    tolerance=config.tolerance,
                    max_iterations=config.max_iterations,
                    initial_step=config.initial_step,
                    opt_id=f"{record.opt_id}-standalone",
                )
                baseline = list(reference.points)[: len(record.points)]
                problems = compare_trajectories(
                    baseline, record.points, record.opt_id
                )
                if len(record.points) > len(reference.points):
                    problems.append(
                        f"{record.opt_id}: served trajectory longer than "
                        "standalone"
                    )
                record.bitwise = not problems
                for problem in problems:
                    _log.error(kv("opt loadtest divergence",
                                  problem=problem))
            record.points = []


def _enrich_artifact(config: OptLoadConfig, report: OptLoadReport) -> None:
    """Record the run into the per-run artifact (no-op when disabled)."""
    if not artifact.enabled():
        return
    workload = asdict(config)
    workload["mode"] = "opt_loadtest"
    artifact.set_param("workload", workload)
    artifact.record(
        "opt_loadtest",
        submitted=report.submitted,
        finished=report.finished,
        rejected=report.rejected,
        iterations_total=report.iterations_total,
        wall_s=report.wall_s,
        bitwise_checked=report.bitwise_checked,
        bitwise_ok=report.bitwise_ok,
        terminal_counts=report.terminal_counts,
        records=[
            {
                "opt_id": r.opt_id,
                "tenant": r.tenant,
                "plan_id": r.plan_id,
                "status": r.status,
                "iterations": r.iterations,
                "n_evals": r.n_evals,
                "objective": r.objective,
                "bitwise": r.bitwise,
            }
            for r in report.records
        ],
        claims=report.claims(),
    )
