"""Declarative, serializable objective specifications.

Checkpoint/resume needs the *whole* optimization to be reconstructible
from the run artifact: the iterate is an array, but the objective is
code.  An :class:`ObjectiveTermSpec` closes that gap — a small
declarative description (term kind, ROI selector, parameters) that
:func:`build_objective` expands into the real
:class:`~repro.opt.objectives.CompositeObjective` deterministically from
the plan's deposition matrix.  Two processes holding the same matrix and
the same specs build bit-for-bit the same objective, which is one leg of
the trajectory-determinism invariant.

ROI selectors derive regions from the matrix itself (no external
structure set needed for synthetic plans): ``hottest:K`` / ``coldest:K``
rank voxels by the reference dose ``A @ 1`` with index tie-breaks, so
the selection is a pure function of the matrix bits; ``all`` is every
voxel.  ``coldest`` only considers voxels with at least one deposition
entry — empty rows can never receive dose, so a coverage objective over
them would add a constant floor and a permanently zero gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.dose.grid import DoseGrid
from repro.dose.structures import ROIMask
from repro.opt.dvh_objectives import MaxDVHObjective, MinDVHObjective
from repro.opt.objectives import (
    CompositeObjective,
    DoseObjective,
    MaxDoseObjective,
    MeanDoseObjective,
    MinDoseObjective,
    UniformDoseObjective,
)
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ReproError

#: objective term kinds a spec may name.
OBJECTIVE_KINDS: Tuple[str, ...] = (
    "uniform",
    "max_dose",
    "min_dose",
    "mean_dose",
    "max_dvh",
    "min_dvh",
)

_DVH_KINDS = ("max_dvh", "min_dvh")


class ObjectiveSpecError(ReproError):
    """An objective specification that cannot be built."""


@dataclass(frozen=True)
class ObjectiveTermSpec:
    """One declarative objective term.

    ``roi`` is a selector string: ``all``, ``hottest:K`` or
    ``coldest:K``.  ``dose_gy`` is the prescription / limit / floor /
    goal depending on ``kind``; ``volume_fraction`` applies to the DVH
    kinds only.
    """

    kind: str
    roi: str = "all"
    dose_gy: float = 1.0
    weight: float = 1.0
    volume_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise ObjectiveSpecError(
                f"unknown objective kind {self.kind!r}; expected one of "
                f"{OBJECTIVE_KINDS}"
            )
        _parse_roi(self.roi)
        if self.weight < 0:
            raise ObjectiveSpecError(
                f"objective weight must be >= 0, got {self.weight}"
            )
        if self.dose_gy <= 0:
            raise ObjectiveSpecError(
                f"dose_gy must be positive, got {self.dose_gy}"
            )
        if self.kind == "max_dvh" and not 0.0 <= self.volume_fraction < 1.0:
            raise ObjectiveSpecError(
                f"max_dvh volume_fraction must be in [0, 1), got "
                f"{self.volume_fraction}"
            )
        if self.kind == "min_dvh" and not 0.0 < self.volume_fraction <= 1.0:
            raise ObjectiveSpecError(
                f"min_dvh volume_fraction must be in (0, 1], got "
                f"{self.volume_fraction}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (recorded in artifact params/checkpoints)."""
        return {
            "kind": self.kind,
            "roi": self.roi,
            "dose_gy": float(self.dose_gy),
            "weight": float(self.weight),
            "volume_fraction": float(self.volume_fraction),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ObjectiveTermSpec":
        return ObjectiveTermSpec(
            kind=str(data["kind"]),
            roi=str(data.get("roi", "all")),
            dose_gy=float(data.get("dose_gy", 1.0)),
            weight=float(data.get("weight", 1.0)),
            volume_fraction=float(data.get("volume_fraction", 0.0)),
        )


def specs_to_dicts(
    specs: Iterable[ObjectiveTermSpec],
) -> List[Dict[str, Any]]:
    return [s.to_dict() for s in specs]


def specs_from_dicts(
    data: Iterable[Dict[str, Any]],
) -> Tuple[ObjectiveTermSpec, ...]:
    return tuple(ObjectiveTermSpec.from_dict(d) for d in data)


def _parse_roi(selector: str) -> Tuple[str, int]:
    """Parse an ROI selector into ``(mode, count)`` (count 0 == all)."""
    if selector == "all":
        return "all", 0
    parts = selector.split(":")
    if len(parts) == 2 and parts[0] in ("hottest", "coldest"):
        try:
            count = int(parts[1])
        except ValueError:
            count = 0
        if count > 0:
            return parts[0], count
    raise ObjectiveSpecError(
        f"bad ROI selector {selector!r}; expected 'all', 'hottest:K' or "
        "'coldest:K' with K > 0"
    )


#: named objective sets the CLI/loadgen use.
OBJECTIVE_PRESETS: Dict[str, Tuple[ObjectiveTermSpec, ...]] = {
    # one quadratic target objective — the best-conditioned smoke case
    "uniform": (
        ObjectiveTermSpec("uniform", roi="hottest:200", dose_gy=60.0),
    ),
    # target + organ-at-risk + mean control — the typical clinical mix
    "clinical": (
        ObjectiveTermSpec("uniform", roi="hottest:200", dose_gy=60.0),
        ObjectiveTermSpec(
            "max_dose", roi="coldest:150", dose_gy=20.0, weight=0.5
        ),
        ObjectiveTermSpec(
            "mean_dose", roi="all", dose_gy=10.0, weight=0.25
        ),
    ),
    # DVH-constrained mix exercising the non-smooth clinical language
    "dvh": (
        ObjectiveTermSpec("uniform", roi="hottest:200", dose_gy=60.0),
        ObjectiveTermSpec(
            "max_dvh",
            roi="coldest:150",
            dose_gy=25.0,
            volume_fraction=0.3,
            weight=0.5,
        ),
        ObjectiveTermSpec(
            "min_dvh",
            roi="hottest:100",
            dose_gy=55.0,
            volume_fraction=0.95,
            weight=0.5,
        ),
    ),
}


def reference_dose(matrix: CSRMatrix) -> np.ndarray:
    """The ROI-derivation dose ``A @ 1`` (float64, deterministic)."""
    return matrix.matvec(np.ones(matrix.n_cols, dtype=np.float64))


def _select_roi(
    selector: str,
    matrix: CSRMatrix,
    ref_dose: np.ndarray,
    grid: DoseGrid,
) -> ROIMask:
    """Deterministically derive an ROI from the reference dose."""
    mode, count = _parse_roi(selector)
    n = matrix.n_rows
    flat = np.zeros(n, dtype=bool)
    if mode == "all":
        flat[:] = True
    else:
        if mode == "coldest":
            nonempty = np.flatnonzero(matrix.row_lengths() > 0)
            if nonempty.size == 0:
                raise ObjectiveSpecError(
                    f"ROI {selector!r}: matrix has no nonzero rows"
                )
            # ascending dose, index tie-break — a pure function of bits
            order = np.lexsort(
                (nonempty, ref_dose[nonempty])
            )
            chosen = nonempty[order[: min(count, nonempty.size)]]
        else:
            order = np.lexsort((np.arange(n), -ref_dose))
            chosen = order[: min(count, n)]
        flat[chosen] = True
    nx, ny, nz = grid.shape
    return ROIMask(
        name=selector, grid=grid, mask=flat.reshape(nz, ny, nx)
    )


def build_objective(
    specs: Sequence[ObjectiveTermSpec], matrix: CSRMatrix
) -> CompositeObjective:
    """Expand specs into a :class:`CompositeObjective` over ``matrix``.

    Deterministic: the ROIs derive from the reference dose ``A @ 1``
    with index tie-breaks, so the same (matrix bits, specs) pair always
    yields the same objective — on any host, at any shard count.
    """
    if not specs:
        raise ObjectiveSpecError("need at least one objective term spec")
    # Degenerate 1-D grid: matrix rows are the voxel axis.  Synthetic
    # plans have no 3-D geometry; the objectives only consume flat
    # voxel indices, so the grid shape carries no physics here.
    grid = DoseGrid(shape=(matrix.n_rows, 1, 1), spacing=(1.0, 1.0, 1.0))
    ref = reference_dose(matrix)
    terms: List[DoseObjective] = []
    for spec in specs:
        roi = _select_roi(spec.roi, matrix, ref, grid)
        if spec.kind == "uniform":
            terms.append(
                UniformDoseObjective(roi, spec.dose_gy, spec.weight)
            )
        elif spec.kind == "max_dose":
            terms.append(MaxDoseObjective(roi, spec.dose_gy, spec.weight))
        elif spec.kind == "min_dose":
            terms.append(MinDoseObjective(roi, spec.dose_gy, spec.weight))
        elif spec.kind == "mean_dose":
            terms.append(MeanDoseObjective(roi, spec.dose_gy, spec.weight))
        elif spec.kind == "max_dvh":
            terms.append(
                MaxDVHObjective(
                    roi, spec.dose_gy, spec.volume_fraction, spec.weight
                )
            )
        else:
            terms.append(
                MinDVHObjective(
                    roi, spec.dose_gy, spec.volume_fraction, spec.weight
                )
            )
    return CompositeObjective(terms)
