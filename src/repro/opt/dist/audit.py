"""Post-run bitwise audit of optimization trajectories.

The headline invariant of the optimization layer: the *entire
trajectory* — every iterate, objective value, and gradient — is bitwise
identical

* across shard counts (1/2/4/8 …),
* across serve batching and arrival orders (concurrent optimizations,
  different submission orders, micro-batched forwards),
* across kill-and-resume at any iteration boundary.

This module enforces it the way the serve loadgen audits doses: by
*recomputing*.  The reference leg re-runs the optimization on the
single-device path (plain ``kernel.run`` + the first-class
:class:`~repro.kernels.plan.TransposePlan` adjoint — an implementation
independent of the sharded executors), and every other leg must match
it on the per-iteration witnesses (hex-exact objective / step /
gradient norm, sha256 of iterate and gradient).  Any divergence is a
typed problem; the CLI exits non-zero on a failed audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dist.pool import DevicePool
from repro.kernels.dispatch import make_kernel
from repro.obs import metrics
from repro.obs.trace import span as trace_span
from repro.sparse.csr import CSRMatrix

from repro.opt.dist.evaluator import (
    DistributedObjectiveEvaluator,
    LocalObjectiveEvaluator,
)
from repro.opt.dist.loop import (
    OptRunOutcome,
    TrajectoryPoint,
    initial_state,
    restore_state,
    run_to_completion,
    warm_start,
)
from repro.opt.dist.objective_spec import ObjectiveTermSpec, build_objective
from repro.opt.dist.service import (
    OptimizationRequest,
    OptimizationOutcome,
    OptimizationService,
    OptServiceConfig,
)

_POINT_FIELDS = (
    "objective_hex",
    "gradient_norm_hex",
    "step_hex",
    "w_sha256",
    "grad_sha256",
)


@dataclass
class TrajectoryAudit:
    """Outcome of a full multi-leg trajectory audit."""

    ok: bool
    reference_iterations: int
    #: (leg label, iterations compared, "ok"/first problem).
    legs: List[Tuple[str, int, str]] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)


def compare_trajectories(
    baseline: Sequence[TrajectoryPoint],
    other: Sequence[TrajectoryPoint],
    label: str,
) -> List[str]:
    """Bitwise comparison of two trajectories (all problems, not first)."""
    problems: List[str] = []
    if len(baseline) != len(other):
        problems.append(
            f"{label}: trajectory length {len(other)} != baseline "
            f"{len(baseline)}"
        )
    for base, point in zip(baseline, other):
        if base.iteration != point.iteration:
            problems.append(
                f"{label}: iteration numbering diverged "
                f"({point.iteration} vs {base.iteration})"
            )
            break
        for fname in _POINT_FIELDS:
            b, o = getattr(base, fname), getattr(point, fname)
            if b != o:
                problems.append(
                    f"{label}: iteration {base.iteration} {fname} "
                    f"diverged ({o} != {b})"
                )
    return problems


def points_from_artifact_entries(
    entries: Sequence[Dict[str, Any]], opt_id: Optional[str] = None
) -> List[TrajectoryPoint]:
    """Rebuild trajectory witnesses from recorded ``opt_iteration`` rows."""
    points: List[TrajectoryPoint] = []
    for entry in entries:
        if opt_id is not None and entry.get("opt_id") != opt_id:
            continue
        points.append(
            TrajectoryPoint(
                iteration=int(entry["iteration"]),
                objective=float(entry["objective"]),
                objective_hex=str(entry["objective_hex"]),
                gradient_norm=float(entry["gradient_norm"]),
                gradient_norm_hex=str(entry["gradient_norm_hex"]),
                step_hex=str(entry["step_hex"]),
                w_sha256=str(entry["w_sha256"]),
                grad_sha256=str(entry["grad_sha256"]),
                n_evals=int(entry.get("n_evals", 0)),
            )
        )
    points.sort(key=lambda p: p.iteration)
    return points


def run_reference(
    matrix: CSRMatrix,
    precision: str,
    specs: Sequence[ObjectiveTermSpec],
    w0: np.ndarray,
    *,
    tolerance: float = 1e-6,
    max_iterations: int = 50,
    initial_step: float = 1.0,
    opt_id: str = "audit-reference",
    seed: Optional[int] = None,
) -> OptRunOutcome:
    """The independent single-device recomputation every leg must match."""
    kernel = make_kernel(precision)
    evaluator = LocalObjectiveEvaluator(matrix, kernel)
    objective = build_objective(specs, matrix)
    state = initial_state(evaluator, objective, w0,
                          initial_step=initial_step)
    return run_to_completion(
        evaluator, objective, state,
        opt_id=opt_id, tolerance=tolerance,
        max_iterations=max_iterations, initial_step=initial_step,
        seed=seed,
    )


def run_sharded(
    matrix: CSRMatrix,
    precision: str,
    specs: Sequence[ObjectiveTermSpec],
    w0: np.ndarray,
    n_shards: int,
    *,
    tolerance: float = 1e-6,
    max_iterations: int = 50,
    initial_step: float = 1.0,
    devices: int = 0,
    placement: str = "memory",
    halt_after: Optional[int] = None,
    opt_id: str = "audit-shard",
    checkpoint_every: int = 0,
    seed: Optional[int] = None,
) -> OptRunOutcome:
    """One sharded leg (optionally halted mid-run for the resume leg)."""
    kernel = make_kernel(precision)
    evaluator = DistributedObjectiveEvaluator(
        matrix, kernel, n_shards,
        pool=DevicePool.homogeneous(devices or min(n_shards, 4)),
        placement=placement,
    )
    objective = build_objective(specs, matrix)
    state = initial_state(evaluator, objective, w0,
                          initial_step=initial_step)
    return run_to_completion(
        evaluator, objective, state,
        opt_id=opt_id, tolerance=tolerance,
        max_iterations=max_iterations, initial_step=initial_step,
        halt_after=halt_after, checkpoint_every=checkpoint_every,
        seed=seed,
    )


def _service_leg(
    matrix: CSRMatrix,
    precision: str,
    specs: Sequence[ObjectiveTermSpec],
    w0: np.ndarray,
    *,
    tolerance: float,
    max_iterations: int,
    initial_step: float,
    shards: int,
    devices: int,
    placement: str,
    reverse_order: bool,
) -> OptimizationOutcome:
    """Run the audited optimization through the service, concurrently
    with a decoy optimization of the same plan so forwards coalesce;
    ``reverse_order`` flips the arrival order."""
    service = OptimizationService(
        OptServiceConfig(
            n_workers=2,
            shards=shards,
            dist_devices=devices,
            placement=placement,
            serve_workers=2,
        )
    )
    service.register_plan("audit-plan", matrix)
    target = OptimizationRequest(
        opt_id="audit-target",
        plan_id="audit-plan",
        objective=tuple(specs),
        precision=precision,
        w0=w0,
        max_iterations=max_iterations,
        tolerance=tolerance,
        initial_step=initial_step,
    )
    decoy = OptimizationRequest(
        opt_id="audit-decoy",
        plan_id="audit-plan",
        objective=tuple(specs),
        precision=precision,
        seed=1,
        max_iterations=max(2, max_iterations // 4),
        tolerance=tolerance,
        initial_step=initial_step,
    )
    with service:
        order = [decoy, target] if reverse_order else [target, decoy]
        tickets: Dict[str, Any] = {}
        for request in order:
            submitted = service.submit(request)
            if not hasattr(submitted, "outcome"):
                raise RuntimeError(
                    f"audit submission rejected: {submitted}"
                )
            tickets[request.opt_id] = submitted
        outcome = tickets["audit-target"].outcome(timeout=120.0)
        tickets["audit-decoy"].outcome(timeout=120.0)
    if not isinstance(outcome, OptimizationOutcome):
        raise RuntimeError(f"audit target rejected late: {outcome}")
    return outcome


def audit_optimization(
    matrix: CSRMatrix,
    precision: str,
    specs: Sequence[ObjectiveTermSpec],
    *,
    seed: int = 0,
    w0: Optional[np.ndarray] = None,
    tolerance: float = 1e-6,
    max_iterations: int = 50,
    initial_step: float = 1.0,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    devices: int = 0,
    placement: str = "memory",
    include_service: bool = True,
    kill_at: Optional[int] = None,
) -> TrajectoryAudit:
    """The full post-run audit: shard counts, batching orders, resume.

    ``matrix`` is the kernel-precision converted deposition matrix the
    audited run used.  Every leg recomputes the trajectory and must
    match the independent single-device reference bit for bit.
    """
    if w0 is None:
        w0 = warm_start(seed, matrix.n_cols)
    with trace_span("opt.audit", legs="reference"):
        reference = run_reference(
            matrix, precision, specs, w0,
            tolerance=tolerance, max_iterations=max_iterations,
            initial_step=initial_step,
        )
    audit = TrajectoryAudit(
        ok=True, reference_iterations=reference.state.iteration
    )
    audit.legs.append(
        ("reference (local, transpose-plan adjoint)",
         len(reference.points), "baseline")
    )

    def check(label: str, points: Sequence[TrajectoryPoint]) -> None:
        problems = compare_trajectories(reference.points, points, label)
        audit.problems.extend(problems)
        audit.legs.append(
            (label, len(points), problems[0] if problems else "ok")
        )

    # Leg 1 — shard counts.
    for count in shard_counts:
        if count > min(matrix.n_rows, matrix.n_cols):
            audit.legs.append(
                (f"shards={count}", 0, "skipped (matrix too small)")
            )
            continue
        leg = run_sharded(
            matrix, precision, specs, w0, count,
            tolerance=tolerance, max_iterations=max_iterations,
            initial_step=initial_step, devices=devices,
            placement=placement, opt_id=f"audit-shards-{count}",
        )
        check(f"shards={count}", leg.points)

    # Leg 2 — kill and resume at an iteration boundary.
    total = reference.state.iteration
    if total >= 1:
        halt = kill_at if kill_at is not None else max(1, total // 2)
        halt = min(halt, total)
        shard_for_resume = next(
            (c for c in shard_counts
             if 1 < c <= min(matrix.n_rows, matrix.n_cols)),
            1,
        )
        halted = run_sharded(
            matrix, precision, specs, w0, shard_for_resume,
            tolerance=tolerance, max_iterations=max_iterations,
            initial_step=initial_step, devices=devices,
            placement=placement, halt_after=halt,
            opt_id="audit-halted",
        )
        kernel = make_kernel(precision)
        evaluator = DistributedObjectiveEvaluator(
            matrix, kernel, shard_for_resume,
            pool=DevicePool.homogeneous(
                devices or min(shard_for_resume, 4)
            ),
            placement=placement,
        )
        objective = build_objective(specs, matrix)
        resumed = run_to_completion(
            evaluator, objective,
            restore_state(_checkpoint_of(halted)),
            opt_id="audit-resumed", tolerance=tolerance,
            max_iterations=max_iterations, initial_step=initial_step,
        )
        stitched = list(halted.points) + list(resumed.points)
        check(
            f"kill@{halt}/resume (shards={shard_for_resume})", stitched
        )

    # Leg 3 — serve batching and arrival orders.
    if include_service:
        for reverse in (False, True):
            outcome = _service_leg(
                matrix, precision, specs, w0,
                tolerance=tolerance, max_iterations=max_iterations,
                initial_step=initial_step,
                shards=max(
                    1,
                    min(2, min(matrix.n_rows, matrix.n_cols)),
                ),
                devices=devices, placement=placement,
                reverse_order=reverse,
            )
            label = (
                "service (reversed arrival)" if reverse
                else "service (batched forwards)"
            )
            check(label, outcome.points)

    audit.ok = not audit.problems
    metrics.counter(
        "opt.audit.passed" if audit.ok else "opt.audit.failed"
    ).inc()
    return audit


def _checkpoint_of(outcome: OptRunOutcome) -> Dict[str, Any]:
    """Serialize a halted run's final state for the resume leg."""
    from repro.opt.dist.loop import checkpoint_dict

    return checkpoint_dict(outcome.state)
