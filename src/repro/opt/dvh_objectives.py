"""DVH-based objectives — the clinical constraint language.

Protocols are written in dose-volume terms ("V20Gy of the lung <= 30 %",
"D95 of the target >= prescription"), not quadratic penalties.  These
objectives penalize DVH violations directly, using the standard smooth
relaxation: a max-DVH constraint ``V(d_limit) <= v_limit`` penalizes the
*hottest excess voxels beyond the allowed volume*, which keeps the
gradient sparse and well-behaved (this is the formulation treatment
planning systems, including RayStation, expose).

They plug into :class:`~repro.opt.objectives.CompositeObjective` like the
quadratic terms — every evaluation still rides on the same ``A w`` SpMV
the paper accelerates.
"""

from __future__ import annotations

import numpy as np

from repro.dose.structures import ROIMask
from repro.opt.objectives import DoseObjective
from repro.util.validation import check_positive


class MaxDVHObjective(DoseObjective):
    """Penalize ``V(dose_gy) > volume_fraction`` (an upper DVH point).

    Only the voxels that (a) exceed ``dose_gy`` and (b) lie beyond the
    allowed volume fraction when voxels are ranked by dose contribute —
    the coldest of the offending voxels are pushed down first, which is
    the minimal-perturbation way to restore the constraint.
    """

    def __init__(
        self,
        roi: ROIMask,
        dose_gy: float,
        volume_fraction: float,
        weight: float = 1.0,
    ) -> None:
        super().__init__(roi, weight)
        self.dose_gy = check_positive(dose_gy, "dose_gy")
        if not 0.0 <= volume_fraction < 1.0:
            raise ValueError(
                f"volume_fraction must be in [0, 1), got {volume_fraction}"
            )
        self.volume_fraction = volume_fraction

    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        n = max(dose_inside.shape[0], 1)
        allowed = int(np.floor(self.volume_fraction * n))
        over = dose_inside > self.dose_gy
        n_over = int(np.count_nonzero(over))
        grad = np.zeros_like(dose_inside)
        if n_over <= allowed:
            return 0.0, grad
        # Rank offending voxels by dose ascending; the coldest
        # (n_over - allowed) of them must come down to dose_gy.
        offender_idx = np.flatnonzero(over)
        order = np.argsort(dose_inside[offender_idx])
        victims = offender_idx[order[: n_over - allowed]]
        excess = dose_inside[victims] - self.dose_gy
        value = float(excess @ excess) / n
        grad[victims] = (2.0 / n) * excess
        return value, grad


class MinDVHObjective(DoseObjective):
    """Penalize ``V(dose_gy) < volume_fraction`` (a coverage DVH point).

    E.g. "95 % of the target must receive the prescription": the warmest
    of the under-dosed voxels are pulled up first.
    """

    def __init__(
        self,
        roi: ROIMask,
        dose_gy: float,
        volume_fraction: float,
        weight: float = 1.0,
    ) -> None:
        super().__init__(roi, weight)
        self.dose_gy = check_positive(dose_gy, "dose_gy")
        if not 0.0 < volume_fraction <= 1.0:
            raise ValueError(
                f"volume_fraction must be in (0, 1], got {volume_fraction}"
            )
        self.volume_fraction = volume_fraction

    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        n = max(dose_inside.shape[0], 1)
        required = int(np.ceil(self.volume_fraction * n))
        covered = dose_inside >= self.dose_gy
        n_covered = int(np.count_nonzero(covered))
        grad = np.zeros_like(dose_inside)
        if n_covered >= required:
            return 0.0, grad
        under_idx = np.flatnonzero(~covered)
        order = np.argsort(-dose_inside[under_idx])  # warmest first
        victims = under_idx[order[: required - n_covered]]
        deficit = self.dose_gy - dose_inside[victims]
        value = float(deficit @ deficit) / n
        grad[victims] = (-2.0 / n) * deficit
        return value, grad


def dvh_objective_satisfied(
    dose: np.ndarray, objective: DoseObjective, tolerance: float = 1e-12
) -> bool:
    """Whether a DVH objective's constraint holds at a dose (value == 0)."""
    return objective.value(np.asarray(dose, dtype=np.float64)) <= tolerance
