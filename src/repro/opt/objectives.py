"""Plan-optimization objective functions.

The paper's setting: an iterative optimizer adjusts spot weights ``w`` and
evaluates the dose ``d = A w`` in *every iteration* — which is why the SpMV
is the bottleneck worth porting to GPU.  These are the standard quadratic
penalty objectives treatment planning systems use:

* uniform-dose: ``||d - p||^2`` over the target (prescription ``p``);
* max-dose: one-sided ``||max(d - limit, 0)||^2`` over an OAR;
* min-dose: one-sided ``||max(floor - d, 0)||^2`` over the target.

All objectives expose value and gradient *with respect to the dose*; the
problem layer chains them through ``A^T`` to get spot-weight gradients.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.dose.structures import ROIMask
from repro.util.errors import ShapeError
from repro.util.validation import check_nonnegative, check_positive


class DoseObjective(abc.ABC):
    """A weighted objective term evaluated on the dose vector."""

    def __init__(self, roi: ROIMask, weight: float = 1.0) -> None:
        self.roi = roi
        self.weight = check_nonnegative(weight, "weight")
        self._indices = roi.voxel_indices

    @abc.abstractmethod
    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        """Value and d(value)/d(dose) restricted to the ROI's voxels."""

    def value(self, dose: np.ndarray) -> float:
        """Weighted objective value."""
        v, _ = self._eval(dose)
        return v

    def gradient(self, dose: np.ndarray) -> np.ndarray:
        """Weighted gradient w.r.t. the full dose vector (sparse support)."""
        _, g = self._eval(dose)
        return g

    def _eval(self, dose: np.ndarray) -> "tuple[float, np.ndarray]":
        dose = np.asarray(dose, dtype=np.float64)
        if dose.shape != (self.roi.grid.n_voxels,):
            raise ShapeError(
                f"dose has shape {dose.shape}, expected "
                f"({self.roi.grid.n_voxels},)"
            )
        inside = dose[self._indices]
        v, g_inside = self._value_and_grad_inside(inside)
        grad = np.zeros_like(dose)
        grad[self._indices] = self.weight * g_inside
        return self.weight * v, grad

    @property
    def n_voxels(self) -> int:
        return self._indices.shape[0]


@dataclass(frozen=True)
class _Normalization:
    """Objectives are normalized by ROI voxel count so weights are
    comparable across differently sized structures."""


class UniformDoseObjective(DoseObjective):
    """``(1/n) * sum((d_i - prescription)^2)`` over the target."""

    def __init__(self, roi: ROIMask, prescription_gy: float,
                 weight: float = 1.0) -> None:
        super().__init__(roi, weight)
        self.prescription_gy = check_positive(prescription_gy, "prescription_gy")

    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        n = max(dose_inside.shape[0], 1)
        diff = dose_inside - self.prescription_gy
        return float(diff @ diff) / n, (2.0 / n) * diff


class MaxDoseObjective(DoseObjective):
    """One-sided ``(1/n) * sum(max(d_i - limit, 0)^2)`` over an OAR."""

    def __init__(self, roi: ROIMask, limit_gy: float,
                 weight: float = 1.0) -> None:
        super().__init__(roi, weight)
        self.limit_gy = check_nonnegative(limit_gy, "limit_gy")

    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        n = max(dose_inside.shape[0], 1)
        excess = np.maximum(dose_inside - self.limit_gy, 0.0)
        return float(excess @ excess) / n, (2.0 / n) * excess


class MinDoseObjective(DoseObjective):
    """One-sided ``(1/n) * sum(max(floor - d_i, 0)^2)`` over the target."""

    def __init__(self, roi: ROIMask, floor_gy: float,
                 weight: float = 1.0) -> None:
        super().__init__(roi, weight)
        self.floor_gy = check_positive(floor_gy, "floor_gy")

    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        n = max(dose_inside.shape[0], 1)
        deficit = np.maximum(self.floor_gy - dose_inside, 0.0)
        return float(deficit @ deficit) / n, (-2.0 / n) * deficit


class MeanDoseObjective(DoseObjective):
    """``(mean(d) - goal)^2`` — soft mean-dose control for large OARs."""

    def __init__(self, roi: ROIMask, goal_gy: float,
                 weight: float = 1.0) -> None:
        super().__init__(roi, weight)
        self.goal_gy = check_nonnegative(goal_gy, "goal_gy")

    def _value_and_grad_inside(
        self, dose_inside: np.ndarray
    ) -> "tuple[float, np.ndarray]":
        n = max(dose_inside.shape[0], 1)
        mean = float(dose_inside.mean()) if dose_inside.size else 0.0
        diff = mean - self.goal_gy
        grad = np.full(dose_inside.shape[0], 2.0 * diff / n)
        return diff * diff, grad


class CompositeObjective:
    """Weighted sum of objective terms with a combined gradient."""

    def __init__(self, terms: "list[DoseObjective]") -> None:
        if not terms:
            raise ValueError("need at least one objective term")
        self.terms = list(terms)

    def value(self, dose: np.ndarray) -> float:
        return float(sum(t.value(dose) for t in self.terms))

    def gradient(self, dose: np.ndarray) -> np.ndarray:
        grad = self.terms[0].gradient(dose)
        for t in self.terms[1:]:
            grad = grad + t.gradient(dose)
        return grad

    def value_and_gradient(self, dose: np.ndarray) -> "tuple[float, np.ndarray]":
        v = 0.0
        grad = np.zeros_like(np.asarray(dose, dtype=np.float64))
        for t in self.terms:
            tv, tg = t._eval(np.asarray(dose, dtype=np.float64))
            v += tv
            grad += tg
        return v, grad
