"""Solvers for the spot-weight optimization problem.

Spot weights are physically non-negative, so the canonical solver is
projected gradient descent with Barzilai-Borwein step sizes; a projected
L-BFGS (projection after the two-loop update) is provided for faster
convergence on the better-conditioned prostate cases.  Both report
per-iteration statistics so the examples can show how many dose
calculations a plan costs — the quantity the paper's GPU port accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics
from repro.obs.clock import Clock, get_clock
from repro.obs.lockwitness import guarded_lock
from repro.obs.trace import span as trace_span, traced
from repro.opt.problem import PlanOptimizationProblem
from repro.util.errors import ConvergenceError


def _eval(
    problem: PlanOptimizationProblem, w: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Objective/gradient evaluation, counted: each one is a dose
    calculation (SpMV + adjoint) — the quantity the paper's GPU port
    accelerates."""
    metrics.counter("opt.objective_evals").inc()
    return problem.value_and_gradient(w)


_stats_lock = guarded_lock(  # analyze: lock-guards[_solve_stats]
    "opt.solver.stats"
)
#: cumulative per-solver totals (iterations, evals, wall seconds).
_solve_stats: Dict[str, Dict[str, float]] = {}


def _note_solve(solver: str, iterations: int, wall_s: float) -> None:
    with _stats_lock:
        entry = _solve_stats.setdefault(
            solver, {"solves": 0.0, "iterations": 0.0, "wall_s": 0.0}
        )
        entry["solves"] += 1
        entry["iterations"] += iterations
        entry["wall_s"] += wall_s


def solver_stats() -> Dict[str, Dict[str, float]]:
    """Cumulative per-solver accounting (snapshot copy)."""
    with _stats_lock:
        return {name: dict(entry) for name, entry in _solve_stats.items()}


@dataclass
class IterationRecord:
    """One optimizer iteration's statistics."""

    iteration: int
    objective: float
    gradient_norm: float
    step_size: float
    #: wall time of this iteration per the injected clock (0.0 when the
    #: clock stands still, e.g. a FakeClock in tests).
    wall_s: float = 0.0


@dataclass
class OptimizationResult:
    """Solution and convergence history."""

    weights: np.ndarray
    objective: float
    iterations: int
    converged: bool
    history: List[IterationRecord] = field(default_factory=list)
    #: total solve wall time per the injected clock.
    wall_s: float = 0.0

    @property
    def objective_trace(self) -> np.ndarray:
        return np.asarray([r.objective for r in self.history])


def project_nonnegative(w: np.ndarray) -> np.ndarray:
    """Clip weights to the physical w >= 0 constraint."""
    return np.maximum(w, 0.0)


@traced("opt.solve", solver="projected_gradient")
def solve_projected_gradient(
    problem: PlanOptimizationProblem,
    w0: Optional[np.ndarray] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    initial_step: float = 1.0,
    raise_on_failure: bool = False,
    clock: Optional[Clock] = None,
) -> OptimizationResult:
    """Projected gradient with Barzilai-Borwein step adaptation.

    Converged when the projected-gradient norm falls below ``tolerance``
    times its initial value.  ``clock`` (injectable for tests; defaults
    to the process clock) times each iteration without touching the
    math: timing is observational, never part of the trajectory.
    """
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")
    clock = clock or get_clock()
    solve_start = clock.monotonic()

    def finish(result: OptimizationResult) -> OptimizationResult:
        result.wall_s = clock.monotonic() - solve_start
        _note_solve("projected_gradient", result.iterations, result.wall_s)
        return result

    w = (
        np.full(problem.n_weights, 1.0)
        if w0 is None
        else project_nonnegative(np.asarray(w0, dtype=np.float64).copy())
    )
    value, grad = _eval(problem, w)
    step = initial_step
    history: List[IterationRecord] = []
    initial_norm = _projected_gradient_norm(w, grad)
    if initial_norm == 0.0:
        return finish(OptimizationResult(w, value, 0, True, history))
    prev_w = None
    prev_grad = None
    for it in range(1, max_iterations + 1):
        with trace_span("opt.iteration", solver="projected_gradient",
                        iteration=it) as sp:
            iter_start = clock.monotonic()
            w_new = project_nonnegative(w - step * grad)
            value_new, grad_new = _eval(problem, w_new)
            # Backtrack if the step increased the objective.
            backtracks = 0
            while value_new > value and backtracks < 20:
                step *= 0.5
                w_new = project_nonnegative(w - step * grad)
                value_new, grad_new = _eval(problem, w_new)
                backtracks += 1
            prev_w, prev_grad = w, grad
            w, value, grad = w_new, value_new, grad_new
            pg_norm = _projected_gradient_norm(w, grad)
            history.append(IterationRecord(
                it, value, pg_norm, step,
                wall_s=clock.monotonic() - iter_start,
            ))
            metrics.counter("opt.iterations").inc()
            sp.set_attrs(objective=value, gradient_norm=pg_norm,
                         backtracks=backtracks)
            if pg_norm <= tolerance * initial_norm:
                return finish(OptimizationResult(w, value, it, True, history))
            # Barzilai-Borwein step for the next iteration.
            s = w - prev_w
            g = grad - prev_grad
            sg = float(s @ g)
            if sg > 1e-30:
                step = float(s @ s) / sg
            else:
                step = initial_step
    if raise_on_failure:
        raise ConvergenceError(
            f"projected gradient did not converge in {max_iterations} iterations "
            f"(final projected-gradient norm {history[-1].gradient_norm:.3e})"
        )
    return finish(OptimizationResult(w, value, max_iterations, False, history))


@traced("opt.solve", solver="lbfgs")
def solve_lbfgs(
    problem: PlanOptimizationProblem,
    w0: Optional[np.ndarray] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    memory: int = 8,
    clock: Optional[Clock] = None,
) -> OptimizationResult:
    """Projected L-BFGS (two-loop recursion, projection after each step)."""
    clock = clock or get_clock()
    solve_start = clock.monotonic()

    def finish(result: OptimizationResult) -> OptimizationResult:
        result.wall_s = clock.monotonic() - solve_start
        _note_solve("lbfgs", result.iterations, result.wall_s)
        return result

    w = (
        np.full(problem.n_weights, 1.0)
        if w0 is None
        else project_nonnegative(np.asarray(w0, dtype=np.float64).copy())
    )
    value, grad = _eval(problem, w)
    s_list: List[np.ndarray] = []
    y_list: List[np.ndarray] = []
    history: List[IterationRecord] = []
    initial_norm = _projected_gradient_norm(w, grad)
    if initial_norm == 0.0:
        return finish(OptimizationResult(w, value, 0, True, history))
    for it in range(1, max_iterations + 1):
        with trace_span("opt.iteration", solver="lbfgs", iteration=it) as sp:
            iter_start = clock.monotonic()
            direction = -_two_loop(grad, s_list, y_list)
            step = 1.0 if s_list else min(1.0, 1.0 / max(initial_norm, 1e-12))
            w_new = project_nonnegative(w + step * direction)
            value_new, grad_new = _eval(problem, w_new)
            backtracks = 0
            while value_new > value - 1e-12 and backtracks < 25:
                step *= 0.5
                w_new = project_nonnegative(w + step * direction)
                value_new, grad_new = _eval(problem, w_new)
                backtracks += 1
            s = w_new - w
            y = grad_new - grad
            if float(s @ y) > 1e-12:
                s_list.append(s)
                y_list.append(y)
                if len(s_list) > memory:
                    s_list.pop(0)
                    y_list.pop(0)
            w, value, grad = w_new, value_new, grad_new
            pg_norm = _projected_gradient_norm(w, grad)
            history.append(IterationRecord(
                it, value, pg_norm, step,
                wall_s=clock.monotonic() - iter_start,
            ))
            metrics.counter("opt.iterations").inc()
            sp.set_attrs(objective=value, gradient_norm=pg_norm,
                         backtracks=backtracks)
            if pg_norm <= tolerance * initial_norm:
                return finish(OptimizationResult(w, value, it, True, history))
    return finish(OptimizationResult(w, value, max_iterations, False, history))


def _two_loop(
    grad: np.ndarray, s_list: List[np.ndarray], y_list: List[np.ndarray]
) -> np.ndarray:
    """Standard L-BFGS two-loop recursion producing H*grad."""
    q = grad.copy()
    alphas = []
    for s, y in zip(reversed(s_list), reversed(y_list)):
        rho = 1.0 / float(y @ s)
        alpha = rho * float(s @ q)
        q -= alpha * y
        alphas.append((alpha, rho, s, y))
    if s_list:
        s, y = s_list[-1], y_list[-1]
        q *= float(s @ y) / float(y @ y)
    for alpha, rho, s, y in reversed(alphas):
        beta = rho * float(y @ q)
        q += (alpha - beta) * s
    return q


def _projected_gradient_norm(w: np.ndarray, grad: np.ndarray) -> float:
    """Norm of the gradient projected onto the feasible directions.

    At active bounds (w == 0) only descent directions pointing inward
    (negative gradient components) count.
    """
    pg = grad.copy()
    at_bound = w <= 0.0
    pg[at_bound & (grad > 0)] = 0.0
    return float(np.linalg.norm(pg))
