"""Photon finite-pencil-beam workload: dense, banded rows.

A photon finite-pencil-beam (FPB) dose engine decomposes the fluence
plane into a regular grid of beamlets and superposes per-beamlet dose
kernels (Gu et al., PAPERS.md).  Two structural properties set the
family apart from proton PBS:

* **no Bragg peak** — the depth dose is buildup followed by slow
  exponential attenuation, so a beamlet deposits along its *entire*
  path: rows are much denser than PBS rows;
* **regular beamlet grid** — columns are ordered row-major over the
  ``(v, u)`` fluence grid, so the lateral kernel radius translates into
  a hard *bandwidth* bound: all nonzeros of a voxel row fall within
  ``floor(2·r_cut/Δ) · (n_u + 1)`` columns of each other.

The generator reuses the existing analytic machinery end-to-end —
:func:`~repro.dose.pencilbeam.compute_beam_geometry` for radiological
depth and :func:`~repro.dose.pencilbeam.spot_dose` for the culled
lateral superposition — with :class:`PhotonDepthCurve` duck-typing the
Bragg curve interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.dose.beam import Beam
from repro.dose.bragg import lateral_sigma_mm
from repro.dose.deposition import HALF_CALIBRATION_PEAK
from repro.dose.pencilbeam import compute_beam_geometry, spot_dose
from repro.dose.phantom import Phantom, build_liver_phantom
from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import make_rng, stable_seed

#: (phantom shape, phantom spacing mm, beamlet spacing mm).
_PRESETS: Dict[str, Tuple[Tuple[int, int, int], Tuple[float, float, float], float]] = {
    "probe": ((12, 12, 8), (16.0, 16.0, 20.0), 22.0),
    "tiny": ((16, 16, 10), (14.0, 14.0, 18.0), 16.0),
    "bench": ((22, 22, 15), (12.0, 12.0, 16.0), 11.0),
}

#: lateral truncation radius in units of sigma (narrower than the proton
#: default: FPB kernels are tabulated on finite supports).
CUTOFF_SIGMA = 3.0

#: in-air beamlet width; photon beamlets are broader than proton spots.
SIGMA0_MM = 7.0


@dataclass(frozen=True)
class PhotonDepthCurve:
    """Photon depth dose: electron buildup times exponential attenuation.

    ``dose_at(d) = (1 - exp(-d/buildup_mm)) * exp(-mu_per_mm * d)``.

    Duck-types the :class:`~repro.dose.bragg.BraggCurve` interface that
    :func:`~repro.dose.pencilbeam.spot_dose` consumes (``range_mm``,
    ``dose_at``, ``mean_dose_between``); ``range_mm`` is the bookkeeping
    depth limit, set beyond the phantom so the depth cull never clips a
    photon row — attenuation, not range, ends the dose.
    """

    mu_per_mm: float = 0.004
    buildup_mm: float = 15.0
    range_mm: float = 350.0

    def __post_init__(self) -> None:
        if self.mu_per_mm <= 0 or self.buildup_mm <= 0 or self.range_mm <= 0:
            raise ShapeError(
                "PhotonDepthCurve parameters must be positive, got "
                f"mu={self.mu_per_mm}, buildup={self.buildup_mm}, "
                f"range={self.range_mm}"
            )

    def dose_at(self, depth_mm: np.ndarray) -> np.ndarray:
        d = np.clip(np.asarray(depth_mm, dtype=np.float64), 0.0, None)
        return (1.0 - np.exp(-d / self.buildup_mm)) * np.exp(
            -self.mu_per_mm * d
        )

    def _antiderivative(self, d: np.ndarray) -> np.ndarray:
        mu = self.mu_per_mm
        k = mu + 1.0 / self.buildup_mm
        return -np.exp(-mu * d) / mu + np.exp(-k * d) / k

    def mean_dose_between(
        self, lo_mm: np.ndarray, hi_mm: np.ndarray
    ) -> np.ndarray:
        """Exact interval average of :meth:`dose_at` (analytic integral)."""
        lo = np.clip(np.asarray(lo_mm, dtype=np.float64), 0.0, None)
        hi = np.clip(np.asarray(hi_mm, dtype=np.float64), 0.0, None)
        width = hi - lo
        mean = np.where(
            width > 0,
            (self._antiderivative(hi) - self._antiderivative(lo))
            / np.where(width > 0, width, 1.0),
            self.dose_at(lo),
        )
        return mean


@dataclass(frozen=True)
class PhotonFPBWorkload:
    """A generated photon FPB matrix plus its beamlet-grid metadata.

    Column ``iv * n_u + iu`` is the beamlet at fluence-grid position
    ``(iv, iu)`` (row-major, **not** the serpentine PBS order — the
    row-major order is what makes :attr:`bandwidth_bound` a provable
    invariant rather than a statistical one).
    """

    matrix: CSRMatrix
    phantom: Phantom
    beam: Beam
    curve: PhotonDepthCurve
    n_u: int
    n_v: int
    beamlet_spacing_mm: float
    sigma0_mm: float
    beamlet_u_mm: np.ndarray
    beamlet_v_mm: np.ndarray
    #: hard upper bound on (last col - first col) of any row.
    bandwidth_bound: int

    def __post_init__(self) -> None:
        if self.matrix.n_cols != self.n_u * self.n_v:
            raise ShapeError(
                f"{self.matrix.n_cols} columns but a "
                f"{self.n_v}x{self.n_u} beamlet grid"
            )

    @property
    def name(self) -> str:
        return "photon_fpb"


def photon_bandwidth_bound(
    n_u: int,
    beamlet_spacing_mm: float,
    curve: PhotonDepthCurve,
    sigma0_mm: float = SIGMA0_MM,
    cutoff_sigma: float = CUTOFF_SIGMA,
) -> int:
    """Provable row-bandwidth bound of a row-major FPB matrix.

    Two beamlets can hit the same voxel only if both lie within the
    lateral cull radius ``r_cut = cutoff_sigma * sigma(range)`` of it, so
    their grid offsets differ by at most ``floor(2*r_cut / spacing)`` in
    each axis; with columns ordered ``iv * n_u + iu`` the column spread
    of one row is at most that offset times ``n_u + 1``.
    """
    sigma_max = float(
        lateral_sigma_mm(curve.range_mm, curve.range_mm, sigma0_mm)
    )
    r_cut = cutoff_sigma * sigma_max
    k = math.floor(2.0 * r_cut / beamlet_spacing_mm)
    return k * (n_u + 1)


def generate_photon_fpb(seed: int = 0, preset: str = "tiny") -> PhotonFPBWorkload:
    """Generate a seed-stable photon finite-pencil-beam matrix.

    The beamlet grid covers the target's BEV hull plus one cull radius of
    margin; per-beamlet fluence jitter (the only stochastic element) is
    drawn from a ``stable_seed`` stream, so the same ``(seed, preset)``
    regenerates the matrix bit-for-bit.
    """
    if preset not in _PRESETS:
        raise ShapeError(
            f"unknown photon_fpb preset {preset!r}; expected one of "
            f"{tuple(_PRESETS)}"
        )
    shape, spacing, beamlet_spacing = _PRESETS[preset]
    rng = make_rng(stable_seed("workload", "photon_fpb", seed, preset))
    curve = PhotonDepthCurve()

    phantom = build_liver_phantom(shape, spacing)
    idx = phantom.target.voxel_indices
    centers = phantom.grid.voxel_centers()[idx]
    iso = tuple(float(c) for c in centers.mean(axis=0))
    beam = Beam("photon-fpb", gantry_angle_deg=0.0, isocenter_mm=iso)
    geometry = compute_beam_geometry(phantom, beam)

    # Beamlet grid over the target BEV hull + margin, row-major in (v, u).
    u_t = geometry.u_mm[idx]
    v_t = geometry.v_mm[idx]
    sigma_max = float(
        lateral_sigma_mm(curve.range_mm, curve.range_mm, SIGMA0_MM)
    )
    margin = CUTOFF_SIGMA * sigma_max / 2.0
    u_lo, u_hi = float(u_t.min()) - margin, float(u_t.max()) + margin
    v_lo, v_hi = float(v_t.min()) - margin, float(v_t.max()) + margin
    n_u = max(int(math.floor((u_hi - u_lo) / beamlet_spacing)) + 1, 2)
    n_v = max(int(math.floor((v_hi - v_lo) / beamlet_spacing)) + 1, 2)
    us = u_lo + np.arange(n_u) * beamlet_spacing
    vs = v_lo + np.arange(n_v) * beamlet_spacing

    fluence = 0.8 + 0.4 * rng.random(n_u * n_v)

    rows = []
    cols = []
    vals = []
    for iv in range(n_v):
        for iu in range(n_u):
            j = iv * n_u + iu
            sd = spot_dose(
                geometry,
                curve,
                spot_u_mm=float(us[iu]),
                spot_v_mm=float(vs[iv]),
                sigma0_mm=SIGMA0_MM,
                cutoff_sigma=CUTOFF_SIGMA,
                relative_cutoff=1e-3,
                dose_per_weight=float(fluence[j]),
            )
            rows.append(sd.voxel_indices)
            cols.append(np.full(sd.voxel_indices.shape[0], j, dtype=np.int64))
            vals.append(sd.dose)

    all_vals = np.concatenate(vals)
    peak = float(all_vals.max(initial=0.0))
    scale = (HALF_CALIBRATION_PEAK / peak) if peak > 0 else 1.0
    matrix = coo_to_csr(
        COOMatrix(
            (phantom.grid.n_voxels, n_u * n_v),
            np.concatenate(rows),
            np.concatenate(cols),
            all_vals * scale,
        ),
        value_dtype=np.float32,
        index_dtype=np.int32,
    )
    grid_u = np.tile(us, n_v)
    grid_v = np.repeat(vs, n_u)
    grid_u.setflags(write=False)
    grid_v.setflags(write=False)
    return PhotonFPBWorkload(
        matrix=matrix,
        phantom=phantom,
        beam=beam,
        curve=curve,
        n_u=n_u,
        n_v=n_v,
        beamlet_spacing_mm=beamlet_spacing,
        sigma0_mm=SIGMA0_MM,
        beamlet_u_mm=grid_u,
        beamlet_v_mm=grid_v,
        bandwidth_bound=photon_bandwidth_bound(
            n_u, beamlet_spacing, curve
        ),
    )
