"""VMAT aperture workload: dynamic-MLC column structure.

Volumetric-modulated arc therapy delivers dose through a multi-leaf
collimator (MLC) whose leaf pairs sweep while the gantry rotates; the
optimization variable is one weight per *control point* (gantry angle),
not per spot.  The deposition matrix therefore has one **column per
control point**, and the nonzero rows of column ``k`` are exactly the
fluence-plane voxels inside control point ``k``'s aperture — short
contiguous runs per leaf row whose endpoints move by at most the leaf
travel limit between consecutive control points (Tian et al., PAPERS.md).

The structure is the opposite of proton PBS: PBS columns are scattered
dose clouds over a 3-D grid; VMAT columns are unions of contiguous
``x``-runs, one per leaf row, and adjacent columns overlap heavily.
That makes the family row-overhead-dominated for the partitioner (many
short rows) and gives the autotuner a fingerprint far from the PBS one.

Everything is generated from ``stable_seed``-derived streams: the same
``(seed, preset)`` reproduces leaf trajectories, fluence profile and
matrix bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.sparse.convert import coo_to_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import make_rng, stable_seed

#: generation-size presets: (leaf_pairs, positions_per_row, control_points).
_PRESETS: Dict[str, Tuple[int, int, int]] = {
    "probe": (12, 24, 24),
    "tiny": (24, 40, 64),
    "bench": (40, 64, 144),
}

#: maximum leaf travel (in position bins) between consecutive control
#: points — the dynamic-MLC mechanical constraint the column structure
#: must respect.
MAX_LEAF_TRAVEL = 3

#: minimum open width (position bins) of every aperture row.
MIN_APERTURE_WIDTH = 2


@dataclass(frozen=True)
class VMATWorkload:
    """A generated VMAT aperture matrix plus the MLC sequence behind it.

    Row ``y * n_positions + x`` is fluence-plane voxel ``(y, x)``; column
    ``k`` is control point ``k``.  ``leaf_left[k, y]``/``leaf_right[k, y]``
    bound the open interval ``[left, right)`` of leaf row ``y`` at control
    point ``k`` — the invariant tests check the matrix columns against
    exactly these arrays.
    """

    matrix: CSRMatrix
    n_leaf_pairs: int
    n_positions: int
    n_control_points: int
    leaf_left: np.ndarray
    leaf_right: np.ndarray
    mu: np.ndarray
    max_leaf_travel: int = MAX_LEAF_TRAVEL

    def __post_init__(self) -> None:
        expect = (self.n_control_points, self.n_leaf_pairs)
        if self.leaf_left.shape != expect or self.leaf_right.shape != expect:
            raise ShapeError(
                f"leaf arrays must be {expect}, got "
                f"{self.leaf_left.shape} / {self.leaf_right.shape}"
            )
        if self.matrix.shape != (
            self.n_leaf_pairs * self.n_positions,
            self.n_control_points,
        ):
            raise ShapeError(
                f"matrix shape {self.matrix.shape} does not match the "
                f"{self.n_leaf_pairs}x{self.n_positions} fluence plane with "
                f"{self.n_control_points} control points"
            )

    @property
    def name(self) -> str:
        return "vmat"

    def aperture_rows(self, k: int) -> np.ndarray:
        """Sorted row indices open at control point ``k`` (the invariant)."""
        rows = [
            y * self.n_positions + x
            for y in range(self.n_leaf_pairs)
            for x in range(int(self.leaf_left[k, y]),
                           int(self.leaf_right[k, y]))
        ]
        return np.asarray(rows, dtype=np.int64)


def generate_vmat(seed: int = 0, preset: str = "tiny") -> VMATWorkload:
    """Generate a seed-stable VMAT aperture deposition matrix.

    Leaf trajectories are a bounded random walk: each leaf endpoint moves
    at most :data:`MAX_LEAF_TRAVEL` bins per control point and every row
    stays at least :data:`MIN_APERTURE_WIDTH` bins open, so consecutive
    columns differ only where leaves moved.  Column ``k``'s values are
    ``mu[k] * profile[y, x]`` — a per-control-point monitor-unit weight
    times a static fluence profile — strictly positive everywhere inside
    the aperture.
    """
    if preset not in _PRESETS:
        raise ShapeError(
            f"unknown vmat preset {preset!r}; expected one of "
            f"{tuple(_PRESETS)}"
        )
    n_leaf, n_pos, n_cp = _PRESETS[preset]
    rng = make_rng(stable_seed("workload", "vmat", seed, preset))

    profile = 0.5 + rng.random((n_leaf, n_pos))
    mu = 0.5 + rng.random(n_cp)

    left = np.empty((n_cp, n_leaf), dtype=np.int64)
    right = np.empty((n_cp, n_leaf), dtype=np.int64)
    lo = rng.integers(0, n_pos - MIN_APERTURE_WIDTH, size=n_leaf)
    hi = np.minimum(
        lo + MIN_APERTURE_WIDTH + rng.integers(0, n_pos // 2, size=n_leaf),
        n_pos,
    )
    for k in range(n_cp):
        left[k] = lo
        right[k] = hi
        step = MAX_LEAF_TRAVEL + 1
        lo = np.clip(
            lo + rng.integers(-MAX_LEAF_TRAVEL, step, size=n_leaf),
            0,
            n_pos - MIN_APERTURE_WIDTH,
        )
        hi = np.clip(
            hi + rng.integers(-MAX_LEAF_TRAVEL, step, size=n_leaf),
            lo + MIN_APERTURE_WIDTH,
            n_pos,
        )

    rows = []
    cols = []
    vals = []
    for k in range(n_cp):
        for y in range(n_leaf):
            xs = np.arange(left[k, y], right[k, y], dtype=np.int64)
            rows.append(y * n_pos + xs)
            cols.append(np.full(xs.shape[0], k, dtype=np.int64))
            vals.append(mu[k] * profile[y, left[k, y]:right[k, y]])
    matrix = coo_to_csr(
        COOMatrix(
            (n_leaf * n_pos, n_cp),
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        ),
        value_dtype=np.float32,
        index_dtype=np.int32,
    )
    left.setflags(write=False)
    right.setflags(write=False)
    mu.setflags(write=False)
    return VMATWorkload(
        matrix=matrix,
        n_leaf_pairs=n_leaf,
        n_positions=n_pos,
        n_control_points=n_cp,
        leaf_left=left,
        leaf_right=right,
        mu=mu,
    )
