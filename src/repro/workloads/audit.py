"""The ensemble bitwise audit: one stack, every execution path.

The workload subsystem's core claim is that a workload's dose stack —
``np.stack([A_s @ w for s in scenarios])`` in scenario-index order — is
**one well-defined array of bits**, no matter which execution path
produced it.  This module proves the claim constructively: it evaluates
the same ``(workload, weights, precision)`` problem

* directly (stand-alone kernel, batch of one, no cache, no scheduler),
* sharded across every requested shard count (one device per shard),
* through the serve layer twice, under *different* batching windows,
  worker counts and scenario submission orders,

and compares every stack bit-for-bit against the direct reference.
Single-matrix workloads are audited as one-scenario ensembles, so the
same report covers all families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import convert_for_kernel
from repro.dist.evaluator import ShardedEvaluator
from repro.dist.pool import DevicePool
from repro.kernels.dispatch import make_kernel
from repro.obs import artifact
from repro.serve.ensemble import (
    EnsembleResult,
    ScenarioEnsembleRequest,
    scenario_plan_id,
)
from repro.serve.request import Rejected, ServeError
from repro.serve.scheduler import BatchingPolicy
from repro.serve.service import DoseEvaluationService, ServiceConfig
from repro.sparse.csr import CSRMatrix
from repro.util.rng import make_rng, stable_seed
from repro.workloads.registry import generate, get_workload, scenario_matrices

#: shard counts the acceptance audit sweeps.
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class EnsembleAuditReport:
    """Outcome of one audit: which paths matched the reference stack."""

    workload: str
    preset: str
    precision: str
    n_scenarios: int
    n_rows: int
    n_cols: int
    shard_counts: Tuple[int, ...]
    #: sha256 of the reference stack (the one true answer's identity).
    stack_sha256: str
    #: shard count -> stack bitwise equal to the direct reference.
    shards_bitwise: Dict[int, bool] = field(default_factory=dict)
    #: serve pass name -> stack bitwise equal to the direct reference.
    serve_bitwise: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_bitwise(self) -> bool:
        return all(self.shards_bitwise.values()) and all(
            self.serve_bitwise.values()
        )


def audit_weights(workload: str, seed: int, n_cols: int) -> np.ndarray:
    """The audit's deterministic weight vector (strictly positive)."""
    rng = make_rng(stable_seed("workload-audit", workload, seed))
    return 0.5 + rng.random(n_cols)


def _direct_stack(
    matrices: Sequence[CSRMatrix], precision: str, weights: np.ndarray
) -> np.ndarray:
    """Reference: stand-alone kernel evaluation per scenario, stacked."""
    kernel = make_kernel(precision)
    doses = []
    for matrix in matrices:
        converted = convert_for_kernel(matrix, precision)
        doses.append(kernel.run(converted, weights).y)
    return np.stack(doses)


def _sharded_stack(
    matrices: Sequence[CSRMatrix],
    precision: str,
    weights: np.ndarray,
    n_shards: int,
    device_name: str,
) -> np.ndarray:
    """The dist path: every scenario through a ``ShardedEvaluator``."""
    kernel = make_kernel(precision)
    doses = []
    for matrix in matrices:
        converted = convert_for_kernel(matrix, precision)
        evaluator = ShardedEvaluator(
            converted,
            kernel,
            n_shards,
            pool=DevicePool.of(n_shards, device_name),
        )
        doses.append(evaluator.evaluate(weights).doses)
    return np.stack(doses)


def _serve_stack(
    matrices: Sequence[CSRMatrix],
    precision: str,
    weights: np.ndarray,
    config: ServiceConfig,
    submit_order: Optional[Sequence[int]],
    plan_id: str = "audit",
) -> np.ndarray:
    """The serve path: one ensemble request through a live service."""
    service = DoseEvaluationService(config)
    for index, matrix in enumerate(matrices):
        service.plans.register(
            scenario_plan_id(plan_id, index), matrix, source="workload"
        )
    with service:
        outcome = service.evaluate_ensemble(
            ScenarioEnsembleRequest(
                request_id="audit-r0",
                plan_id=plan_id,
                weights=weights,
                precision=precision,
            ),
            submit_order=submit_order,
        )
    if isinstance(outcome, Rejected):
        raise ServeError(
            f"audit ensemble request rejected: {outcome.reason.value} "
            f"({outcome.detail})"
        )
    assert isinstance(outcome, EnsembleResult)
    return outcome.doses


def audit_workload(
    name: str,
    seed: int = 0,
    preset: str = "tiny",
    precision: str = "half_double",
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    device_name: str = "A100",
    product: Any = None,
) -> EnsembleAuditReport:
    """Prove the workload's dose stack identical across execution paths.

    ``product`` may pass a pre-generated workload (the CLI reuses one
    generation for audit + bench); otherwise the registry regenerates it
    from ``(name, seed, preset)``.
    """
    get_workload(name)  # fail fast on unknown names
    if product is None:
        product = generate(name, seed=seed, preset=preset)
    matrices = [m for _, m in scenario_matrices(product)]
    n_rows, n_cols = matrices[0].shape
    weights = audit_weights(name, seed, n_cols)

    reference = _direct_stack(matrices, precision, weights)

    shards_bitwise: Dict[int, bool] = {}
    for n_shards in shard_counts:
        stack = _sharded_stack(
            matrices, precision, weights, n_shards, device_name
        )
        shards_bitwise[int(n_shards)] = bool(
            np.array_equal(stack, reference)
        )

    # Two deliberately different serve configurations: no coalescing on
    # one worker vs. wide batching on three workers with the scenario
    # submission order reversed — the merge must not notice.
    serve_passes = {
        "serial_1worker": (
            ServiceConfig(
                n_workers=1,
                batching=BatchingPolicy(max_batch_size=1, max_wait_s=0.0),
            ),
            None,
        ),
        "batched_3workers_reversed": (
            ServiceConfig(
                n_workers=3,
                batching=BatchingPolicy(max_batch_size=8, max_wait_s=0.004),
            ),
            list(reversed(range(len(matrices)))),
        ),
    }
    serve_bitwise: Dict[str, bool] = {}
    for pass_name, (config, submit_order) in serve_passes.items():
        stack = _serve_stack(
            matrices, precision, weights, config, submit_order
        )
        serve_bitwise[pass_name] = bool(np.array_equal(stack, reference))

    report = EnsembleAuditReport(
        workload=name,
        preset=preset,
        precision=precision,
        n_scenarios=len(matrices),
        n_rows=n_rows,
        n_cols=n_cols,
        shard_counts=tuple(int(n) for n in shard_counts),
        stack_sha256=artifact.dose_sha256(reference),
        shards_bitwise=shards_bitwise,
        serve_bitwise=serve_bitwise,
    )
    if artifact.enabled():
        artifact.record(
            "ensemble_audit",
            workload=name,
            preset=preset,
            precision=precision,
            n_scenarios=report.n_scenarios,
            shard_counts=list(report.shard_counts),
            stack_sha256=report.stack_sha256,
            shards_bitwise={
                str(k): v for k, v in report.shards_bitwise.items()
            },
            serve_bitwise=dict(report.serve_bitwise),
            all_bitwise=report.all_bitwise,
        )
    return report
