"""Workload families: typed generators for every sparsity structure.

``repro.workloads`` is the single entry point for deposition-matrix
construction (analyzer rule RA109 flags construction anywhere outside
this package and the legacy ``dose/`` builders it wraps).  Importing the
package registers the four built-in families:

``pbs``
    the paper's proton pencil-beam-scanning cases — the historical
    default, now named.
``vmat``
    aperture matrices whose column structure follows dynamic-MLC leaf
    sequences (Tian et al.).
``photon_fpb``
    photon finite-pencil-beam matrices with dense banded rows
    (Gu et al.).
``robust_ensemble``
    setup/range scenario ensembles sharing one spot grid, evaluated as
    a single multi-matrix request.

Each registration carries the family's row-cost model (registered with
:mod:`repro.sparse.partition`), its served value dtype (from which the
traffic contract derives per-workload DRAM coefficients), and a cheap
structure-faithful traffic probe.
"""

from __future__ import annotations

from repro.sparse.partition import PBS_COST_MODEL, RowCostModel
from repro.workloads.audit import EnsembleAuditReport, audit_workload
from repro.workloads.ensemble import (
    Scenario,
    ScenarioEnsemble,
    generate_robust_ensemble,
)
from repro.workloads.pbs import PBSWorkload, generate_pbs
from repro.workloads.photon_fpb import (
    PhotonDepthCurve,
    PhotonFPBWorkload,
    generate_photon_fpb,
)
from repro.workloads.registry import (
    WORKLOAD_PRESETS,
    WorkloadError,
    WorkloadSpec,
    generate,
    get_workload,
    register_workload,
    scenario_matrices,
    structure_stats,
    workload_names,
)
from repro.workloads.vmat import VMATWorkload, generate_vmat

#: VMAT apertures make many short contiguous runs: fixed per-row work
#: dominates the stream term, so the row overhead is priced above PBS.
VMAT_COST_MODEL = RowCostModel(
    name="vmat",
    nnz_cost=6.0,  # analyze: allow[cost-literal] -- half value + int32 index
    row_cost=320.0,  # analyze: allow[cost-literal] -- short rows: overhead-dominated
    description="VMAT dynamic-MLC apertures (short contiguous runs)",
)

#: photon FPB rows are long and dense and the family is served in single
#: precision: the per-element stream is 4 B value + 4 B index and the
#: fixed per-row term amortizes away.
PHOTON_FPB_COST_MODEL = RowCostModel(
    name="photon_fpb",
    nnz_cost=8.0,  # analyze: allow[cost-literal] -- float32 value + int32 index
    row_cost=96.0,  # analyze: allow[cost-literal] -- dense rows: stream-dominated
    description="photon finite pencil beam (dense banded rows)",
)

#: each ensemble scenario is a PBS-structured matrix; the ensemble
#: inherits the PBS coefficients under its own name so per-workload
#: consumers never fall back to an implicit default.
ROBUST_ENSEMBLE_COST_MODEL = RowCostModel(
    name="robust_ensemble",
    nnz_cost=PBS_COST_MODEL.nnz_cost,
    row_cost=PBS_COST_MODEL.row_cost,
    description="robust scenario ensemble (PBS-structured scenarios)",
)


register_workload(
    WorkloadSpec(
        name="pbs",
        description="proton pencil-beam scanning (paper Table I cases)",
        generator=generate_pbs,
        cost_model=PBS_COST_MODEL,
        value_dtype="float16",
        paper="Accelerating radiation therapy dose calculation (source paper)",
        traffic_probe=None,  # the analyzer's own PBS probe covers RT402
    )
)

register_workload(
    WorkloadSpec(
        name="vmat",
        description="VMAT apertures following dynamic-MLC leaf sequences",
        generator=generate_vmat,
        cost_model=VMAT_COST_MODEL,
        value_dtype="float16",
        paper="Tian et al., Multi-GPU VMAT treatment plan optimization",
        traffic_probe=lambda: generate_vmat(seed=0, preset="probe").matrix,
    )
)

register_workload(
    WorkloadSpec(
        name="photon_fpb",
        description="photon finite pencil beam with dense banded rows",
        generator=generate_photon_fpb,
        cost_model=PHOTON_FPB_COST_MODEL,
        value_dtype="float32",
        paper="Gu et al., GPU ultra-fast dose calculation, finite pencil beam",
        traffic_probe=lambda: generate_photon_fpb(
            seed=0, preset="probe"
        ).matrix,
    )
)

register_workload(
    WorkloadSpec(
        name="robust_ensemble",
        description="setup/range scenario ensemble sharing one spot grid",
        generator=generate_robust_ensemble,
        cost_model=ROBUST_ENSEMBLE_COST_MODEL,
        value_dtype="float16",
        ensemble=True,
        paper="robust planning ensembles (multi-scenario d_s = A_s w)",
        traffic_probe=lambda: generate_robust_ensemble(
            seed=0, preset="probe"
        ).matrix,
    )
)

__all__ = [
    "EnsembleAuditReport",
    "PBSWorkload",
    "PhotonDepthCurve",
    "PhotonFPBWorkload",
    "Scenario",
    "ScenarioEnsemble",
    "VMATWorkload",
    "WORKLOAD_PRESETS",
    "WorkloadError",
    "WorkloadSpec",
    "audit_workload",
    "generate",
    "generate_photon_fpb",
    "generate_pbs",
    "generate_robust_ensemble",
    "generate_vmat",
    "get_workload",
    "register_workload",
    "scenario_matrices",
    "structure_stats",
    "workload_names",
]
