"""Proton PBS as a registered workload: the historical default, named.

The six paper cases were the only sparsity family the stack knew before
the registry existed.  Wrapping them as a :class:`WorkloadSpec` makes
the old implicit default explicit — same generator, same cost model,
same traffic constants, but now *named* so every per-workload code path
(partitioner, tuner, traffic contract, serve loadtest) treats PBS as
one family among several rather than the assumed universe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError

#: the paper case each preset maps to; paper Table I structure at two
#: scales (the "probe"/"tiny" presets share the tiny case build).
_PRESET_CASE = {
    "probe": ("Prostate 1", "tiny"),
    "tiny": ("Liver 1", "tiny"),
    "bench": ("Liver 1", "bench"),
}


@dataclass(frozen=True)
class PBSWorkload:
    """A paper-case PBS deposition matrix under the workload interface."""

    matrix: CSRMatrix
    case: str
    preset: str

    @property
    def name(self) -> str:
        return "pbs"


def generate_pbs(seed: int = 0, preset: str = "tiny") -> PBSWorkload:
    """The paper's PBS case matrices under the generator interface.

    ``seed`` is accepted for interface uniformity but ignored: the case
    matrices are already deterministic per ``(case, preset)`` — their RNG
    is derived from the phantom and beam names (see
    :func:`repro.plans.cases.build_case_matrix`), which is exactly the
    seed-stability the registry requires.
    """
    del seed
    if preset not in _PRESET_CASE:
        raise ShapeError(
            f"unknown pbs preset {preset!r}; expected one of "
            f"{tuple(_PRESET_CASE)}"
        )
    case, case_preset = _PRESET_CASE[preset]
    from repro.plans.cases import build_case_matrix

    dep = build_case_matrix(case, case_preset)
    return PBSWorkload(matrix=dep.matrix, case=case, preset=preset)
