"""Robust-planning scenario ensembles: perturbed matrices, one spot grid.

Robust optimization evaluates a plan under explicit error scenarios —
setup (patient position) shifts and proton range over/undershoot — by
computing ``d_s = A_s · w`` for every scenario matrix ``A_s`` with the
*same* weight vector.  The defining structural property is the **shared
spot grid**: every scenario is generated from one
:class:`~repro.dose.spots.SpotMap`, so all ``A_s`` share the column
space and one request fans out into S independent SpMVs whose results
stack into an ``(S, n_voxels)`` dose block.

Scenario order is part of the data model: ``scenarios[0]`` is the
nominal geometry, and the ensemble dose stack is **defined** as the
scenario-index-ordered stack — the serve layer's merge invariant (and
the ensemble bitwise audit) is anchored to these explicit indices,
never to completion or container order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.dose.beam import Beam
from repro.dose.deposition import build_deposition_matrix
from repro.dose.pencilbeam import compute_beam_geometry
from repro.dose.phantom import Phantom, build_liver_phantom
from repro.dose.spots import SpotMap, generate_spot_map
from repro.sparse.csr import CSRMatrix
from repro.util.errors import ShapeError
from repro.util.rng import make_rng, stable_seed

#: (phantom shape, phantom spacing mm, spot spacing mm, layer spacing mm,
#:  number of scenarios).
_PRESETS: Dict[str, Tuple[Tuple[int, int, int], Tuple[float, float, float],
                          float, float, int]] = {
    "probe": ((12, 12, 8), (16.0, 16.0, 20.0), 18.0, 22.0, 3),
    "tiny": ((16, 16, 10), (14.0, 14.0, 18.0), 14.0, 18.0, 5),
    "bench": ((22, 22, 15), (12.0, 12.0, 16.0), 12.0, 16.0, 9),
}

#: setup-error magnitude (one standard scenario shift) in mm.
SETUP_SHIFT_MM = 4.0

#: range-error magnitude as a relative density scale.
RANGE_SCALE_PCT = 0.03


@dataclass(frozen=True)
class Scenario:
    """One perturbed geometry: the nominal plan seen under one error."""

    index: int
    name: str
    setup_shift_mm: Tuple[float, float, float]
    range_scale: float
    matrix: CSRMatrix

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ShapeError(f"scenario index must be >= 0, got {self.index}")


@dataclass(frozen=True)
class ScenarioEnsemble:
    """An ordered ensemble of scenario matrices sharing one spot grid.

    ``scenarios`` is ordered by explicit scenario index (``scenarios[0]``
    nominal); every matrix has identical shape because all scenarios are
    built from the same :class:`~repro.dose.spots.SpotMap` over the same
    voxel grid — the invariant that makes one weight vector valid for
    every scenario and the ``(S, n_voxels)`` dose stack well-defined.
    """

    name: str
    scenarios: Tuple[Scenario, ...]
    spot_map: SpotMap

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ShapeError("ensemble must hold at least one scenario")
        shape = self.scenarios[0].matrix.shape
        for k, sc in enumerate(self.scenarios):
            if sc.index != k:
                raise ShapeError(
                    f"scenario at position {k} carries index {sc.index}; "
                    "scenarios must be ordered by explicit index"
                )
            if sc.matrix.shape != shape:
                raise ShapeError(
                    f"scenario {sc.name!r} shape {sc.matrix.shape} differs "
                    f"from nominal {shape}; scenarios must share the grid"
                )
        if shape[1] != self.spot_map.n_spots:
            raise ShapeError(
                f"{shape[1]} columns but {self.spot_map.n_spots} spots in "
                "the shared spot map"
            )

    @property
    def matrix(self) -> CSRMatrix:
        """The nominal-scenario matrix (single-matrix workload view)."""
        return self.scenarios[0].matrix

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def n_spots(self) -> int:
        return self.spot_map.n_spots


def _scenario_ladder(n_scenarios: int) -> Tuple[Tuple[str, Tuple[float, float, float], float], ...]:
    """Deterministic (name, setup shift uvz, range scale) per scenario.

    Scenario 0 is nominal; the rest cycle ±u, ±v setup shifts and ±range
    scales, doubling magnitude each full cycle — the standard 2-axis
    setup + range robustness ladder.
    """
    ladder = [("nominal", (0.0, 0.0, 0.0), 1.0)]
    kinds = ("setup+u", "setup-u", "setup+v", "setup-v", "range+", "range-")
    for s in range(1, n_scenarios):
        kind = kinds[(s - 1) % len(kinds)]
        level = (s - 1) // len(kinds) + 1
        shift = SETUP_SHIFT_MM * level
        scale = RANGE_SCALE_PCT * level
        if kind == "setup+u":
            ladder.append((f"{kind}{level}", (shift, 0.0, 0.0), 1.0))
        elif kind == "setup-u":
            ladder.append((f"{kind}{level}", (-shift, 0.0, 0.0), 1.0))
        elif kind == "setup+v":
            ladder.append((f"{kind}{level}", (0.0, shift, 0.0), 1.0))
        elif kind == "setup-v":
            ladder.append((f"{kind}{level}", (0.0, -shift, 0.0), 1.0))
        elif kind == "range+":
            ladder.append((f"{kind}{level}", (0.0, 0.0, 0.0), 1.0 + scale))
        else:
            ladder.append((f"{kind}{level}", (0.0, 0.0, 0.0), 1.0 - scale))
    return tuple(ladder)


def generate_robust_ensemble(
    seed: int = 0, preset: str = "tiny"
) -> ScenarioEnsemble:
    """Generate a seed-stable setup/range scenario ensemble.

    The nominal phantom, beam and **spot map are built once**; each
    scenario rebuilds only what its error actually perturbs — a setup
    shift moves the beam isocenter in the BEV frame (recomputing the
    geometry cache), a range error scales the density volume (recomputing
    radiological depth) — and every scenario deposits onto the *shared*
    spot map, so column ``j`` means the same physical spot in every
    ``A_s``.
    """
    if preset not in _PRESETS:
        raise ShapeError(
            f"unknown robust_ensemble preset {preset!r}; expected one of "
            f"{tuple(_PRESETS)}"
        )
    shape, spacing, spot_spacing, layer_spacing, n_scenarios = _PRESETS[preset]
    phantom = build_liver_phantom(shape, spacing)
    idx = phantom.target.voxel_indices
    centers = phantom.grid.voxel_centers()[idx]
    iso = np.asarray([float(c) for c in centers.mean(axis=0)])
    beam = Beam("robust-nominal", gantry_angle_deg=40.0,
                isocenter_mm=tuple(iso))
    geometry = compute_beam_geometry(phantom, beam)
    spot_map = generate_spot_map(
        phantom,
        beam,
        geometry,
        spot_spacing_mm=spot_spacing,
        layer_spacing_mm=layer_spacing,
    )

    u_axis, v_axis = beam.bev_axes
    scenarios = []
    for index, (sc_name, shift_uvz, range_scale) in enumerate(
        _scenario_ladder(n_scenarios)
    ):
        sc_phantom = phantom
        sc_beam = beam
        sc_geometry = geometry
        if range_scale != 1.0:
            sc_phantom = Phantom(
                name=f"{phantom.name}-{sc_name}",
                grid=phantom.grid,
                density=phantom.density * range_scale,
                structures=phantom.structures,
            )
            sc_geometry = compute_beam_geometry(sc_phantom, beam)
        elif shift_uvz != (0.0, 0.0, 0.0):
            shifted = iso + shift_uvz[0] * u_axis + shift_uvz[1] * v_axis
            sc_beam = Beam(
                f"robust-{sc_name}",
                gantry_angle_deg=beam.gantry_angle_deg,
                isocenter_mm=tuple(float(c) for c in shifted),
            )
            sc_geometry = compute_beam_geometry(phantom, sc_beam)
        dep = build_deposition_matrix(
            sc_phantom,
            sc_beam,
            rng=make_rng(
                stable_seed("workload", "robust_ensemble", seed, preset, index)
            ),
            geometry=sc_geometry,
            spot_map=spot_map,
        )
        scenarios.append(
            Scenario(
                index=index,
                name=sc_name,
                setup_shift_mm=shift_uvz,
                range_scale=range_scale,
                matrix=dep.matrix,
            )
        )
    return ScenarioEnsemble(
        name="robust_ensemble",
        scenarios=tuple(scenarios),
        spot_map=spot_map,
    )
