"""Typed registry of deposition-matrix workload families.

Everything the stack served before this module existed was one sparsity
family: proton pencil-beam-scanning (PBS) matrices.  The registry makes
"workload" a first-class, typed concept: a :class:`WorkloadSpec` names a
deterministic generator, the row-cost model its partitioner should use,
the value dtype its traffic coefficients derive from, and a cheap
structure-faithful probe for the analyzer's traffic contract.  Every new
sparsity family enters the system here (rule RA109 flags deposition-
matrix construction anywhere else), so the harness, partitioner,
autotuner, traffic model and serve layer all see the family through one
declared interface.

Generators are **seed-stable**: the same ``(seed, preset)`` regenerates
a bitwise-identical matrix, which is what makes the serve loadtest's
post-hoc bitwise audit and the ensemble audit possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import RowCostModel, register_cost_model
from repro.util.errors import ReproError


class WorkloadError(ReproError):
    """An invalid interaction with the workload registry."""


#: generation presets every generator understands.
WORKLOAD_PRESETS: Tuple[str, ...] = ("probe", "tiny", "bench")


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload family.

    ``generator(seed=..., preset=...)`` returns the family's product —
    a single-matrix workload exposing ``.matrix`` (float32 CSR master)
    or a :class:`~repro.workloads.ensemble.ScenarioEnsemble` exposing
    ``.scenarios``.  ``cost_model`` is registered with
    :mod:`repro.sparse.partition` so the ``cost`` shard policy prices
    this family's rows with its own coefficients instead of the PBS
    defaults.  ``value_dtype`` is the dtype the family's matrices are
    *served* in; the analyzer derives the family's DRAM-traffic
    coefficients from it instead of silently assuming the PBS constants.
    ``traffic_probe`` builds a small structure-faithful matrix for the
    RT402 counter-vs-model check (cheap enough for every CI analyze
    run).
    """

    name: str
    description: str
    generator: Callable[..., Any]
    cost_model: RowCostModel
    #: dtype the family's served matrices store values in.
    value_dtype: str = "float32"
    #: True when the generator returns a :class:`ScenarioEnsemble`.
    ensemble: bool = False
    #: the related work this family reproduces (PAPERS.md reference).
    paper: str = ""
    traffic_probe: Optional[Callable[[], CSRMatrix]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload name must be non-empty")
        try:
            np.dtype(self.value_dtype)
        except TypeError:
            raise WorkloadError(
                f"invalid value_dtype {self.value_dtype!r} for workload "
                f"{self.name!r}"
            ) from None


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec,
                      replace: bool = False) -> WorkloadSpec:
    """Register a workload family (and its row-cost model)."""
    if spec.name in _REGISTRY and not replace:
        raise WorkloadError(
            f"workload {spec.name!r} is already registered; pass "
            "replace=True to overwrite it deliberately"
        )
    register_cost_model(spec.cost_model, replace=replace)
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a registered workload family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"no workload named {name!r}; registered: {workload_names()}"
        ) from None


def workload_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def generate(name: str, seed: int = 0, preset: str = "tiny") -> Any:
    """Generate a workload product deterministically.

    Same ``(name, seed, preset)`` -> bitwise-identical product; the
    registry only dispatches, determinism is each generator's contract.
    """
    if preset not in WORKLOAD_PRESETS:
        raise WorkloadError(
            f"unknown preset {preset!r}; expected one of {WORKLOAD_PRESETS}"
        )
    return get_workload(name).generator(seed=seed, preset=preset)


def scenario_matrices(product: Any) -> Tuple[Tuple[str, CSRMatrix], ...]:
    """Ordered ``(scenario_name, matrix)`` pairs of a workload product.

    Single-matrix workloads yield one ``("nominal", matrix)`` pair;
    ensembles yield every scenario in **explicit scenario-index order**
    — the order that defines how ensemble dose stacks merge.
    """
    scenarios = getattr(product, "scenarios", None)
    if scenarios is not None:
        return tuple((s.name, s.matrix) for s in scenarios)
    return (("nominal", product.matrix),)


def structure_stats(matrix: CSRMatrix) -> Dict[str, Any]:
    """Structural statistics of one matrix (the bench/report vocabulary)."""
    lengths = np.diff(matrix.indptr)
    nonempty = lengths[lengths > 0]
    if matrix.nnz:
        first = matrix.indices[matrix.indptr[:-1][lengths > 0]]
        last = matrix.indices[matrix.indptr[1:][lengths > 0] - 1]
        bandwidth = int(np.max(last.astype(np.int64) - first))
    else:
        bandwidth = 0
    # Imported here, not at module scope: repro.tune consumes dist/,
    # which is a heavier dependency than the registry needs at import.
    from repro.tune.config import structure_fingerprint

    return {
        "n_rows": matrix.n_rows,
        "n_cols": matrix.n_cols,
        "nnz": matrix.nnz,
        "density": matrix.nnz / float(matrix.n_rows * matrix.n_cols),
        "value_dtype": str(matrix.data.dtype),
        "empty_row_fraction": float(np.mean(lengths == 0)),
        "mean_row_length": float(nonempty.mean()) if nonempty.size else 0.0,
        "max_row_length": int(lengths.max(initial=0)),
        "p95_row_length": (
            float(np.percentile(nonempty, 95)) if nonempty.size else 0.0
        ),
        "bandwidth": bandwidth,
        "fingerprint": structure_fingerprint(matrix),
    }
