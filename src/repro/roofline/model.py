"""The roofline model (Williams, Waterman & Patterson, CACM 2009).

Attainable performance is ``min(peak_flops, OI * peak_bandwidth)``; a
kernel is memory bound left of the ridge point and compute bound right of
it.  SpMV's OI (~0.2-0.35 flop/byte here) sits far left of any GPU ridge,
which is the paper's framing for why bandwidth utilization — not FLOP
throughput — decides the contest between kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One measured kernel placed on the roofline plot."""

    label: str
    operational_intensity: float
    gflops: float

    def attainable_fraction(self, roof: "Roofline") -> float:
        """Achieved / attainable at this OI (1.0 == touching the roof)."""
        attainable = roof.attainable_gflops(self.operational_intensity)
        return self.gflops / attainable if attainable else 0.0


@dataclass(frozen=True)
class Roofline:
    """A device's roofline: bandwidth slope + compute ceiling."""

    device_name: str
    peak_gflops: float
    peak_bandwidth_gbs: float

    @staticmethod
    def for_device(device: DeviceSpec, precision_bytes: int = 8) -> "Roofline":
        """Build from a device spec (FP64 ceiling by default)."""
        return Roofline(
            device_name=device.name,
            peak_gflops=device.peak_flops(precision_bytes) / 1e9,
            peak_bandwidth_gbs=device.peak_bw / 1e9,
        )

    @property
    def ridge_point(self) -> float:
        """OI (flop/byte) where the bandwidth slope meets the ceiling."""
        return self.peak_gflops / self.peak_bandwidth_gbs

    def attainable_gflops(self, operational_intensity: float) -> float:
        """Roof height at a given OI."""
        if operational_intensity < 0:
            raise ValueError("operational intensity must be non-negative")
        return min(
            self.peak_gflops, operational_intensity * self.peak_bandwidth_gbs
        )

    def is_memory_bound(self, operational_intensity: float) -> bool:
        """True left of the ridge point."""
        return operational_intensity < self.ridge_point

    def curve(
        self, oi_range: Sequence[float] = (2**-6, 2**6), n_points: int = 64
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(OI, attainable GFLOP/s) samples for plotting/reporting."""
        ois = np.geomspace(oi_range[0], oi_range[1], n_points)
        return ois, np.minimum(self.peak_gflops, ois * self.peak_bandwidth_gbs)


def ascii_roofline(
    roof: Roofline, points: List[RooflinePoint], width: int = 68, height: int = 18
) -> str:
    """Render a log-log roofline chart as ASCII art for terminal reports."""
    if not points:
        return f"(no points) roofline of {roof.device_name}"
    oi_vals = [p.operational_intensity for p in points]
    lo = min(min(oi_vals) / 4, roof.ridge_point / 8)
    hi = max(max(oi_vals) * 4, roof.ridge_point * 4)
    gf_hi = roof.peak_gflops * 2
    gf_lo = min(p.gflops for p in points) / 8

    grid = [[" "] * width for _ in range(height)]

    def to_xy(oi: float, gf: float) -> "tuple[int, int]":
        x = int((np.log(oi) - np.log(lo)) / (np.log(hi) - np.log(lo)) * (width - 1))
        y = int(
            (np.log(gf) - np.log(gf_lo)) / (np.log(gf_hi) - np.log(gf_lo)) * (height - 1)
        )
        return min(max(x, 0), width - 1), min(max(y, 0), height - 1)

    for oi in np.geomspace(lo, hi, width * 2):
        x, y = to_xy(oi, roof.attainable_gflops(oi))
        grid[height - 1 - y][x] = "-" if oi >= roof.ridge_point else "/"
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend = []
    for i, p in enumerate(points):
        m = markers[i % len(markers)]
        x, y = to_xy(max(p.operational_intensity, lo), max(p.gflops, gf_lo))
        grid[height - 1 - y][x] = m
        legend.append(
            f"  {m}: {p.label}  OI={p.operational_intensity:.3f} "
            f"{p.gflops:.0f} GFLOP/s ({100 * p.attainable_fraction(roof):.0f}% of roof)"
        )
    lines = [
        f"Roofline {roof.device_name}: peak {roof.peak_gflops:.0f} GFLOP/s, "
        f"{roof.peak_bandwidth_gbs:.0f} GB/s, ridge at {roof.ridge_point:.2f} F/B"
    ]
    lines += ["".join(row) for row in grid]
    lines += legend
    return "\n".join(lines)
