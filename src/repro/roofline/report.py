"""Textual roofline reports — the Figure 3 regeneration.

Combines the analytic traffic model (OI upper bounds), the simulator's
measured counters (the ``dram_bytes`` analogue of Nsight) and the device
roofline into the comparison the paper's Figure 3 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpu.device import DeviceSpec
from repro.kernels.base import KernelResult
from repro.precision.types import MixedPrecision
from repro.roofline.analytic import spmv_traffic_model
from repro.roofline.model import Roofline, RooflinePoint, ascii_roofline
from repro.util.tables import Table


@dataclass(frozen=True)
class RooflineEntry:
    """One kernel x case placement with measured and analytic OI."""

    kernel: str
    case: str
    measured_oi: float
    analytic_oi: float
    gflops: float
    bandwidth_fraction: float

    @property
    def oi_model_error(self) -> float:
        """Relative gap between measured OI and the analytic upper bound.

        The paper notes these nearly coincide (0.332 analytic vs the
        measured value for liver beam 1) because the nnz term dominates
        and the input vector fits in L2.
        """
        if self.analytic_oi == 0:
            return 0.0
        return abs(self.measured_oi - self.analytic_oi) / self.analytic_oi


def roofline_entry(
    case_name: str,
    result: KernelResult,
    precision: MixedPrecision,
    paper_nnz: float,
    paper_rows: float,
    paper_cols: float,
) -> RooflineEntry:
    """Build one entry, computing the analytic OI at paper scale."""
    analytic = spmv_traffic_model(paper_nnz, paper_rows, paper_cols, precision)
    return RooflineEntry(
        kernel=result.kernel,
        case=case_name,
        measured_oi=result.counters.operational_intensity,
        analytic_oi=analytic.operational_intensity,
        gflops=result.gflops,
        bandwidth_fraction=result.timing.bandwidth_fraction(result.device),
    )


def roofline_table(entries: List[RooflineEntry]) -> Table:
    """Tabulate entries the way Figure 3's caption reads."""
    table = Table(
        [
            "kernel",
            "case",
            "OI measured",
            "OI analytic",
            "GFLOP/s",
            "BW frac",
            "OI model err",
        ],
        title="Roofline placement (Figure 3)",
    )
    for e in entries:
        table.add_row(
            [
                e.kernel,
                e.case,
                e.measured_oi,
                e.analytic_oi,
                e.gflops,
                f"{100 * e.bandwidth_fraction:.0f}%",
                f"{100 * e.oi_model_error:.1f}%",
            ]
        )
    return table


def roofline_chart(
    device: DeviceSpec, entries: List[RooflineEntry], precision_bytes: int = 8
) -> str:
    """ASCII roofline with one marker per entry."""
    roof = Roofline.for_device(device, precision_bytes)
    points = [
        RooflinePoint(
            label=f"{e.kernel}/{e.case}",
            operational_intensity=e.measured_oi,
            gflops=e.gflops,
        )
        for e in entries
    ]
    return ascii_roofline(roof, points)
