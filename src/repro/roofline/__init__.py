"""Roofline analysis: device rooflines, the paper's analytic traffic model,
and Figure-3-style reports."""

from repro.roofline.analytic import (
    TrafficEstimate,
    column_index_traffic_share,
    spmv_traffic_model,
)
from repro.roofline.model import (
    Roofline,
    RooflinePoint,
    ascii_roofline,
)
from repro.roofline.report import (
    RooflineEntry,
    roofline_chart,
    roofline_entry,
    roofline_table,
)

__all__ = [
    "TrafficEstimate",
    "column_index_traffic_share",
    "spmv_traffic_model",
    "Roofline",
    "RooflinePoint",
    "ascii_roofline",
    "RooflineEntry",
    "roofline_chart",
    "roofline_entry",
    "roofline_table",
]
