"""The paper's analytic memory-traffic model for CSR SpMV (Section V).

Under an infinite-cache assumption every byte is read from DRAM exactly
once, so for one SpMV:

* per non-zero: one matrix value (``value_bytes``) + one column index
  (``index_bytes``);
* per row: one ``row_ptr`` entry (4 bytes; the end pointer of row ``i`` is
  the start pointer of row ``i+1``) + one output-vector write
  (``vector_bytes``);
* per column: one input-vector read (``vector_bytes``).

For the Half/Double configuration this is the paper's
``6*nnz + 12*nr + 8*nc`` and yields the operational-intensity upper bound
0.332 flop/byte for liver beam 1 — which the paper verifies against the
Nsight-measured value, as our tests verify it against the simulator's
counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.precision.types import HALF_DOUBLE, MixedPrecision


@dataclass(frozen=True)
class TrafficEstimate:
    """Analytic traffic and operational intensity for one SpMV."""

    nnz: float
    n_rows: float
    n_cols: float
    bytes_per_nnz: float
    bytes_per_row: float
    bytes_per_col: float

    @property
    def total_bytes(self) -> float:
        """Minimum DRAM traffic under the infinite-cache assumption."""
        return (
            self.bytes_per_nnz * self.nnz
            + self.bytes_per_row * self.n_rows
            + self.bytes_per_col * self.n_cols
        )

    @property
    def flops(self) -> float:
        """2 flops per stored non-zero."""
        return 2.0 * self.nnz

    @property
    def operational_intensity(self) -> float:
        """Upper bound on flops per DRAM byte."""
        total = self.total_bytes
        return self.flops / total if total else 0.0


def spmv_traffic_model(
    nnz: float,
    n_rows: float,
    n_cols: float,
    precision: MixedPrecision = HALF_DOUBLE,
) -> TrafficEstimate:
    """Instantiate the paper's traffic model for a precision configuration.

    >>> t = spmv_traffic_model(1.48e9, 2.97e6, 6.80e4)   # liver beam 1
    >>> round(t.operational_intensity, 3)
    0.332
    """
    return TrafficEstimate(
        nnz=float(nnz),
        n_rows=float(n_rows),
        n_cols=float(n_cols),
        bytes_per_nnz=float(precision.matrix.nbytes + precision.index_bytes),
        bytes_per_row=4.0 + float(precision.vector.nbytes),
        bytes_per_col=float(precision.vector.nbytes),
    )


def column_index_traffic_share(
    nnz: float, n_rows: float, n_cols: float,
    precision: MixedPrecision = HALF_DOUBLE,
) -> float:
    """Fraction of total traffic spent on column indices.

    The paper's Section V observation: with 4-byte indices the ``4*nnz``
    term is a large share of total traffic, motivating 16-bit indices as
    future work (implemented here as the ``half_double_u16`` kernel).
    """
    estimate = spmv_traffic_model(nnz, n_rows, n_cols, precision)
    return precision.index_bytes * estimate.nnz / estimate.total_bytes
