"""The paper's evaluation cases (Table I) at configurable scales."""

from repro.plans.cases import (
    LIVER_GANTRY_DEG,
    PAPER_TABLE1,
    PROSTATE_GANTRY_DEG,
    CaseDefinition,
    PaperScale,
    build_all_cases,
    build_case_matrix,
    case_names,
    get_case,
    scale_factors,
)

__all__ = [
    "LIVER_GANTRY_DEG",
    "PAPER_TABLE1",
    "PROSTATE_GANTRY_DEG",
    "CaseDefinition",
    "PaperScale",
    "build_all_cases",
    "build_case_matrix",
    "case_names",
    "get_case",
    "scale_factors",
]
