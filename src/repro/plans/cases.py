"""The paper's six evaluation cases: liver beams 1-4, prostate beams 1-2.

Each case couples a phantom, one beam of its arrangement (four liver beams
from different angles; two parallel-opposed prostate beams) and generation
parameters, plus the *paper-scale* Table I metadata used to extrapolate
bench-scale measurements to full size.

Scale presets
-------------
``tiny``       — unit tests: ~3-8k voxels, seconds to build everything.
``bench``      — default benches: ~1/50 of the paper's voxel counts,
                 preserving the row/column skew direction, the non-zero
                 ratio and the empty-row fraction.
``structure``  — Figure 2 benches: fewer rows but many more columns, so
                 the per-row non-zero counts approach the paper's scale
                 and the <32-nnz warp statistics are meaningful.

Matrices are deterministic per (case, preset) and cached on disk under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro-rtdose``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dose.beam import Beam
from repro.dose.deposition import (
    DepositionConfig,
    DoseDepositionMatrix,
    build_deposition_matrix,
)
from repro.dose.pencilbeam import compute_beam_geometry
from repro.dose.phantom import Phantom, build_liver_phantom, build_prostate_phantom
from repro.dose.spots import generate_spot_map
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import load_csr, save_csr
from repro.util.errors import ReproError
from repro.util.rng import stable_seed


@dataclass(frozen=True)
class PaperScale:
    """Table I's full-size numbers for one beam."""

    rows: float
    cols: float
    nnz: float

    @property
    def density(self) -> float:
        return self.nnz / (self.rows * self.cols)

    @property
    def size_gb_half(self) -> float:
        """Table I size column: (2-byte value + 4-byte index) per nnz."""
        return self.nnz * 6.0 / 1e9


#: Table I, verbatim.
PAPER_TABLE1: Dict[str, PaperScale] = {
    "Liver 1": PaperScale(2.97e6, 6.80e4, 1.48e9),
    "Liver 2": PaperScale(2.97e6, 6.77e4, 1.28e9),
    "Liver 3": PaperScale(2.97e6, 6.99e4, 1.39e9),
    "Liver 4": PaperScale(2.97e6, 6.32e4, 1.84e9),
    "Prostate 1": PaperScale(1.03e6, 5.09e3, 9.50e7),
    "Prostate 2": PaperScale(1.03e6, 4.96e3, 9.51e7),
}

#: Gantry angles: liver four-field arrangement (right-sided, avoiding long
#: paths through the contralateral body) / prostate lateral opposed.
LIVER_GANTRY_DEG = {"Liver 1": 0.0, "Liver 2": 270.0, "Liver 3": 300.0, "Liver 4": 320.0}
PROSTATE_GANTRY_DEG = {"Prostate 1": 90.0, "Prostate 2": 270.0}

#: Per-beam spot-spacing tweaks reproducing Table I's column-count spread.
_LIVER_SPACING = {"Liver 1": 6.0, "Liver 2": 6.4, "Liver 3": 6.2, "Liver 4": 5.4}
_PROSTATE_SPACING = {"Prostate 1": 9.0, "Prostate 2": 9.2}

#: Per-beam dose cutoffs reproducing Table I's non-zero-ratio spread
#: (beam-angle path lengths plus RayStation's per-beam truncation levels).
_CASE_CUTOFF = {
    "Liver 1": 3.0e-3,
    "Liver 2": 2.8e-3,
    "Liver 3": 3.0e-3,
    "Liver 4": 1.2e-3,
    "Prostate 1": 1.8e-3,
    "Prostate 2": 1.7e-3,
}


@dataclass(frozen=True)
class CaseDefinition:
    """One beam case at one scale preset."""

    name: str
    site: str  # "liver" | "prostate"
    preset: str
    phantom_shape: Tuple[int, int, int]
    phantom_spacing: Tuple[float, float, float]
    spot_spacing_mm: float
    layer_spacing_mm: float
    gantry_deg: float
    paper: PaperScale

    def build_phantom(self) -> Phantom:
        """Instantiate the case's phantom at this preset's resolution."""
        if self.site == "liver":
            return build_liver_phantom(self.phantom_shape, self.phantom_spacing)
        return build_prostate_phantom(self.phantom_shape, self.phantom_spacing)


_PRESETS: Dict[str, Dict[str, Dict[str, object]]] = {
    "tiny": {
        "liver": dict(shape=(22, 22, 15), spacing=(12.0, 12.0, 16.0),
                      spot=12.0, layer=16.0),
        "prostate": dict(shape=(18, 17, 9), spacing=(14.0, 14.0, 18.0),
                         spot=18.0, layer=20.0),
    },
    "bench": {
        "liver": dict(shape=(45, 44, 30), spacing=(6.0, 6.0, 8.0),
                      spot=None, layer=8.0),
        "prostate": dict(shape=(36, 33, 18), spacing=(7.0, 7.0, 9.0),
                         spot=None, layer=12.0),
    },
    "structure": {
        "liver": dict(shape=(40, 38, 22), spacing=(6.5, 6.5, 9.0),
                      spot=2.4, layer=3.5),
        "prostate": dict(shape=(36, 33, 18), spacing=(7.0, 7.0, 9.0),
                         spot=3.0, layer=4.5),
    },
}


def case_names() -> List[str]:
    """The six beams, in Table I order."""
    return list(PAPER_TABLE1)


def get_case(name: str, preset: str = "bench") -> CaseDefinition:
    """Look up one case at a scale preset."""
    if name not in PAPER_TABLE1:
        raise ReproError(f"unknown case {name!r}; available: {case_names()}")
    if preset not in _PRESETS:
        raise ReproError(
            f"unknown preset {preset!r}; available: {sorted(_PRESETS)}"
        )
    site = "liver" if name.startswith("Liver") else "prostate"
    p = _PRESETS[preset][site]
    gantry = (LIVER_GANTRY_DEG if site == "liver" else PROSTATE_GANTRY_DEG)[name]
    base_spacing = (_LIVER_SPACING if site == "liver" else _PROSTATE_SPACING)[name]
    spot = p["spot"] if p["spot"] is not None else base_spacing
    return CaseDefinition(
        name=name,
        site=site,
        preset=preset,
        phantom_shape=tuple(p["shape"]),
        phantom_spacing=tuple(p["spacing"]),
        spot_spacing_mm=float(spot),
        layer_spacing_mm=float(p["layer"]),
        gantry_deg=gantry,
        paper=PAPER_TABLE1[name],
    )


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro-rtdose"


_MEMORY_CACHE: Dict[Tuple[str, str], DoseDepositionMatrix] = {}


def build_case_matrix(
    name: str, preset: str = "bench", use_cache: bool = True
) -> DoseDepositionMatrix:
    """Build (or load) the deposition matrix for one case.

    Results are deterministic per (case, preset); the disk cache stores
    the CSR master copy, and the memory cache keeps full provenance
    within a process.
    """
    key = (name, preset)
    if use_cache and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    case = get_case(name, preset)
    phantom = case.build_phantom()
    iso = _target_centroid(phantom)
    beam = Beam(name, gantry_angle_deg=case.gantry_deg, isocenter_mm=iso)

    fingerprint = stable_seed(
        "case-matrix-v3",
        case.phantom_shape,
        case.phantom_spacing,
        case.spot_spacing_mm,
        case.layer_spacing_mm,
        case.gantry_deg,
        _CASE_CUTOFF.get(name, 2e-3),
    ) % 16**8
    cache_path = _cache_dir() / (
        f"{name.replace(' ', '_').lower()}-{preset}-{fingerprint:08x}.npz"
    )
    geometry = None
    spot_map = None
    if use_cache and cache_path.exists():
        try:
            matrix = load_csr(cache_path)
            geometry = compute_beam_geometry(phantom, beam)
            spot_map = generate_spot_map(
                phantom, beam, geometry,
                spot_spacing_mm=case.spot_spacing_mm,
                layer_spacing_mm=case.layer_spacing_mm,
            )
            if matrix.shape == (phantom.grid.n_voxels, spot_map.n_spots):
                dep = DoseDepositionMatrix(  # analyze: allow[RA109] -- rehydrates the cached PBS build, no new construction
                    beam=beam, spot_map=spot_map, matrix=matrix,
                    half_safety_scale=1.0,
                )
                _MEMORY_CACHE[key] = dep
                return dep
        except Exception:
            pass  # stale/corrupt cache: rebuild below

    dep = build_deposition_matrix(  # analyze: allow[RA109] -- the named PBS workload's sanctioned builder
        phantom,
        beam,
        spot_spacing_mm=case.spot_spacing_mm,
        layer_spacing_mm=case.layer_spacing_mm,
        config=DepositionConfig(relative_cutoff=_CASE_CUTOFF.get(name, 2e-3)),
        geometry=geometry,
        spot_map=spot_map,
    )
    if use_cache:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            save_csr(cache_path, dep.matrix)
        except OSError:
            pass  # cache is best-effort
    _MEMORY_CACHE[key] = dep
    return dep


def build_all_cases(
    preset: str = "bench", names: Optional[List[str]] = None
) -> Dict[str, DoseDepositionMatrix]:
    """Build all (or selected) cases at one preset, in Table I order."""
    selected = names or case_names()
    return {n: build_case_matrix(n, preset) for n in selected}


def scale_factors(name: str, matrix: CSRMatrix) -> Tuple[float, float, float]:
    """(nnz, rows, cols) factors mapping bench counters to paper scale."""
    paper = PAPER_TABLE1[name]
    return (
        paper.nnz / matrix.nnz,
        paper.rows / matrix.n_rows,
        paper.cols / matrix.n_cols,
    )


def _target_centroid(phantom: Phantom) -> Tuple[float, float, float]:
    """World coordinate of the target's center of mass."""
    idx = phantom.target.voxel_indices
    centers = phantom.grid.voxel_centers()[idx]
    return tuple(float(c) for c in centers.mean(axis=0))
