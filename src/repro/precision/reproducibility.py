"""Reduction orderings and bitwise-reproducibility checking.

RayStation requires the dose calculation to be *bitwise reproducible* on the
same system (Section II-D of the paper).  Floating-point addition is not
associative, so reproducibility is a property of the *reduction order*:

* :func:`tree_reduce` — the fixed binary-tree order a warp-level
  ``cg::reduce`` performs.  Deterministic: same inputs → same bits, always.
* :func:`sequential_reduce` — strict left-to-right order (the CPU scratch
  array algorithm).  Also deterministic, but generally *different bits* than
  the tree order for the same inputs.
* :func:`permuted_reduce` — accumulation in a randomized order, modelling
  GPU ``atomicAdd`` commit order.  NOT reproducible across runs; this is the
  property that disqualifies the GPU Baseline from clinical use.

:class:`ReproducibilityChecker` runs a computation repeatedly and reports
whether results are bit-identical, which the tests and the reproducibility
bench use to verify both the positive claim (our kernel) and the negative
claim (the atomics baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.util.rng import RngLike, make_rng


def tree_reduce(values: np.ndarray, width: Optional[int] = None) -> np.floating:
    """Reduce with the fixed binary-tree order of a warp ``cg::reduce``.

    ``values`` are summed pairwise in log2 rounds exactly like a 32-lane
    shuffle reduction: round ``r`` adds lane ``i`` and lane ``i + 2**r``.
    ``width`` pads the input to the given lane count (default: next power of
    two), with zeros in inactive lanes — matching hardware where inactive
    lanes contribute the identity.

    The result is a NumPy scalar of the input dtype; bit-stable across calls.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if n == 0:
        return values.dtype.type(0)
    if width is None:
        width = 1
        while width < n:
            width *= 2
    if width < n:
        raise ValueError(f"width {width} smaller than input length {n}")
    lanes = np.zeros(width, dtype=values.dtype)
    lanes[:n] = values
    stride = width // 2
    while stride >= 1:
        # One shuffle-down round: lane i accumulates lane i + stride.
        lanes[:stride] = lanes[:stride] + lanes[stride : 2 * stride]
        stride //= 2
    return lanes[0]


def tree_reduce_rows(
    contrib: np.ndarray, warp_width: int = 32
) -> np.floating:
    """Reduce an arbitrary-length row the way the vector-CSR kernel does.

    The warp strides through the row in chunks of ``warp_width``; each lane
    keeps a private accumulator over its strided elements (in increasing
    index order), then one tree reduction combines the 32 lane accumulators.
    This is the exact summation order of Listing 1 in the paper, so the
    simulated kernel and this helper agree bit-for-bit.
    """
    contrib = np.asarray(contrib)
    n = contrib.shape[0]
    if n == 0:
        return contrib.dtype.type(0)
    lane_acc = np.zeros(warp_width, dtype=contrib.dtype)
    for start in range(0, n, warp_width):
        chunk = contrib[start : start + warp_width]
        lane_acc[: chunk.shape[0]] = lane_acc[: chunk.shape[0]] + chunk
    return tree_reduce(lane_acc, width=warp_width)


def sequential_reduce(values: np.ndarray) -> np.floating:
    """Strict left-to-right summation (CPU algorithm order)."""
    values = np.asarray(values)
    acc = np.zeros((), dtype=values.dtype)
    for v in values:
        acc = acc + v
    return values.dtype.type(acc)


def permuted_reduce(values: np.ndarray, rng: RngLike = None) -> np.floating:
    """Summation in a random order — the ``atomicAdd`` commit-order model.

    Each call with a fresh RNG may produce different low-order bits; this is
    what makes the GPU Baseline non-reproducible.
    """
    values = np.asarray(values)
    rng = make_rng(rng)
    order = rng.permutation(values.shape[0])
    return sequential_reduce(values[order])


def pairwise_reduce(values: np.ndarray) -> np.floating:
    """Recursive pairwise summation (NumPy's internal strategy).

    Included for error-analysis comparisons: pairwise and tree orders have
    the same O(log n) error growth, sequential grows O(n).
    """
    values = np.asarray(values)
    n = values.shape[0]
    if n == 0:
        return values.dtype.type(0)
    if n == 1:
        return values.dtype.type(values[0])
    mid = n // 2
    return values.dtype.type(
        pairwise_reduce(values[:mid]) + pairwise_reduce(values[mid:])
    )


@dataclass
class ReproducibilityReport:
    """Outcome of repeated runs of one computation."""

    n_runs: int
    bitwise_identical: bool
    max_ulp_spread: int
    max_abs_spread: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "REPRODUCIBLE" if self.bitwise_identical else "NON-REPRODUCIBLE"
        return (
            f"{verdict} over {self.n_runs} runs "
            f"(max ULP spread {self.max_ulp_spread}, "
            f"max abs spread {self.max_abs_spread:.3e})"
        )


def _ulp_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ULP distance between two same-dtype float arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    int_type = {2: np.int16, 4: np.int32, 8: np.int64}[a.dtype.itemsize]
    ai = a.view(int_type).astype(np.int64)
    bi = b.view(int_type).astype(np.int64)
    # Map the sign-magnitude float ordering onto a monotone integer ordering.
    ai = np.where(ai < 0, np.int64(-(2**62)) - ai, ai)
    bi = np.where(bi < 0, np.int64(-(2**62)) - bi, bi)
    return np.abs(ai - bi)


@dataclass
class ReproducibilityChecker:
    """Runs a computation several times and compares results bit-for-bit.

    Parameters
    ----------
    n_runs:
        how many times to invoke the computation (>= 2).
    """

    n_runs: int = 5
    _results: List[np.ndarray] = field(default_factory=list, repr=False)

    def check(self, compute: Callable[[int], np.ndarray]) -> ReproducibilityReport:
        """Invoke ``compute(run_index)`` ``n_runs`` times and compare.

        The run index lets callers thread a *fresh* RNG into stochastic
        computations (the atomics baseline) while deterministic kernels
        simply ignore it.
        """
        if self.n_runs < 2:
            raise ValueError("need at least 2 runs to compare")
        self._results = [np.asarray(compute(i)) for i in range(self.n_runs)]
        first = self._results[0]
        identical = all(
            r.dtype == first.dtype
            and r.shape == first.shape
            and np.array_equal(r.view(np.uint8), first.view(np.uint8))
            for r in self._results[1:]
        )
        max_ulp = 0
        max_abs = 0.0
        for r in self._results[1:]:
            if r.shape == first.shape and r.dtype == first.dtype:
                max_ulp = max(max_ulp, int(_ulp_distance(r, first).max(initial=0)))
                max_abs = max(
                    max_abs,
                    float(np.abs(r.astype(np.float64) - first.astype(np.float64)).max(
                        initial=0.0
                    )),
                )
        return ReproducibilityReport(
            n_runs=self.n_runs,
            bitwise_identical=bool(identical),
            max_ulp_spread=max_ulp,
            max_abs_spread=max_abs,
        )
