"""Precision descriptors for storage and computation.

The paper's contribution hinges on a precision *combination* that libraries
did not support: matrix values stored in IEEE-754 half, vectors and
accumulation in double.  This module gives that combination (and the others
evaluated) a first-class description that kernels, the traffic model and the
roofline analysis all share.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Precision(enum.Enum):
    """Scalar precision of a stored value."""

    HALF = "half"
    SINGLE = "single"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype corresponding to this precision."""
        return {
            Precision.HALF: np.dtype(np.float16),
            Precision.SINGLE: np.dtype(np.float32),
            Precision.DOUBLE: np.dtype(np.float64),
        }[self]

    @property
    def nbytes(self) -> int:
        """Bytes per value."""
        return self.dtype.itemsize

    @staticmethod
    def from_dtype(dtype: np.dtype) -> "Precision":
        """Map a NumPy float dtype back to a :class:`Precision`."""
        dtype = np.dtype(dtype)
        for p in Precision:
            if p.dtype == dtype:
                return p
        raise ValueError(f"no Precision for dtype {dtype}")


@dataclass(frozen=True)
class MixedPrecision:
    """A full SpMV precision configuration.

    Attributes
    ----------
    matrix:
        storage precision of the matrix values.
    vector:
        storage precision of the input and output vectors.
    accumulate:
        precision partial sums are kept in (>= vector in practice).
    index_bytes:
        width of a stored column index (4 in the paper; 2 for the
        16-bit-index ablation it proposes).
    """

    matrix: Precision
    vector: Precision
    accumulate: Precision
    index_bytes: int = 4

    def __post_init__(self) -> None:
        if self.index_bytes not in (2, 4, 8):
            raise ValueError(f"unsupported index width {self.index_bytes} bytes")

    @property
    def name(self) -> str:
        """Short name used in bench output ('half/double', 'single', ...)."""
        if self.matrix == self.vector == self.accumulate:
            return self.matrix.value
        return f"{self.matrix.value}/{self.vector.value}"

    def bytes_per_nonzero(self) -> int:
        """Bytes of *unique* traffic one non-zero costs: value + column index.

        The input-vector gather is accounted separately by the traffic
        model because it is subject to cache reuse.
        """
        return self.matrix.nbytes + self.index_bytes

    @property
    def index_dtype(self) -> np.dtype:
        """NumPy dtype for stored column indices."""
        return {2: np.dtype(np.uint16), 4: np.dtype(np.int32), 8: np.dtype(np.int64)}[
            self.index_bytes
        ]


#: The paper's contributed configuration: half-stored matrix, double vectors.
HALF_DOUBLE = MixedPrecision(Precision.HALF, Precision.DOUBLE, Precision.DOUBLE)

#: Single precision everywhere — the library-comparison configuration.
SINGLE = MixedPrecision(Precision.SINGLE, Precision.SINGLE, Precision.SINGLE)

#: Full double precision (reference / upper bound on traffic).
DOUBLE = MixedPrecision(Precision.DOUBLE, Precision.DOUBLE, Precision.DOUBLE)

#: Half-stored matrix with 16-bit column indices — the paper's future-work
#: suggestion for the prostate-sized cases.
HALF_DOUBLE_SHORT_INDEX = MixedPrecision(
    Precision.HALF, Precision.DOUBLE, Precision.DOUBLE, index_bytes=2
)
