"""Precision substrate: mixed-precision descriptors, half-precision storage
emulation, and reduction-order reproducibility tooling."""

from repro.precision.halfsim import (
    HALF_EPS,
    HALF_MAX,
    HALF_MIN_NORMAL,
    QuantizationReport,
    analyze_quantization,
    dose_scale_for_half,
    half_roundtrip,
    quantize_half,
    spmv_error_bound,
    widen_half,
)
from repro.precision.reproducibility import (
    ReproducibilityChecker,
    ReproducibilityReport,
    pairwise_reduce,
    permuted_reduce,
    sequential_reduce,
    tree_reduce,
    tree_reduce_rows,
)
from repro.precision.types import (
    DOUBLE,
    HALF_DOUBLE,
    HALF_DOUBLE_SHORT_INDEX,
    SINGLE,
    MixedPrecision,
    Precision,
)

__all__ = [
    "DOUBLE",
    "HALF_DOUBLE",
    "HALF_DOUBLE_SHORT_INDEX",
    "SINGLE",
    "MixedPrecision",
    "Precision",
    "HALF_EPS",
    "HALF_MAX",
    "HALF_MIN_NORMAL",
    "QuantizationReport",
    "analyze_quantization",
    "dose_scale_for_half",
    "half_roundtrip",
    "quantize_half",
    "spmv_error_bound",
    "widen_half",
    "ReproducibilityChecker",
    "ReproducibilityReport",
    "pairwise_reduce",
    "permuted_reduce",
    "sequential_reduce",
    "tree_reduce",
    "tree_reduce_rows",
]
