"""IEEE-754 half-precision storage emulation and error analysis.

NumPy's ``float16`` *is* IEEE-754 binary16, so "emulation" here means making
the store/widen round trip explicit and providing the error diagnostics the
RayStation requirement is based on: matrix entries may be half, but the
optimizer's vectors must stay double because half-precision *vectors* lose
too much accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Largest finite half-precision value.
HALF_MAX = float(np.finfo(np.float16).max)

#: Smallest positive normal half-precision value.
HALF_MIN_NORMAL = float(np.finfo(np.float16).tiny)

#: Unit roundoff of binary16 (2**-11).
HALF_EPS = float(np.finfo(np.float16).eps) / 2


def quantize_half(values: np.ndarray) -> np.ndarray:
    """Round values to the nearest representable half (stored as float16).

    Values above ``HALF_MAX`` overflow to ``inf`` exactly as a CUDA
    ``__float2half`` conversion would; callers that must avoid overflow
    should scale first (dose deposition values are Gy-per-unit-weight and
    stay far below 65504 in practice).
    """
    with np.errstate(over="ignore"):  # overflow to inf is the modelled behaviour
        return np.asarray(values).astype(np.float16)


def widen_half(values: np.ndarray, dtype: np.dtype = np.float64) -> np.ndarray:
    """Widen stored half values for computation (exact, no rounding)."""
    return np.asarray(values, dtype=np.float16).astype(dtype)


def half_roundtrip(values: np.ndarray) -> np.ndarray:
    """``float64 -> float16 -> float64`` round trip (storage error applied)."""
    return widen_half(quantize_half(values))


@dataclass(frozen=True)
class QuantizationReport:
    """Error statistics of a half-precision storage pass."""

    max_abs_error: float
    max_rel_error: float
    mean_rel_error: float
    overflow_count: int
    underflow_count: int

    @property
    def within_half_ulp(self) -> bool:
        """True if the worst relative error is within half an ULP of binary16.

        Round-to-nearest guarantees rel. error <= eps/2 = 2**-11 for normal
        values; subnormals may exceed this, which the report flags via
        ``underflow_count``.
        """
        return self.max_rel_error <= HALF_EPS * (1 + 1e-12)


def analyze_quantization(values: np.ndarray) -> QuantizationReport:
    """Quantify the error of storing ``values`` in half precision."""
    values = np.asarray(values, dtype=np.float64)
    stored = half_roundtrip(values)
    abs_err = np.abs(stored - values)
    overflow = int(np.count_nonzero(np.isinf(stored) & np.isfinite(values)))
    nonzero = values != 0
    finite = np.isfinite(stored)
    rel_mask = nonzero & finite
    rel_err = np.zeros_like(values)
    rel_err[rel_mask] = abs_err[rel_mask] / np.abs(values[rel_mask])
    underflow = int(
        np.count_nonzero(
            nonzero & (np.abs(values) < HALF_MIN_NORMAL) & np.isfinite(values)
        )
    )
    finite_abs = abs_err[np.isfinite(abs_err)]
    return QuantizationReport(
        max_abs_error=float(finite_abs.max(initial=0.0)),
        max_rel_error=float(rel_err.max(initial=0.0)),
        mean_rel_error=float(rel_err[rel_mask].mean()) if rel_mask.any() else 0.0,
        overflow_count=overflow,
        underflow_count=underflow,
    )


def spmv_error_bound(
    row_length: int, accum_eps: float = float(np.finfo(np.float64).eps)
) -> float:
    """A-priori relative error bound for one mixed-precision dot product.

    Storing matrix entries in half contributes at most ``HALF_EPS`` relative
    error per entry (independent of row length); the double accumulation
    contributes the classic ``n * u`` term.  The bound shows why the
    half/double mix is safe for RayStation: the storage term dominates and
    is length-independent, whereas half *accumulation* would grow linearly
    with row length (up to 16000 in the liver cases).
    """
    if row_length < 0:
        raise ValueError(f"row_length must be non-negative, got {row_length}")
    return HALF_EPS + row_length * accum_eps


def dose_scale_for_half(max_value: float, headroom: float = 8.0) -> float:
    """Scale factor bringing dose values safely inside half's range.

    Returns ``s`` such that ``max_value * s <= HALF_MAX / headroom``; 1.0 if
    already safe.  Used by the deposition-matrix builder before half storage.
    """
    if max_value <= 0:
        return 1.0
    limit = HALF_MAX / headroom
    if max_value <= limit:
        return 1.0
    return limit / max_value
