"""repro.obs — observability: span tracing, metrics, provenance, logging.

The paper's evaluation *is* observability (Nsight counters, 10000-run
timing statistics, roofline placement); this package gives the
reproduction the same auditability:

* :mod:`repro.obs.trace` — zero-dependency nested span tracer,
  no-op by default;
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms;
* :mod:`repro.obs.export` — Chrome-trace JSON (Perfetto-loadable),
  JSONL span logs, span summary tables;
* :mod:`repro.obs.provenance` — run manifests, now rendered as views of
  the per-run artifact;
* :mod:`repro.obs.artifact` — the unified ``repro.artifact/v1`` per-run
  record (``artifact.json`` + ``events.ndjson``), the single source of
  truth every phase enriches in place;
* :mod:`repro.obs.logging` — structured logging with the CLI's
  ``-v``/``-q`` story;
* :mod:`repro.obs.clock` — injectable monotonic clock (the serving
  layer's sanctioned time source; RA103 bans direct wall-clock reads);
* :mod:`repro.obs.lockwitness` — runtime lock-order witness (lockdep
  style): wraps declared locks, builds the runtime lock-order graph,
  flags hierarchy inversions/cycles, and feeds the ``lock_witness``
  artifact phase; the dynamic half of the RL501–RL506 static pass.
"""

from repro.obs.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactProblem,
    ArtifactSink,
    NullArtifactSink,
    cache_metrics_snapshot,
    dose_sha256,
    get_sink,
    matrix_fingerprint,
    read_artifact,
    set_sink,
    validate_artifact,
)
from repro.obs.clock import (
    Clock,
    FakeClock,
    SystemClock,
    get_clock,
    monotonic,
    set_clock,
)
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_from_events,
    events_ndjson,
    read_events_ndjson,
    span_events,
    span_summary_table,
    spans_to_jsonl,
    write_chrome_trace,
    write_events_ndjson,
    write_jsonl,
)
from repro.obs.lockwitness import (
    LOCK_LEVELS,
    LockOrderViolation,
    LockWitness,
    WitnessedLock,
    get_witness,
    guarded_lock,
    install_witness,
    uninstall_witness,
)
from repro.obs.logging import get_logger, kv, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.provenance import (
    RunManifest,
    collect_manifest,
    manifest_from_artifact,
    read_manifest,
    write_manifest,
)
from repro.obs.trace import (
    NullTracer,
    RecordingTracer,
    Span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    # trace
    "Span",
    "NullTracer",
    "RecordingTracer",
    "span",
    "traced",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    # export
    "span_events",
    "chrome_trace_events",
    "chrome_trace_from_events",
    "write_chrome_trace",
    "events_ndjson",
    "write_events_ndjson",
    "read_events_ndjson",
    "spans_to_jsonl",
    "write_jsonl",
    "span_summary_table",
    # artifact
    "ARTIFACT_SCHEMA",
    "ArtifactProblem",
    "ArtifactSink",
    "NullArtifactSink",
    "get_sink",
    "set_sink",
    "dose_sha256",
    "matrix_fingerprint",
    "cache_metrics_snapshot",
    "read_artifact",
    "validate_artifact",
    # provenance
    "RunManifest",
    "collect_manifest",
    "manifest_from_artifact",
    "write_manifest",
    "read_manifest",
    # logging
    "setup_logging",
    "get_logger",
    "kv",
    # clock
    "Clock",
    "SystemClock",
    "FakeClock",
    "get_clock",
    "set_clock",
    "monotonic",
    # lockwitness
    "LOCK_LEVELS",
    "LockOrderViolation",
    "LockWitness",
    "WitnessedLock",
    "guarded_lock",
    "get_witness",
    "install_witness",
    "uninstall_witness",
]
