"""Structured logging setup for the ``repro`` package.

Every module logs through ``get_logger(__name__)``; nothing is emitted
until :func:`setup_logging` installs a handler, so library users who
never touch the CLI keep silent imports.  The CLI maps ``-v/-vv`` and
``-q`` onto verbosity levels:

========  =========  ====================================
flag      verbosity  level
========  =========  ====================================
``-q``    -1         ERROR only
(none)    0          WARNING (library default)
``-v``    1          INFO — phase starts, cache behaviour
``-vv``   2          DEBUG — per-point detail
========  =========  ====================================

Log lines are structured ``key=value`` appended by :func:`kv` so they
stay grep-able alongside the span/metrics exports.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional

__all__ = ["setup_logging", "get_logger", "kv", "verbosity_to_level"]

ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s :: %(message)s"
_DATEFMT = "%H:%M:%S"


def verbosity_to_level(verbosity: int) -> int:
    """Map a CLI verbosity count to a ``logging`` level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def setup_logging(verbosity: int = 0, stream: Any = None) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Returns the root ``repro`` logger.  Re-invoking replaces the handler
    (so tests can redirect the stream) rather than stacking duplicates.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(verbosity_to_level(verbosity))
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
    for old in [h for h in root.handlers if getattr(h, "_repro_handler", False)]:
        root.removeHandler(old)
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
    return root


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.bench.harness`` etc.)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def kv(message: str, **fields: Any) -> str:
    """Append ``key=value`` pairs to a log message, stably ordered.

    >>> kv("cache", hit=True, key="Liver 1")
    "cache hit=True key='Liver 1'"
    """
    if not fields:
        return message
    tail = " ".join(f"{k}={v!r}" if isinstance(v, str) else f"{k}={v}"
                    for k, v in fields.items())
    return f"{message} {tail}"
