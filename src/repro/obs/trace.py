"""Zero-dependency span tracer.

The tracer answers "where does the time go inside ``repro-rtdose all``"
the way Nsight Systems answers it for real GPU code: every instrumented
region opens a *span* (name + attributes + monotonic start/end), spans
nest, and the finished list can be exported as Chrome-trace JSON
(:mod:`repro.obs.export`) or aggregated into a summary table.

Design constraints, in priority order:

1. **no-op by default** — the hot layers (kernel runs, optimizer
   iterations) are instrumented unconditionally, so the disabled path
   must cost one global read and one method call, nothing else;
2. **thread-safe** — the harness may fan experiments out across threads;
   the span stack is thread-local, the finished list lock-guarded;
3. **monotonic** — timestamps come from :func:`time.perf_counter_ns`,
   never the wall clock, so nested spans always satisfy
   ``parent.start <= child.start <= child.end <= parent.end``.

Usage::

    from repro.obs import trace

    tracer = trace.enable_tracing()
    with trace.span("harness.experiment", kernel="half_double"):
        ...
    for s in tracer.finished_spans():
        print(s.name, s.duration_ms)
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.lockwitness import guarded_lock

__all__ = [
    "Span",
    "NullTracer",
    "RecordingTracer",
    "span",
    "traced",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread_id: int
    depth: int
    start_ns: int
    end_ns: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Span duration in nanoseconds (0 while still open)."""
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9


class _ActiveSpan:
    """Context manager handed out by :meth:`RecordingTracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "RecordingTracer", span_: Span):
        self._tracer = tracer
        self._span = span_

    def set_attr(self, key: str, value: Any) -> "_ActiveSpan":
        """Attach one attribute to the span (chainable)."""
        self._span.attrs[key] = value
        return self

    def set_attrs(self, **attrs: Any) -> "_ActiveSpan":
        self._span.attrs.update(attrs)
        return self

    @property
    def name(self) -> str:
        return self._span.name

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self._span)
        return None


class _NoopSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def set_attrs(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def name(self) -> str:
        return ""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NullTracer:
    """Default tracer: records nothing, allocates nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def finished_spans(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


class RecordingTracer:
    """Collects nested spans with monotonic timestamps.

    The span *stack* is thread-local (nesting is a per-thread notion);
    the *finished* list is shared and lock-guarded so one export sees
    every thread's spans.
    """

    enabled = True

    def __init__(self) -> None:
        #: wall-clock epoch paired with the monotonic origin, for exports
        #: that want absolute times (the run manifest).
        self.created_unix = time.time()
        self.origin_ns = time.perf_counter_ns()
        self._lock = guarded_lock(  # analyze: lock-guards[_finished, _next_id]
            "obs.trace.RecordingTracer"
        )
        self._finished: List[Span] = []
        self._local = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------------ #

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; close it by exiting the returned context manager."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        s = Span(
            name=name,
            span_id=span_id,
            parent_id=None if parent is None else parent.span_id,
            thread_id=threading.get_ident(),
            depth=len(stack),
            start_ns=time.perf_counter_ns(),
            attrs=dict(attrs),
        )
        stack.append(s)
        return _ActiveSpan(self, s)

    def _finish(self, s: Span) -> None:
        s.end_ns = time.perf_counter_ns()
        stack = self._stack()
        # Tolerate out-of-order exits (generators, leaked spans): pop to s.
        while stack and stack[-1] is not s:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self._finished.append(s)

    # ------------------------------------------------------------------ #

    def finished_spans(self) -> List[Span]:
        """All closed spans, ordered by start time."""
        with self._lock:
            return sorted(self._finished, key=lambda s: s.start_ns)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def total_by_name(self) -> Dict[str, float]:
        """Summed duration (seconds) per span name."""
        totals: Dict[str, float] = {}
        for s in self.finished_spans():
            totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
        return totals


# --------------------------------------------------------------------- #
# Module-level tracer: one per process, swapped atomically.
# --------------------------------------------------------------------- #

_tracer: "NullTracer | RecordingTracer" = NullTracer()


def get_tracer() -> "NullTracer | RecordingTracer":
    """The process-wide tracer (a :class:`NullTracer` unless enabled)."""
    return _tracer


def set_tracer(tracer: "NullTracer | RecordingTracer") -> "NullTracer | RecordingTracer":
    """Install ``tracer`` as the process tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing() -> RecordingTracer:
    """Install (and return) a fresh :class:`RecordingTracer`."""
    tracer = RecordingTracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> "NullTracer | RecordingTracer":
    """Restore the no-op tracer; returns the tracer that was active."""
    return set_tracer(NullTracer())


def tracing_enabled() -> bool:
    return _tracer.enabled


def span(name: str, **attrs: Any):
    """Open a span on the current process tracer (no-op when disabled)."""
    return _tracer.span(name, **attrs)


def traced(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span`.

    >>> @traced("opt.solve", solver="pgd")
    ... def solve(): ...
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with _tracer.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
