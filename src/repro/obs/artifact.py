"""Unified per-run artifact record: one ``artifact.json`` per run.

The paper's claims are all *run-level* claims — execution configs,
precision modes, DRAM traffic, bitwise reproducibility — yet evidence
used to be scattered across four disjoint formats (provenance manifests,
loadtest CSVs, ``BENCH_*.json``, analyze reports).  This module is the
single source of truth that replaces them: an :class:`ArtifactSink`
creates one schema-versioned ``repro.artifact/v1`` record at run start,
and every phase enriches it in place —

* matrix build / format conversion (bench harness),
* execution-plan compilation (``repro.kernels.plan``),
* shard partition / placement / retry (``repro.dist``),
* serve batch composition and cache outcomes (``repro.serve``),
* bench points and analyze findings.

The artifact stores **decisions and hashes** (matrix fingerprints, plan
keys, shard specs, batch membership, RNG provenance, dose digests) —
never raw dose data — and carries enough to *deterministically replay*
any served request (:mod:`repro.serve.replay`).  Legacy outputs
(``manifest.json``, loadtest CSVs, ``BENCH_dist.json``) are **views**
rendered from the artifact, not independent formats.

Invariants (documented in DESIGN.md, checked by
:func:`validate_artifact`):

1. exactly one artifact per run, tagged ``repro.artifact/v1``;
2. every phase entry carries a process-unique ``seq``; serialization
   orders entries by an explicit per-phase sort key (with ``seq`` as the
   tiebreak), so the JSON is independent of thread completion order and
   of dict insertion order;
3. ``serve_batch.size == len(request_ids)`` for every batch;
4. every audited ``request`` entry carries a 64-hex ``dose_sha256``
   digest of the *served* dose bytes — the replay target;
5. the companion ``events.ndjson`` stream is derived from the same span
   tracer as the Chrome-trace export (one event source, two views).

Like the tracer and the clock, the process-wide sink defaults to a
no-op (:class:`NullArtifactSink`): instrumented hot paths pay one global
read and one empty method call when recording is disabled.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from repro.obs.lockwitness import guarded_lock
from repro.obs.metrics import get_registry

__all__ = [
    "ARTIFACT_SCHEMA",
    "KNOWN_PHASES",
    "ArtifactProblem",
    "ArtifactSink",
    "NullArtifactSink",
    "get_sink",
    "set_sink",
    "enabled",
    "record",
    "record_once",
    "set_param",
    "dose_sha256",
    "matrix_fingerprint",
    "cache_metrics_snapshot",
    "read_artifact",
    "validate_artifact",
]

ARTIFACT_SCHEMA = "repro.artifact/v1"

#: phases the built-in instrumentation writes.  Unknown phases are legal
#: (validation only warns) so downstream layers can extend the record.
KNOWN_PHASES: Tuple[str, ...] = (
    "matrix_build",
    "format_convert",
    "plan_compile",
    "shard_partition",
    "shard_placement",
    "shard_retry",
    "serve_batch",
    "serve_cache",
    "request",
    "loadtest",
    "bench_point",
    "experiment",
    "dist_sweep",
    "tune",
    "opt_submit",
    "opt_iteration",
    "opt_checkpoint",
    "opt_run",
    "opt_sweep",
    "opt_loadtest",
    "analyze",
    "lock_witness",
    "workload_generate",
    "ensemble_audit",
    "workloads_bench",
)

#: serialization sort key per phase (field names; ``seq`` is always the
#: final tiebreak).  Content-keyed phases are the ones written
#: concurrently from worker/executor threads.
_PHASE_SORT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "request": ("client", "index", "scenario"),
    "serve_batch": ("batch_id",),
    "shard_retry": ("shard", "attempt"),
    "plan_compile": ("matrix_fingerprint", "family"),
    "tune": ("key", "event"),
    "matrix_build": ("case", "preset"),
    "format_convert": ("case", "preset", "kernel"),
    "opt_submit": ("opt_id",),
    "opt_iteration": ("opt_id", "iteration"),
    "opt_checkpoint": ("opt_id", "iteration"),
    "opt_run": ("opt_id",),
    "workload_generate": ("workload", "scenario"),
    "ensemble_audit": ("workload", "preset"),
}

_RUN_STATUSES = ("running", "completed", "failed", "error")


# --------------------------------------------------------------------- #
# JSON hygiene
# --------------------------------------------------------------------- #


def _json_safe(value: Any) -> Any:
    """Coerce a recorded value into plain JSON-serializable types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(
            value, (set, frozenset)
        ) else value
        return [_json_safe(v) for v in items]
    return str(value)


def _sort_token(value: Any) -> Tuple[int, Any]:
    """A totally-ordered token for heterogeneous sort-key fields."""
    if isinstance(value, bool) or value is None:
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (0, float(value))
    return (1, str(value))


def _entry_sort_key(phase: str):
    fields = _PHASE_SORT_FIELDS.get(phase, ())

    def key(entry: Dict[str, Any]) -> Tuple[Tuple[int, Any], ...]:
        return tuple(_sort_token(entry.get(f)) for f in fields) + (
            _sort_token(entry.get("seq")),
        )

    return key


# --------------------------------------------------------------------- #
# hashing helpers: the artifact records digests, never payloads
# --------------------------------------------------------------------- #


def dose_sha256(dose: np.ndarray) -> str:
    """Canonical digest of a dose vector (dtype-faithful byte hash)."""
    arr = np.ascontiguousarray(dose)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode("ascii"))
    digest.update(repr(arr.shape).encode("ascii"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


def matrix_fingerprint(matrix: Any) -> str:
    """A 16-hex structural fingerprint of a sparse-matrix object.

    Hashes every ndarray field (name, dtype, shape, bytes) plus scalar
    metadata of a dataclass-based matrix (CSR, ELLPACK, SELL-C-sigma,
    RSCF all qualify); falls back to ``vars()`` for anything else.  Two
    matrices with identical structure and values fingerprint equally
    regardless of object identity — the cache/plan key the artifact
    records for audits.
    """
    digest = hashlib.sha256()
    digest.update(type(matrix).__name__.encode("ascii"))
    if dataclasses.is_dataclass(matrix):
        items = sorted(
            (f.name, getattr(matrix, f.name))
            for f in dataclasses.fields(matrix)
        )
    else:
        attrs = vars(matrix) if hasattr(matrix, "__dict__") else {}
        items = sorted(attrs.items())
    for name, value in items:
        if isinstance(value, np.ndarray):
            digest.update(name.encode("ascii"))
            digest.update(str(value.dtype).encode("ascii"))
            digest.update(repr(value.shape).encode("ascii"))
            digest.update(np.ascontiguousarray(value).tobytes())
        elif isinstance(value, (bool, int, float, str, tuple)):
            digest.update(f"{name}={value!r}".encode("utf-8"))
    return digest.hexdigest()[:16]


def cache_metrics_snapshot() -> Dict[str, Any]:
    """Snapshot of every cache metric (hit/miss/eviction/size counters).

    Covers the serve plan/exec-plan caches, the harness matrix caches,
    the process-global plan cache and the dist evaluator cache — the
    numbers that make loadtest amortization claims auditable after the
    fact.
    """
    return {
        name: state
        for name, state in get_registry().snapshot().items()
        if "cache" in name
    }


# --------------------------------------------------------------------- #
# sinks
# --------------------------------------------------------------------- #


class NullArtifactSink:
    """Default sink: records nothing, allocates nothing."""

    enabled = False
    run_id = ""

    def record(self, phase: str, **entry: Any) -> None:
        pass

    def record_once(self, phase: str, key: Hashable, **entry: Any) -> bool:
        return False

    def set_param(self, name: str, value: Any) -> None:
        pass

    def record_metrics(self) -> None:
        pass

    def finish(self, status: str = "completed",
               exit_code: Optional[int] = 0) -> None:
        pass

    def artifact(self) -> Dict[str, Any]:
        return {}


def _package_version() -> str:
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - broken partial install
        return "unknown"


def _scipy_version() -> Optional[str]:
    try:
        import scipy

        return scipy.__version__
    except Exception:  # pragma: no cover - scipy is a hard dep today
        return None


def _environment() -> Dict[str, Any]:
    from repro.obs.provenance import SEED_POLICY

    return {
        "package_version": _package_version(),
        "python_version": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy_version": np.__version__,
        "scipy_version": _scipy_version(),
        "seed_policy": SEED_POLICY,
    }


class ArtifactSink:
    """Thread-safe in-memory builder of one ``repro.artifact/v1`` record.

    Created once at run start; phases enrich it via :meth:`record` /
    :meth:`record_once`; :meth:`write` serializes with sorted keys and
    per-phase entry ordering so concurrent enrichment cannot perturb the
    on-disk bytes' structure.
    """

    enabled = True

    def __init__(self, command: Optional[List[str]] = None,
                 run_id: Optional[str] = None):
        now = time.time()
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
        self.run_id = run_id or f"run-{stamp}-{int(now * 1e6) % 10**6:06d}"
        self._lock = guarded_lock(  # analyze: lock-guards[_seq, _phases, _once_keys, _params, _metrics, _events_file, _run]
            "obs.artifact.ArtifactSink"
        )
        self._seq = 0
        self._phases: Dict[str, List[Dict[str, Any]]] = {}
        self._once_keys: set = set()
        self._params: Dict[str, Any] = {}
        self._metrics: Dict[str, Any] = {}
        self._events_file: Optional[str] = None
        self._run: Dict[str, Any] = {
            "run_id": self.run_id,
            "command": list(command if command is not None else sys.argv),
            "created_unix": now,
            "created_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime(now)
            ),
            "status": "running",
            "finished_unix": None,
            "exit_code": None,
        }
        self._environment = _environment()

    # ----------------------------- enrichment ------------------------- #

    def record(self, phase: str, **entry: Any) -> None:
        """Append one entry to ``phase`` (thread-safe; any thread)."""
        safe = {k: _json_safe(v) for k, v in entry.items()}
        with self._lock:
            safe["seq"] = self._seq
            self._seq += 1
            self._phases.setdefault(phase, []).append(safe)

    def record_once(self, phase: str, key: Hashable, **entry: Any) -> bool:
        """Record only the first entry per ``(phase, key)``; True if
        recorded."""
        safe = {k: _json_safe(v) for k, v in entry.items()}
        with self._lock:
            if (phase, key) in self._once_keys:
                return False
            self._once_keys.add((phase, key))
            safe["seq"] = self._seq
            self._seq += 1
            self._phases.setdefault(phase, []).append(safe)
            return True

    def set_param(self, name: str, value: Any) -> None:
        """Attach one named parameter block (e.g. the serve workload)."""
        with self._lock:
            self._params[name] = _json_safe(value)

    def record_metrics(self) -> None:
        """Stamp the current metrics-registry snapshot into the record."""
        snapshot = _json_safe(get_registry().snapshot())
        with self._lock:
            self._metrics = snapshot

    def set_events_file(self, filename: Optional[str]) -> None:
        with self._lock:
            self._events_file = filename

    def finish(self, status: str = "completed",
               exit_code: Optional[int] = 0) -> None:
        """Close the run: final status, exit code, metrics snapshot."""
        if status not in _RUN_STATUSES:
            raise ValueError(
                f"unknown run status {status!r}; expected one of "
                f"{_RUN_STATUSES}"
            )
        self.record_metrics()
        with self._lock:
            self._run["status"] = status
            self._run["exit_code"] = exit_code
            self._run["finished_unix"] = time.time()

    # ----------------------------- serialization ---------------------- #

    def artifact(self) -> Dict[str, Any]:
        """A deep JSON-ready copy with deterministic entry ordering."""
        with self._lock:
            phases = {
                phase: [dict(e) for e in entries]
                for phase, entries in self._phases.items()
            }
            run = dict(self._run)
            params = json.loads(json.dumps(self._params))
            metrics_snapshot = json.loads(json.dumps(self._metrics))
            events_file = self._events_file
        for phase, entries in phases.items():
            entries.sort(key=_entry_sort_key(phase))
        return {
            "schema": ARTIFACT_SCHEMA,
            "run": run,
            "environment": dict(self._environment),
            "params": params,
            "phases": {p: phases[p] for p in sorted(phases)},
            "metrics": metrics_snapshot,
            "events": events_file,
        }

    def to_json(self) -> str:
        return json.dumps(self.artifact(), indent=2, sort_keys=True)

    def write(self, directory: Union[str, Path],
              filename: str = "artifact.json") -> Path:
        """Write ``artifact.json`` into ``directory`` and return the
        path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / filename
        path.write_text(self.to_json() + "\n")
        return path


# --------------------------------------------------------------------- #
# process-wide sink (one per run, swapped atomically like the tracer)
# --------------------------------------------------------------------- #

_sink: Union[NullArtifactSink, ArtifactSink] = NullArtifactSink()


def get_sink() -> Union[NullArtifactSink, ArtifactSink]:
    """The process-wide artifact sink (a no-op unless a run installed
    one)."""
    return _sink


def set_sink(
    sink: Union[NullArtifactSink, ArtifactSink],
) -> Union[NullArtifactSink, ArtifactSink]:
    """Install ``sink`` as the process sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


def enabled() -> bool:
    """True when a real sink is installed (guards expensive hashing)."""
    return _sink.enabled


def record(phase: str, **entry: Any) -> None:
    """Record one phase entry on the current sink (no-op when
    disabled)."""
    _sink.record(phase, **entry)


def record_once(phase: str, key: Hashable, **entry: Any) -> bool:
    return _sink.record_once(phase, key, **entry)


def set_param(name: str, value: Any) -> None:
    _sink.set_param(name, value)


# --------------------------------------------------------------------- #
# reading + validation
# --------------------------------------------------------------------- #


def read_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load an artifact back as a dict (schema-checked)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path} is not a {ARTIFACT_SCHEMA} artifact "
            f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
        )
    return data


@dataclasses.dataclass(frozen=True)
class ArtifactProblem:
    """One validation finding against an artifact record."""

    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"{self.severity.upper()}: {self.message}"


def validate_artifact(data: Dict[str, Any]) -> List[ArtifactProblem]:
    """Check an artifact against the ``repro.artifact/v1`` invariants.

    Returns problems, most severe first.  An empty list means the
    artifact is fully valid; callers decide whether warnings fail the
    run (``artifact validate --strict`` does).
    """
    problems: List[ArtifactProblem] = []

    def error(message: str) -> None:
        problems.append(ArtifactProblem("error", message))

    def warning(message: str) -> None:
        problems.append(ArtifactProblem("warning", message))

    if not isinstance(data, dict):
        return [ArtifactProblem("error", "artifact is not a JSON object")]
    if data.get("schema") != ARTIFACT_SCHEMA:
        error(
            f"schema is {data.get('schema')!r}, expected {ARTIFACT_SCHEMA!r}"
        )
    run = data.get("run")
    if not isinstance(run, dict):
        error("missing 'run' section")
        run = {}
    if not run.get("run_id"):
        error("run.run_id is missing or empty")
    if run.get("status") not in _RUN_STATUSES:
        error(
            f"run.status {run.get('status')!r} not in {_RUN_STATUSES}"
        )
    elif run.get("status") == "running":
        warning("run.status is 'running': the run never finished")
    if not isinstance(data.get("environment"), dict):
        error("missing 'environment' section")
    phases = data.get("phases")
    if not isinstance(phases, dict):
        error("missing 'phases' section")
        phases = {}
    if not phases:
        warning("artifact has no phase entries at all")
    for phase, entries in phases.items():
        if not isinstance(entries, list):
            error(f"phase {phase!r} is not a list of entries")
            continue
        if phase not in KNOWN_PHASES:
            warning(f"unknown phase {phase!r} (extension or typo?)")
        seqs = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                error(f"phase {phase!r} entry {i} is not an object")
                continue
            if not isinstance(entry.get("seq"), int):
                error(f"phase {phase!r} entry {i} has no integer 'seq'")
            else:
                seqs.append(entry["seq"])
        if len(seqs) != len(set(seqs)):
            error(f"phase {phase!r} has duplicate 'seq' values")
    for i, entry in enumerate(phases.get("serve_batch", [])):
        if not isinstance(entry, dict):
            continue
        request_ids = entry.get("request_ids")
        if not isinstance(request_ids, list) or (
            entry.get("size") != len(request_ids)
        ):
            error(
                f"serve_batch entry {i} (batch_id="
                f"{entry.get('batch_id')!r}): size != len(request_ids)"
            )
    requests = phases.get("request", [])
    for entry in requests:
        if not isinstance(entry, dict) or entry.get("status") != "ok":
            continue
        sha = entry.get("dose_sha256")
        if entry.get("bitwise") is not None and not (
            isinstance(sha, str)
            and len(sha) == 64
            and all(c in "0123456789abcdef" for c in sha)
        ):
            error(
                f"request {entry.get('request_id')!r} was audited but "
                "carries no 64-hex dose_sha256"
            )
    if requests and not (data.get("params") or {}).get("workload"):
        warning(
            "request entries recorded without params.workload: "
            "deterministic replay is unavailable"
        )
    if not data.get("metrics"):
        warning("no metrics snapshot recorded")
    problems.sort(key=lambda p: (p.severity != "error",))
    return problems
