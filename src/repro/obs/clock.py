"""Injectable monotonic clock for the serving layer.

The reproducibility lint (RA103) bans wall-clock reads from
functional-path modules — results must be pure functions of their
inputs.  The serving layer, however, legitimately needs *scheduling*
time: batch windows, deadlines, and latency measurement.  This module is
the sanctioned indirection: serving code calls :func:`monotonic` (or
holds a :class:`Clock`), and tests swap in a :class:`FakeClock` to make
window/deadline behaviour deterministic.

Time read through here must only ever influence *scheduling* decisions
(when a batch closes, whether a deadline passed, how long a request
waited) — never the numerical result of a dose evaluation.  The
service-layer determinism test (same requests, different arrival
timings, bitwise-identical doses) enforces exactly that separation.
"""

from __future__ import annotations

import time

from repro.obs.lockwitness import guarded_lock

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "get_clock",
    "set_clock",
    "monotonic",
]


class Clock:
    """Monotonic-time source; subclass to control time in tests."""

    def monotonic(self) -> float:
        """Seconds on a monotonic axis (origin unspecified)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The process monotonic clock (``time.perf_counter``)."""

    def monotonic(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Manually advanced clock for deterministic scheduling tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = guarded_lock("obs.clock.FakeClock")  # analyze: lock-guards[_now]

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new reading."""
        if dt < 0:
            raise ValueError(f"cannot advance a monotonic clock by {dt}")
        with self._lock:
            self._now += dt
            return self._now


_clock: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-wide clock (a :class:`SystemClock` unless swapped)."""
    return _clock


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` as the process clock; returns the previous one."""
    global _clock
    previous = _clock
    _clock = clock
    return previous


def monotonic() -> float:
    """Shorthand for ``get_clock().monotonic()``."""
    return _clock.monotonic()
