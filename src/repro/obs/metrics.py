"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the numeric complement to :mod:`repro.obs.trace`: spans
say *where time went*, metrics say *how much work happened* — kernel
launches, bytes/flops modelled, cache hits and misses, validation
errors.  Unlike tracing, metrics are always on: an increment is one dict
lookup and one lock-guarded float add, cheap enough for every hot path
and exact under the serving layer's concurrent workers.

Naming convention: dotted lowercase paths, ``<layer>.<object>.<event>``
(``harness.half_cache.hit``, ``kernel.launches``, ``opt.objective_evals``).

Usage::

    from repro.obs import metrics

    metrics.counter("kernel.launches").inc()
    metrics.histogram("kernel.modeled_time_s").observe(1.3e-3)
    print(metrics.get_registry().render_table())
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.lockwitness import guarded_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "reset",
]


class Counter:
    """Monotonically increasing count (events, bytes, flops).

    Increments are lock-guarded: ``value += amount`` is a read-modify-
    write that spans bytecodes, so unguarded concurrent increments from
    the serving layer's worker threads would silently drop counts.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = guarded_lock("obs.metrics.Counter")  # analyze: lock-guards[value]

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (cache size, queue depth)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = guarded_lock("obs.metrics.Gauge")  # analyze: lock-guards[value]

    def set(self, value: float) -> None:
        self.value = float(value)  # analyze: allow[RL502] -- single atomic store; last-write-wins is the gauge contract, a lock would buy nothing

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Streaming distribution: count/sum/min/max plus bounded samples.

    Keeps at most ``max_samples`` observations for percentile queries
    (systematic thinning: once full, every other sample is kept), so
    memory stays bounded on 10000-run sweeps while count/sum/min/max
    remain exact.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_samples", "_keep_every",
                 "_skip", "max_samples", "_lock")

    def __init__(self, name: str, max_samples: int = 2048):
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._keep_every = 1
        self._skip = 0
        self._lock = guarded_lock("obs.metrics.Histogram")  # analyze: lock-guards[count, sum, min, max, _samples, _keep_every, _skip]

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._skip += 1
            if self._skip >= self._keep_every:
                self._skip = 0
                self._samples.append(value)
                if len(self._samples) >= self.max_samples:
                    self._samples = self._samples[::2]
                    self._keep_every *= 2

    @property
    def mean(self) -> float:
        # sum and count are updated together under the lock; reading
        # them unlocked could pair a new sum with a stale count.
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0-100) of the observations."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]


class MetricsRegistry:
    """Get-or-create store of named metrics (thread-safe)."""

    def __init__(self) -> None:
        self._lock = guarded_lock("obs.metrics.MetricsRegistry")  # analyze: lock-guards[_metrics]
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        return self._get_or_create(name, Histogram, max_samples=max_samples)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """Look up an existing metric (KeyError if absent)."""
        with self._lock:
            return self._metrics[name]

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs use this)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every metric's current state."""
        out: Dict[str, Any] = {}
        with self._lock:
            items = list(self._metrics.items())
        for name, m in items:
            if isinstance(m, Counter):
                out[name] = {"type": "counter", "value": m.value}
            elif isinstance(m, Gauge):
                out[name] = {"type": "gauge", "value": m.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": m.count,
                    "sum": m.sum,
                    "min": m.min,
                    "max": m.max,
                    "mean": m.mean,
                    "p50": m.percentile(50),
                    "p99": m.percentile(99),
                }
        return out

    def render_table(self, prefixes: Optional[Sequence[str]] = None) -> str:
        """Rendered metrics summary (optionally filtered by name prefix)."""
        from repro.util.tables import Table

        table = Table(
            ["metric", "type", "value / count", "mean", "min", "max"],
            title="Metrics summary",
        )
        for name, state in sorted(self.snapshot().items()):
            if prefixes and not any(name.startswith(p) for p in prefixes):
                continue
            if state["type"] == "histogram":
                table.add_row(
                    [name, "hist", state["count"], state["mean"],
                     state["min"], state["max"]]
                )
            else:
                table.add_row(
                    [name, state["type"], state["value"], None, None, None]
                )
        return table.render()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Shorthand for ``get_registry().counter(name)``."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def reset() -> None:
    """Reset the process-wide registry."""
    _REGISTRY.reset()
