"""Trace/metrics exporters: Chrome-trace JSON, JSONL, summary tables.

Chrome trace event format reference (the subset we emit):
each span becomes one *complete* event (``"ph": "X"``) with microsecond
``ts``/``dur`` relative to the tracer's start; load the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Span attributes ride
along in ``args`` so every kernel/case/device point is inspectable in
the viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.trace import RecordingTracer, Span
from repro.util.tables import Table

__all__ = [
    "span_events",
    "chrome_trace_events",
    "chrome_trace_from_events",
    "write_chrome_trace",
    "events_ndjson",
    "write_events_ndjson",
    "read_events_ndjson",
    "spans_to_jsonl",
    "write_jsonl",
    "span_summary_table",
]


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to something JSON-serializable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _process_meta() -> Dict[str, Any]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": "repro-rtdose"},
    }


def span_events(tracer: RecordingTracer) -> List[Dict[str, Any]]:
    """Finished spans as Chrome *complete* (``"ph": "X"``) event dicts.

    This is the single event source shared by the Chrome-trace export
    and the per-run ``events.ndjson`` stream: both views serialize
    exactly these dicts, so one can always be regenerated from the
    other (:func:`chrome_trace_from_events`).
    """
    return [
        {
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": s.thread_id,
            "ts": (s.start_ns - tracer.origin_ns) / 1e3,
            "dur": s.duration_ns / 1e3,
            "args": {k: _json_safe(v) for k, v in s.attrs.items()},
        }
        for s in tracer.finished_spans()
    ]


def chrome_trace_events(tracer: RecordingTracer) -> Dict[str, Any]:
    """The tracer's spans as a Chrome-trace-event JSON object."""
    return {
        "traceEvents": [_process_meta()] + span_events(tracer),
        "displayTimeUnit": "ms",
    }


def chrome_trace_from_events(
    events: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Rebuild the Chrome-trace object from an ``events.ndjson`` stream.

    Round-trip guarantee:
    ``chrome_trace_from_events(read_events_ndjson(p))`` equals
    :func:`chrome_trace_events` for the tracer that wrote ``p``.
    """
    return {
        "traceEvents": [_process_meta()]
        + [e for e in events if e.get("ph") == "X"],
        "displayTimeUnit": "ms",
    }


def events_ndjson(tracer: RecordingTracer) -> str:
    """The span events newline-delimited, one JSON object per line."""
    return "\n".join(json.dumps(e, sort_keys=True) for e in span_events(tracer))


def write_events_ndjson(
    tracer: RecordingTracer, path: Union[str, Path]
) -> Path:
    """Write the event stream to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = events_ndjson(tracer)
    path.write_text(text + ("\n" if text else ""))
    return path


def read_events_ndjson(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load an ``events.ndjson`` stream back as a list of event dicts."""
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


def write_chrome_trace(tracer: RecordingTracer, path: Union[str, Path]) -> Path:
    """Write the Chrome-trace JSON to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_events(tracer), indent=1))
    return path


def _span_record(tracer: RecordingTracer, s: Span) -> Dict[str, Any]:
    return {
        "name": s.name,
        "span_id": s.span_id,
        "parent_id": s.parent_id,
        "thread_id": s.thread_id,
        "depth": s.depth,
        "start_us": (s.start_ns - tracer.origin_ns) / 1e3,
        "duration_us": s.duration_ns / 1e3,
        "attrs": {k: _json_safe(v) for k, v in s.attrs.items()},
    }


def spans_to_jsonl(tracer: RecordingTracer) -> str:
    """One JSON object per finished span, newline-delimited."""
    return "\n".join(
        json.dumps(_span_record(tracer, s)) for s in tracer.finished_spans()
    )


def write_jsonl(tracer: RecordingTracer, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = spans_to_jsonl(tracer)
    path.write_text(text + ("\n" if text else ""))
    return path


def span_summary_table(tracer: RecordingTracer) -> Table:
    """Aggregate spans by name: count, total/self/mean/max time.

    *Self* time subtracts direct children, so a parent that only
    orchestrates shows near-zero self time — the profiler's way of
    pointing at leaves.
    """
    spans = tracer.finished_spans()
    child_total_ns: Dict[int, int] = {}
    for s in spans:
        if s.parent_id is not None:
            child_total_ns[s.parent_id] = (
                child_total_ns.get(s.parent_id, 0) + s.duration_ns
            )
    agg: Dict[str, Dict[str, float]] = {}
    for s in spans:
        a = agg.setdefault(
            s.name, {"count": 0, "total_ns": 0, "self_ns": 0, "max_ns": 0}
        )
        a["count"] += 1
        a["total_ns"] += s.duration_ns
        a["self_ns"] += s.duration_ns - child_total_ns.get(s.span_id, 0)
        a["max_ns"] = max(a["max_ns"], s.duration_ns)
    table = Table(
        ["span", "count", "total (ms)", "self (ms)", "mean (ms)", "max (ms)"],
        title="Span summary",
    )
    for name, a in sorted(agg.items(), key=lambda kv: -kv[1]["total_ns"]):
        table.add_row(
            [
                name,
                int(a["count"]),
                a["total_ns"] / 1e6,
                a["self_ns"] / 1e6,
                a["total_ns"] / 1e6 / a["count"],
                a["max_ns"] / 1e6,
            ]
        )
    return table
