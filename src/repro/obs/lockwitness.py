"""Runtime lock-order witness: lockdep-lite for the serving stack.

The static concurrency pass (:mod:`repro.analyze.concurrency`) proves
what it can resolve lexically; this module witnesses what actually
happens at runtime.  A :class:`LockWitness` wraps declared locks
(created through :func:`guarded_lock`) and, per thread, tracks the
stack of held locks.  Every acquisition while other locks are held
adds an edge to a process-wide *lock-order graph*; the witness flags

* **hierarchy inversions** — acquiring a lock whose declared level is
  strictly lower than a held lock's level (the repo hierarchy is
  scheduler → queue → cache → metrics → artifact sink; see DESIGN.md
  and :data:`LOCK_LEVELS`);
* **lock-order cycles** — an acquisition that would close a cycle in
  the order graph (the classic AB/BA deadlock, caught on the *first*
  run that exercises both orders, even when the schedule never actually
  deadlocks);
* **self-deadlock** — re-acquiring a held non-reentrant lock;
* **locks held across joins** — via :meth:`LockWitness.
  assert_no_locks_held`, used by ``WorkerPool.join``.

In ``strict`` mode a violation raises :class:`LockOrderViolation` at
the acquisition site — *before* blocking, so a test fails with a stack
trace instead of hanging.  In recording mode violations accumulate and
:meth:`LockWitness.summary` returns a JSON-ready report, recorded into
the ``repro.artifact/v1`` record as the ``lock_witness`` phase by
``serve loadtest --lock-witness`` and ``dist sweep --lock-witness``.

Zero overhead when disabled: :func:`guarded_lock` returns a plain
``threading.Lock`` unless a witness is installed, so only runs that opt
in pay the per-acquisition bookkeeping.  Locks created *before*
:func:`install_witness` stay unwitnessed — install the witness first
(the CLI flags and the ``lock_witness`` pytest fixture both do).

Lock identity is by *name* (the lockdep "lock class" idea): every
``Counter`` shares the name ``obs.metrics.Counter``, so an ordering
learned on one instance protects every instance.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "LOCK_LEVELS",
    "LockOrderViolation",
    "LockWitness",
    "WitnessedLock",
    "get_witness",
    "guarded_lock",
    "install_witness",
    "uninstall_witness",
]

#: The documented lock hierarchy (DESIGN.md "Lock hierarchy and the
#: concurrency contract").  Lower levels are acquired first; acquiring
#: a strictly lower level while holding a higher one is an inversion.
#: Locks without a level (None) are checked for cycles only.
LOCK_LEVELS: Dict[str, int] = {
    "serve.scheduler.MicroBatchScheduler": 10,
    "serve.workers.WorkerPool": 15,
    "serve.queue.RequestQueue": 20,
    "opt.service.queue": 20,
    "serve.cache.PlanStore": 30,
    "bench.harness.LRUCache": 30,
    "kernels.plan.PlanCache": 30,
    "opt.service.engines": 30,
    "serve.service.accounting": 35,
    "opt.service.accounting": 35,
    "opt.solver.stats": 35,
    "obs.metrics.Counter": 40,
    "obs.metrics.Gauge": 40,
    "obs.metrics.Histogram": 40,
    "obs.metrics.MetricsRegistry": 40,
    "obs.artifact.ArtifactSink": 50,
    "obs.trace.RecordingTracer": 60,
    "obs.clock.FakeClock": 70,
}


class LockOrderViolation(RuntimeError):
    """A strict-mode witness caught a lock-discipline violation."""


def _short_stack(limit: int = 8) -> List[str]:
    """A compact acquisition stack (innermost frames, witness elided)."""
    frames = traceback.extract_stack()[:-3]
    return [
        f"{f.filename.rsplit('/', 1)[-1]}:{f.lineno}:{f.name}"
        for f in frames[-limit:]
    ]


class WitnessedLock:
    """A ``threading.Lock`` (or ``RLock``) under witness observation.

    Drop-in for the contexts the repo uses locks in: ``with`` blocks,
    explicit ``acquire``/``release``, and as the lock backing a
    ``threading.Condition`` (the failed non-blocking probe Condition
    uses for ``_is_owned`` is never recorded).
    """

    __slots__ = ("_lock", "_witness", "name", "level")

    def __init__(
        self,
        witness: "LockWitness",
        name: str,
        level: Optional[int] = None,
        lock: Optional[Any] = None,
    ) -> None:
        self._witness = witness
        self._lock = lock if lock is not None else threading.Lock()
        self.name = name
        self.level = level

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # Order is checked *before* a blocking acquire: strict mode
        # raises at the would-deadlock site instead of hanging in it.
        if blocking:
            self._witness._before_acquire(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._witness._on_acquired(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._witness._on_released(self)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"WitnessedLock({self.name!r}, level={self.level})"


class LockWitness:
    """Per-thread held-lock stacks plus a process-wide order graph."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        #: raw internal lock — never witnessed (the witness cannot
        #: deadlock itself) and only ever held around dict bookkeeping.
        self._internal = threading.Lock()  # analyze: lock-guards[_acquisitions, _edges, _violations]
        self._held = threading.local()
        #: name -> acquisition count.
        self._acquisitions: Dict[str, int] = {}
        #: from-name -> to-name -> {"count", "stack"} (first-seen stack).
        self._edges: Dict[str, Dict[str, Dict[str, Any]]] = {}
        #: deduplicated violations, keyed (kind, held, acquiring).
        self._violations: Dict[Tuple[str, str, str], Dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # lock factory
    # ------------------------------------------------------------------ #

    def wrap(
        self,
        name: str,
        level: Optional[int] = None,
        lock: Optional[Any] = None,
    ) -> WitnessedLock:
        """A witnessed lock named ``name`` at hierarchy ``level``."""
        if level is None:
            level = LOCK_LEVELS.get(name)
        return WitnessedLock(self, name, level, lock)

    # ------------------------------------------------------------------ #
    # acquisition hooks (called from WitnessedLock)
    # ------------------------------------------------------------------ #

    def _stack(self) -> List[WitnessedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _before_acquire(self, lock: WitnessedLock) -> None:
        held = self._stack()
        if not held:
            return
        if any(h is lock for h in held):
            self._violation(
                "self-deadlock", held=lock.name, acquiring=lock.name,
                detail="re-acquiring a held non-reentrant lock",
            )
            return
        for h in held:
            if h.name == lock.name:
                # Same lock class, different instance: ordering between
                # instances of one class is a cycle question, handled
                # by the self-edge below.
                pass
            elif (
                lock.level is not None
                and h.level is not None
                and lock.level < h.level
            ):
                self._violation(
                    "hierarchy-inversion", held=h.name, acquiring=lock.name,
                    detail=(
                        f"acquiring level {lock.level} while holding level "
                        f"{h.level}; levels must be acquired in ascending "
                        "order (see LOCK_LEVELS)"
                    ),
                )
            with self._internal:
                cycle = self._find_path(lock.name, h.name)
            if cycle is not None:
                path = " -> ".join([h.name] + cycle)
                self._violation(
                    "lock-order-cycle", held=h.name, acquiring=lock.name,
                    detail=(
                        f"acquisition closes the cycle {path}; another "
                        "thread interleaving these orders can deadlock"
                    ),
                )

    def _on_acquired(self, lock: WitnessedLock) -> None:
        held = self._stack()
        with self._internal:
            self._acquisitions[lock.name] = (
                self._acquisitions.get(lock.name, 0) + 1
            )
            for h in held:
                if h.name == lock.name and h is lock:
                    continue
                edges = self._edges.setdefault(h.name, {})
                edge = edges.get(lock.name)
                if edge is None:
                    edges[lock.name] = {"count": 1, "stack": _short_stack()}
                else:
                    edge["count"] += 1
        held.append(lock)

    def _on_released(self, lock: WitnessedLock) -> None:
        held = self._stack()
        # Pop by identity, topmost first (tolerates out-of-order release
        # and cross-thread release, both legal for threading.Lock).
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """DFS path ``src -> ... -> dst`` in the order graph, if any."""
        if src == dst:
            return [src]
        seen = {src}
        frontier: List[Tuple[str, List[str]]] = [(src, [src])]
        while frontier:
            node, path = frontier.pop()
            for nxt in self._edges.get(node, {}):
                if nxt == dst:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, path + [nxt]))
        return None

    def _violation(self, kind: str, held: str, acquiring: str,
                   detail: str) -> None:
        key = (kind, held, acquiring)
        with self._internal:
            entry = self._violations.get(key)
            if entry is None:
                self._violations[key] = {
                    "kind": kind,
                    "held": held,
                    "acquiring": acquiring,
                    "detail": detail,
                    "thread": threading.current_thread().name,
                    "count": 1,
                    "stack": _short_stack(),
                }
            else:
                entry["count"] += 1
        # A witness raises only while it is the installed witness:
        # locks wrapped during an uninstalled (e.g. already-torn-down
        # test) witness keep recording but never explode later runs.
        if self.strict and _WITNESS is self:
            raise LockOrderViolation(
                f"{kind}: acquiring {acquiring!r} while holding {held!r} "
                f"({detail})"
            )

    # ------------------------------------------------------------------ #
    # assertions and reporting
    # ------------------------------------------------------------------ #

    def held_locks(self) -> List[str]:
        """Names of locks the *calling thread* currently holds."""
        return [h.name for h in self._stack()]

    def assert_no_locks_held(self, context: str) -> None:
        """Flag (or raise, strict) when the calling thread holds any
        witnessed lock — used across blocking joins, where a held lock
        would starve the thread being joined."""
        held = self._stack()
        if not held:
            return
        names = ", ".join(h.name for h in held)
        self._violation(
            "lock-held-across-join", held=names, acquiring=context,
            detail=f"{context} must not run while holding witnessed locks",
        )

    def violations(self) -> List[Dict[str, Any]]:
        with self._internal:
            return [dict(v) for v in self._violations.values()]

    def summary(self) -> Dict[str, Any]:
        """JSON-ready report for the ``lock_witness`` artifact phase."""
        with self._internal:
            edges = [
                {"from": src, "to": dst, "count": info["count"]}
                for src, targets in sorted(self._edges.items())
                for dst, info in sorted(targets.items())
            ]
            return {
                "strict": self.strict,
                "locks": sorted(self._acquisitions),
                "acquisitions": int(sum(self._acquisitions.values())),
                "edges": edges,
                "violations": [dict(v) for v in self._violations.values()],
            }


# --------------------------------------------------------------------- #
# process-wide witness (installed for opted-in runs only)
# --------------------------------------------------------------------- #

_WITNESS: Optional[LockWitness] = None


def install_witness(
    witness: Optional[LockWitness] = None, strict: bool = False
) -> LockWitness:
    """Install (and return) the process witness; errors if one is active.

    Install *before* constructing the objects to observe: only locks
    created through :func:`guarded_lock` while a witness is installed
    are wrapped.
    """
    global _WITNESS
    if _WITNESS is not None:
        raise RuntimeError("a lock witness is already installed")
    _WITNESS = witness if witness is not None else LockWitness(strict=strict)
    return _WITNESS


def uninstall_witness() -> Optional[LockWitness]:
    """Remove the process witness; returns it (None when none active).

    Locks already wrapped keep reporting to the removed witness — the
    witness outlives uninstall so its summary stays readable — but new
    :func:`guarded_lock` calls return plain locks again.
    """
    global _WITNESS
    previous = _WITNESS
    _WITNESS = None
    return previous


def get_witness() -> Optional[LockWitness]:
    """The active process witness, or None."""
    return _WITNESS


def guarded_lock(name: str, level: Optional[int] = None) -> threading.Lock:
    """A lock declared into the repo hierarchy.

    The sanctioned constructor for every declared lock: returns a plain
    ``threading.Lock`` (zero overhead) unless a witness is installed,
    in which case the lock is wrapped and order-checked.  ``level``
    defaults to :data:`LOCK_LEVELS` lookup by ``name``.

    Typed as ``threading.Lock`` so declaration sites (including
    ``threading.Condition(lock)``) type-check; the witnessed wrapper is
    duck-type compatible (acquire/release/locked/context manager).
    """
    witness = _WITNESS
    if witness is None:
        return threading.Lock()
    return witness.wrap(name, level)  # type: ignore[return-value]
