"""Run provenance: a machine-readable manifest of what actually executed.

The paper's methodology section records testbed, software versions and
repetition counts; our equivalent is a ``manifest.json`` written next to
the CSV output of every experiment run.  It answers, months later, *which
code, on which inputs, produced these numbers*: package/Python/NumPy
versions, the exact command line, the RNG seed policy, the kernel x case
x device points executed, per-phase wall-clock, and a metrics snapshot.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = [
    "RunManifest",
    "collect_manifest",
    "manifest_from_artifact",
    "write_manifest",
    "read_manifest",
]

MANIFEST_SCHEMA = "repro.run-manifest/v1"

#: seed derivation policy — all library randomness flows through
#: :func:`repro.util.rng.stable_seed` on these namespaces.
SEED_POLICY = (
    "stable_seed(namespace, *parts): SHA-256 of the repr'd parts, "
    "63-bit; namespaces: 'weights', case geometry, MC noise, atomics"
)


@dataclass
class RunManifest:
    """Everything needed to audit one CLI/harness run."""

    schema: str
    created_unix: float
    created_iso: str
    command: List[str]
    package_version: str
    python_version: str
    platform: str
    numpy_version: str
    scipy_version: Optional[str]
    #: seed derivation policy — all library randomness flows through
    #: :func:`repro.util.rng.stable_seed` on these namespaces.
    seed_policy: str
    experiments: List[str] = field(default_factory=list)
    cases: List[str] = field(default_factory=list)
    kernels: List[str] = field(default_factory=list)
    devices: List[str] = field(default_factory=list)
    presets: List[str] = field(default_factory=list)
    #: wall-clock seconds per phase (experiment name -> seconds).
    phases: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=False)


def _package_version() -> str:
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - broken partial install
        return "unknown"


def _scipy_version() -> Optional[str]:
    try:
        import scipy

        return scipy.__version__
    except Exception:  # pragma: no cover - scipy is a hard dep today
        return None


def collect_manifest(
    command: Optional[List[str]] = None,
    experiments: Optional[List[str]] = None,
    rows: Optional[List[Any]] = None,
    phases: Optional[Dict[str, float]] = None,
    **extra: Any,
) -> RunManifest:
    """Assemble a manifest from the current process state.

    ``rows`` (ExperimentRow-like: ``.case``/``.kernel``/``.device``)
    populate the executed-point inventory; ``phases`` defaults to the
    active tracer's top-level span totals.
    """
    import numpy as np

    now = time.time()
    tracer = get_tracer()
    if phases is None and tracer.enabled:
        phases = {
            s.name: round(s.duration_s, 6)
            for s in tracer.finished_spans()
            if s.depth == 0
        }
    rows = rows or []
    manifest = RunManifest(
        schema=MANIFEST_SCHEMA,
        created_unix=now,
        created_iso=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        command=list(command if command is not None else sys.argv),
        package_version=_package_version(),
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        numpy_version=np.__version__,
        scipy_version=_scipy_version(),
        seed_policy=SEED_POLICY,
        experiments=list(experiments or []),
        cases=sorted({r.case for r in rows}),
        kernels=sorted({r.kernel for r in rows}),
        devices=sorted({r.device for r in rows}),
        presets=sorted({p for p in (getattr(r, "preset", None) for r in rows) if p}),
        phases=dict(phases or {}),
        metrics=get_registry().snapshot(),
        extra=dict(extra),
    )
    return manifest


def manifest_from_artifact(
    artifact: Dict[str, Any], **extra: Any
) -> RunManifest:
    """Render a run manifest as a *view* of a ``repro.artifact/v1`` dict.

    Since the artifact became the single source of truth, the manifest
    is no longer collected independently: its point inventory comes
    from the artifact's ``bench_point`` entries, its phase wall-clocks
    from ``experiment`` entries, its metrics from the artifact's
    snapshot.  Downstream consumers of ``manifest.json`` are unchanged.
    """
    run = artifact.get("run", {})
    env = artifact.get("environment", {})
    phases = artifact.get("phases", {})
    points = [e for e in phases.get("bench_point", []) if isinstance(e, dict)]
    experiments = [
        e for e in phases.get("experiment", []) if isinstance(e, dict)
    ]
    return RunManifest(
        schema=MANIFEST_SCHEMA,
        created_unix=run.get("created_unix", time.time()),
        created_iso=run.get(
            "created_iso",
            time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        ),
        command=list(run.get("command", [])),
        package_version=env.get("package_version", _package_version()),
        python_version=env.get("python_version", sys.version.split()[0]),
        platform=env.get("platform", platform.platform()),
        numpy_version=env.get("numpy_version", ""),
        scipy_version=env.get("scipy_version"),
        seed_policy=env.get("seed_policy", SEED_POLICY),
        experiments=[e["name"] for e in experiments if "name" in e],
        cases=sorted({p["case"] for p in points if p.get("case")}),
        kernels=sorted({p["kernel"] for p in points if p.get("kernel")}),
        devices=sorted({p["device"] for p in points if p.get("device")}),
        presets=sorted({p["preset"] for p in points if p.get("preset")}),
        phases={
            e["name"]: e["wall_s"]
            for e in experiments
            if "name" in e and isinstance(e.get("wall_s"), (int, float))
        },
        metrics=dict(artifact.get("metrics", {})),
        extra=dict(extra),
    )


def write_manifest(
    manifest: RunManifest, directory: Union[str, Path],
    filename: str = "manifest.json",
) -> Path:
    """Write ``manifest`` into ``directory`` and return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    path.write_text(manifest.to_json() + "\n")
    return path


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a manifest back as a plain dict (schema-checked)."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path} is not a {MANIFEST_SCHEMA} manifest "
            f"(schema={data.get('schema')!r})"
        )
    return data
