"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro-rtdose info                  # device catalogue + case inventory
    repro-rtdose table1                # Table I
    repro-rtdose fig2 ... fig7         # one figure
    repro-rtdose all                   # everything, with paper-band checks
    repro-rtdose spmv --kernel half_double --case "Liver 1" --device a100
    repro-rtdose all --csv results/    # also dump raw rows + manifest.json
    repro-rtdose fig5 --trace t.json   # Chrome-trace spans (Perfetto)
    repro-rtdose trace fig4            # run under tracing, print span report

(or ``python -m repro.cli ...``).

Observability flags (every subcommand):

``--trace PATH``   record spans, write Chrome-trace JSON to PATH, print a
                   span summary and the metrics table afterwards;
``--metrics``      print the metrics registry summary after the command;
``-v`` / ``-vv``   INFO / DEBUG logging; ``-q`` errors only.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import run_spmv_experiment
from repro.bench.recording import (
    check_claims,
    experiment_csv_from_artifact,
    rows_to_csv,
)
from repro.gpu.device import get_device, list_devices
from repro.kernels.dispatch import kernel_names
from repro.obs import artifact as artifact_mod
from repro.obs.export import (
    span_summary_table,
    write_chrome_trace,
    write_events_ndjson,
    write_jsonl,
)
from repro.obs.logging import get_logger, kv, setup_logging
from repro.obs.metrics import get_registry
from repro.obs.provenance import (
    collect_manifest,
    manifest_from_artifact,
    write_manifest,
)
from repro.obs.trace import (
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)
from repro.plans.cases import PAPER_TABLE1, case_names
from repro.util.tables import Table
from repro.workloads import WORKLOAD_PRESETS, workload_names

_log = get_logger(__name__)


def _cmd_info(_: argparse.Namespace) -> int:
    devices = Table(
        ["device", "kind", "SMs/cores", "peak BW (GB/s)", "FP64 (TFLOP/s)",
         "L2 (MiB)"],
        title="Device catalogue",
    )
    for spec in list_devices().values():
        devices.add_row(
            [
                spec.name,
                spec.kind.value,
                spec.sm_count,
                spec.peak_bw / 1e9,
                spec.peak_flops_fp64 / 1e12,
                spec.l2_bytes / 2**20,
            ]
        )
    print(devices.render())
    print()
    cases = Table(
        ["case", "paper rows", "paper cols", "paper nnz", "paper density"],
        title="Evaluation cases (Table I metadata)",
    )
    for name in case_names():
        p = PAPER_TABLE1[name]
        cases.add_row([name, p.rows, p.cols, p.nnz, f"{100 * p.density:.2f}%"])
    print(cases.render())
    print()
    print("Kernels:", ", ".join(kernel_names()))
    return 0


def _run_experiment(
    name: str,
    csv_dir: Optional[Path],
    chart: bool = False,
    preset: Optional[str] = None,
):
    """Run one experiment; returns (all claims in band, report)."""
    fn = ALL_EXPERIMENTS[name]
    report = fn(preset=preset) if preset else fn()
    if artifact_mod.enabled():
        for r in report.rows:
            artifact_mod.record(
                "bench_point",
                experiment=name, case=r.case, kernel=r.kernel,
                device=r.device, threads_per_block=r.threads_per_block,
                time_s=r.time_s, gflops=r.gflops,
                bandwidth_gbs=r.bandwidth_gbs,
                bandwidth_fraction=r.bandwidth_fraction,
                operational_intensity=r.operational_intensity,
                limiter=r.limiter, relative_error=r.relative_error,
                reproducible=r.reproducible,
            )
    print(report.render())
    if chart and report.rows:
        from repro.bench.figures import grouped_bar_chart

        # Series axis: whatever actually varies (device for fig7, block
        # size for fig4, kernel otherwise).
        kernels = {r.kernel for r in report.rows}
        devices = {r.device for r in report.rows}
        if len(kernels) == 1 and len(devices) > 1:
            series = "device"
        elif len(kernels) == 1:
            series = "threads_per_block"
        else:
            series = "kernel"
        print()
        print(grouped_bar_chart(report.rows, series_by=series))
    checks = check_claims(report)
    ok = True
    if checks:
        print()
        print("Paper-band checks:")
        for c in checks:
            verdict = "OK  " if c.in_band else "OUT "
            paper = f"paper={c.paper_value:g}" if c.paper_value is not None else ""
            print(
                f"  {verdict}{c.claim}: measured={c.measured:.4g} "
                f"band={c.band} {paper} [{c.source}]"
            )
            ok = ok and c.in_band
    if csv_dir is not None and report.rows:
        csv_dir.mkdir(parents=True, exist_ok=True)
        path = csv_dir / f"{name}.csv"
        sink = artifact_mod.get_sink()
        if sink.enabled:
            # The CSV is a view of the artifact's bench_point entries
            # (byte-compatible with the legacy report-based writer).
            path.write_text(
                experiment_csv_from_artifact(sink.artifact(), name)
            )
        else:
            path.write_text(rows_to_csv(report))
        print(f"\nraw rows written to {path}")
    print()
    return ok, report


def _cmd_experiment(args: argparse.Namespace) -> int:
    csv_dir = Path(args.csv) if args.csv else None
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    all_ok = True
    all_rows = []
    phases = {}
    for name in names:
        t0 = time.perf_counter()
        ok, report = _run_experiment(
            name, csv_dir, chart=args.chart, preset=args.preset
        )
        phases[name] = round(time.perf_counter() - t0, 6)
        all_ok = ok and all_ok
        all_rows.extend(report.rows)
        artifact_mod.record(
            "experiment", name=name, wall_s=phases[name], ok=ok,
        )
    if csv_dir is not None:
        sink = artifact_mod.get_sink()
        if sink.enabled:
            # The manifest is a view of the artifact, not an
            # independently collected record.
            sink.record_metrics()
            manifest = manifest_from_artifact(
                sink.artifact(),
                preset=args.preset or "per-experiment default",
            )
        else:
            manifest = collect_manifest(
                experiments=names,
                rows=all_rows,
                phases=phases,
                preset=args.preset or "per-experiment default",
            )
        path = write_manifest(manifest, csv_dir)
        print(f"run manifest written to {path}")
    if not all_ok:
        print("SOME CLAIMS OUT OF PAPER BANDS", file=sys.stderr)
        return 1
    return 0


def _cmd_spmv(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    row = run_spmv_experiment(
        args.kernel,
        args.case,
        device=device,
        preset=args.preset,
        threads_per_block=args.threads_per_block,
        at_paper_scale=not args.bench_scale,
    )
    if artifact_mod.enabled():
        artifact_mod.record(
            "bench_point",
            experiment="spmv", case=row.case, kernel=row.kernel,
            device=row.device, threads_per_block=row.threads_per_block,
            time_s=row.time_s, gflops=row.gflops,
            bandwidth_gbs=row.bandwidth_gbs,
            bandwidth_fraction=row.bandwidth_fraction,
            operational_intensity=row.operational_intensity,
            limiter=row.limiter, relative_error=row.relative_error,
            reproducible=row.reproducible,
        )
    table = Table(
        ["case", "kernel", "device", "tpb", "time", "GFLOP/s", "BW GB/s",
         "BW frac", "OI", "limiter", "rel err", "bitwise"],
        title="SpMV experiment" + (" (bench scale)" if args.bench_scale else
                                   " (paper scale)"),
    )
    table.add_row(row.as_list())
    print(table.render())
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.dose import Beam, compute_beam_geometry, generate_spot_map
    from repro.dose.bev_plot import render_beams_eye_view
    from repro.plans.cases import _target_centroid, get_case

    case = get_case(args.case, args.preset)
    phantom = case.build_phantom()
    beam = Beam(args.case, case.gantry_deg, _target_centroid(phantom))
    geometry = compute_beam_geometry(phantom, beam)
    spot_map = generate_spot_map(
        phantom, beam, geometry,
        spot_spacing_mm=case.spot_spacing_mm,
        layer_spacing_mm=case.layer_spacing_mm,
    )
    print(render_beams_eye_view(phantom, geometry, spot_map, layer=args.layer))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.harness import case_weights, prepare_input_matrix
    from repro.gpu.nsight import profile_report
    from repro.kernels.dispatch import make_kernel

    device = get_device(args.device)
    kernel = make_kernel(args.kernel)
    matrix = prepare_input_matrix(args.kernel, args.case, args.preset)
    weights = case_weights(args.case, matrix.n_cols)
    result = kernel.run(
        matrix, weights, device=device,
        threads_per_block=args.threads_per_block, rng=0,
    )
    print(profile_report(result))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """``repro-rtdose analyze``: run the static contract checkers."""
    from repro.analyze import get_registry as get_rule_registry
    from repro.analyze import run_analysis

    if args.list_rules:
        table = Table(
            ["rule", "name", "severity", "description"],
            title="Static analysis rules",
        )
        for rule in get_rule_registry().rules():
            table.add_row(
                [rule.rule_id, rule.name, rule.severity.value,
                 rule.description]
            )
        print(table.render())
        return 0
    context = None
    if args.include:
        from repro.analyze import AnalysisContext

        context = AnalysisContext(
            extra_lint_paths=tuple(Path(p) for p in args.include)
        )
    try:
        report = run_analysis(context, suppress=args.suppress)
    except KeyError as exc:
        print(f"analyze: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json(strict=args.strict))
    else:
        print(report.render_table())
    return report.exit_code(strict=args.strict)


def _witness_report(witness) -> int:
    """Print a lock-witness summary, record the ``lock_witness`` phase,
    and return 1 when any violation was observed."""
    summary = witness.summary()
    violations = summary["violations"]
    print()
    print(
        f"Lock witness: {summary['acquisitions']} acquisitions across "
        f"{len(summary['locks'])} lock classes, "
        f"{len(summary['edges'])} order edges, "
        f"{len(violations)} violation(s)"
    )
    for v in violations:
        print(
            f"  {v['kind']}: acquiring {v['acquiring']} while holding "
            f"{v['held']} (x{v['count']}, thread {v['thread']}): "
            f"{v['detail']}",
            file=sys.stderr,
        )
    if artifact_mod.enabled():
        artifact_mod.record("lock_witness", **summary)
    return 1 if violations else 0


def _loadtest_config(args: argparse.Namespace):
    from repro.serve.loadgen import LoadTestConfig

    return LoadTestConfig(
        n_requests=args.requests,
        n_clients=args.clients,
        burst=args.burst,
        n_plans=args.plans,
        precision=args.precision,
        n_workers=args.workers,
        max_batch_size=args.batch_size,
        batch_window_s=args.batch_window_ms / 1e3,
        deadline_s=(args.deadline_ms / 1e3 if args.deadline_ms else None),
        seed=args.seed,
        case_names=args.case or None,
        preset=args.preset,
        shards=args.shards,
        dist_devices=args.dist_devices,
        dist_placement=args.dist_placement,
        workload=getattr(args, "workload", "synthetic"),
    )


def _cmd_serve_loadtest(args: argparse.Namespace) -> int:
    """``repro-rtdose serve loadtest``: closed-loop latency/throughput run."""
    from repro.bench.recording import check_loadtest_claims, loadtest_rows_to_csv
    from repro.serve.loadgen import run_loadtest

    witness = None
    if getattr(args, "lock_witness", False):
        from repro.obs.lockwitness import install_witness, uninstall_witness

        # Install before the service is built so every declared lock the
        # run creates is wrapped; recording (non-strict) mode, so the
        # run completes and violations are reported at the end.
        witness = install_witness()
    try:
        report = run_loadtest(_loadtest_config(args))
    finally:
        if witness is not None:
            uninstall_witness()
    print(report.render())
    print()
    print("Serving-layer checks:")
    ok = True
    for c in check_loadtest_claims(report):
        verdict = "OK  " if c.in_band else "OUT "
        print(
            f"  {verdict}{c.claim}: measured={c.measured:.6g} "
            f"band={c.band} [{c.source}]"
        )
        ok = ok and c.in_band
    if args.csv:
        path = Path(args.csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        sink = artifact_mod.get_sink()
        if sink.enabled:
            from repro.bench.recording import loadtest_csv_from_artifact

            # The CSV is a view of the artifact's request entries
            # (byte-compatible with the legacy report-based writer).
            path.write_text(loadtest_csv_from_artifact(sink.artifact()))
        else:
            path.write_text(loadtest_rows_to_csv(report))
        print(f"\nper-request records written to {path}")
    witness_rc = _witness_report(witness) if witness is not None else 0
    if witness_rc:
        print("LOCK-ORDER VIOLATIONS WITNESSED", file=sys.stderr)
    if not ok:
        print("SERVING-LAYER CLAIMS OUT OF BAND", file=sys.stderr)
        return 1
    return witness_rc


def _cmd_serve_run(args: argparse.Namespace) -> int:
    """``repro-rtdose serve run``: start a service, serve a demo stream."""
    import numpy as np

    from repro.serve.loadgen import build_synthetic_plans, request_weights
    from repro.serve.request import EvaluationRequest, Rejected
    from repro.serve.scheduler import BatchingPolicy
    from repro.serve.service import DoseEvaluationService, ServiceConfig

    config = _loadtest_config(args)
    service = DoseEvaluationService(ServiceConfig(
        n_workers=config.n_workers,
        batching=BatchingPolicy(
            max_batch_size=config.max_batch_size,
            max_wait_s=config.batch_window_s,
        ),
        shards=config.shards,
        dist_devices=config.dist_devices,
        dist_placement=config.dist_placement,
    ))
    masters = {}
    if config.case_names:
        for i, case in enumerate(config.case_names):
            record = service.plans.register_case(
                f"plan-{i}", case, preset=config.preset
            )
            masters[record.plan_id] = record.matrix
    else:
        for plan_id, matrix in build_synthetic_plans(config).items():
            service.plans.register(plan_id, matrix, source="synthetic")
            masters[plan_id] = matrix
    plan_ids = sorted(masters)
    record_artifact = artifact_mod.enabled()
    if record_artifact:
        from dataclasses import asdict

        workload = asdict(config)
        workload["mode"] = "serve_run"
        artifact_mod.set_param("workload", workload)
    completed = rejected = 0
    total_dose = 0.0
    with service:
        for i in range(config.n_requests):
            plan_id = plan_ids[i % len(plan_ids)]
            outcome = service.submit(EvaluationRequest(
                request_id=f"run-{i}",
                plan_id=plan_id,
                weights=request_weights(
                    config, 0, i, masters[plan_id].n_cols
                ),
                precision=config.precision,
            ))
            if isinstance(outcome, Rejected):
                rejected += 1
                _log.warning(kv("request rejected", request=f"run-{i}",
                                reason=outcome.reason.value))
                if record_artifact:
                    artifact_mod.record(
                        "request", request_id=f"run-{i}", client=0,
                        index=i, plan_id=plan_id,
                        precision=config.precision,
                        status=outcome.reason.value,
                    )
                continue
            result = outcome.outcome(timeout=30.0)
            if isinstance(result, Rejected):
                rejected += 1
                if record_artifact:
                    artifact_mod.record(
                        "request", request_id=f"run-{i}", client=0,
                        index=i, plan_id=plan_id,
                        precision=config.precision,
                        status=result.reason.value,
                    )
                continue
            completed += 1
            total_dose += float(np.sum(result.dose))
            if record_artifact:
                artifact_mod.record(
                    "request", request_id=f"run-{i}", client=0, index=i,
                    plan_id=plan_id, precision=config.precision,
                    status="ok", batch_id=result.batch_id,
                    batch_size=result.batch_size,
                    cache_hit=result.cache_hit, shards=result.shards,
                    bitwise=None,
                    dose_sha256=artifact_mod.dose_sha256(result.dose),
                    dose_dtype=str(result.dose.dtype),
                )
        stats = service.stats()
    if record_artifact:
        artifact_mod.record(
            "serve_cache", metrics=artifact_mod.cache_metrics_snapshot()
        )
    table = Table(["stat", "value"], title="Service run")
    table.add_row(["requests completed", completed])
    table.add_row(["requests rejected", rejected])
    table.add_row(["total dose (sum over voxels)", f"{total_dose:.6e}"])
    for name in sorted(stats):
        table.add_row([name, round(stats[name], 6)])
    print(table.render())
    return 0 if rejected == 0 else 1


def _cmd_dist_run(args: argparse.Namespace) -> int:
    """``repro-rtdose dist run``: one sharded evaluation + bitwise check."""
    import numpy as np

    from repro.bench.harness import convert_for_kernel
    from repro.dist import (
        DevicePool,
        FailureInjector,
        ShardedEvaluator,
        ShardExecutionError,
    )
    from repro.kernels.dispatch import make_kernel
    from repro.plans.cases import build_case_matrix
    from repro.util.rng import make_rng, stable_seed

    kernel = make_kernel(args.kernel)
    master = build_case_matrix(args.case, args.preset).matrix
    matrix = convert_for_kernel(master, args.kernel)
    evaluator = ShardedEvaluator(
        matrix,
        kernel,
        args.shards,
        pool=DevicePool.of(
            args.dist_devices or min(args.shards, 4), args.device
        ),
        placement=args.dist_placement,
        retry_budget=args.retry_budget,
    )
    injector = (
        FailureInjector.fail_once(*args.fail_shard)
        if args.fail_shard else None
    )
    rng = make_rng(stable_seed("dist-run", args.case, args.seed))
    weights = rng.random(matrix.n_cols)
    try:
        evaluation = evaluator.evaluate(weights, injector=injector)
    except ShardExecutionError as exc:
        print(f"sharded evaluation failed: {exc}", file=sys.stderr)
        return 1
    reference = kernel.run(
        matrix, weights,
        device=get_device(args.device),
        plan=kernel.prepare_plan(matrix),
    )
    bitwise = bool(np.array_equal(evaluation.doses, reference.y))

    shards = Table(
        ["shard", "rows", "nnz", "device", "modeled time (ms)"],
        title=f"Sharded evaluation — {args.case} / {args.kernel}",
    )
    for spec, compiled in zip(evaluator.sharded.specs, evaluator.shards):
        shards.add_row(
            [
                spec.index,
                f"[{spec.row_start}, {spec.row_end})",
                spec.nnz,
                compiled.device.name,
                evaluation.per_shard_time_s[spec.index] * 1e3,
            ]
        )
    print(shards.render())
    print()
    summary = Table(["quantity", "value"])
    summary.add_row(["shards", evaluator.n_shards])
    summary.add_row(["devices", evaluator.pool.n_devices])
    summary.add_row(["nnz imbalance", round(evaluator.sharded.imbalance, 4)])
    summary.add_row(["wall time (ms)", evaluation.wall_time_s * 1e3])
    summary.add_row(["serial time (ms)", evaluation.serial_time_s * 1e3])
    summary.add_row(
        ["single-device time (ms)", reference.timing.time_s * 1e3]
    )
    summary.add_row(["retries spent", evaluation.retries])
    summary.add_row(["bitwise identical", "yes" if bitwise else "NO"])
    print(summary.render())
    return 0 if bitwise else 1


def _cmd_dist_sweep(args: argparse.Namespace) -> int:
    """``repro-rtdose dist sweep``: strong scaling over shard counts."""
    from repro.bench.recording import write_dist_bench
    from repro.dist import strong_scaling_sweep

    witness = None
    if getattr(args, "lock_witness", False):
        from repro.obs.lockwitness import install_witness, uninstall_witness

        witness = install_witness()
    try:
        report = strong_scaling_sweep(
            case=args.case,
            preset=args.preset,
            kernel_name=args.kernel,
            shard_counts=args.shards,
            shard_policy=args.policy,
            device_name=args.device,
            seed=args.seed,
            dispatch=args.dispatch,
            threads_per_block=args.tpb,
            repeats=args.repeats,
            use_tuned=args.tuned,
        )
    finally:
        if witness is not None:
            uninstall_witness()
    print(report.render())
    if args.json:
        from repro.bench.recording import dist_bench_from_artifact

        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        sink = artifact_mod.get_sink()
        if sink.enabled:
            # BENCH_dist.json is a view of the artifact's dist_sweep
            # phase (the sweep recorded its own repro.dist-bench/v1
            # record there).
            write_dist_bench(dist_bench_from_artifact(sink.artifact()),
                             args.json)
        else:
            write_dist_bench(report.record(), args.json)
        print(f"\nsweep record written to {args.json}")
    witness_rc = _witness_report(witness) if witness is not None else 0
    if witness_rc:
        print("LOCK-ORDER VIOLATIONS WITNESSED", file=sys.stderr)
    if not report.all_bitwise_identical:
        print("SHARDED RESULTS NOT BITWISE IDENTICAL", file=sys.stderr)
        return 1
    return witness_rc


def _cmd_tune_run(args: argparse.Namespace) -> int:
    """``repro-rtdose tune run``: autotune one (case, kernel) problem."""
    from repro.bench.harness import convert_for_kernel
    from repro.kernels.dispatch import make_kernel
    from repro.plans.cases import build_case_matrix
    from repro.tune import TuningCache, autotune, set_tune_cache

    if args.cache:
        set_tune_cache(TuningCache(args.cache))
    kernel = make_kernel(args.kernel)
    matrix = convert_for_kernel(
        build_case_matrix(args.case, args.preset).matrix, args.kernel
    )
    result = autotune(
        matrix,
        kernel,
        device=args.device,
        n_devices=args.dist_devices,
        seed=args.seed,
    )
    entry = result.entry
    summary = Table(["metric", "value"],
                    title=f"Autotune — {args.case} / {args.kernel}")
    summary.add_row(["cache", "HIT" if result.cache_hit else "miss (swept)"])
    summary.add_row(["key", entry.key.key_string()])
    summary.add_row(["threads/block", entry.config.threads_per_block])
    summary.add_row(["shards", entry.config.n_shards])
    summary.add_row(["shard policy", entry.config.shard_policy])
    summary.add_row(["placement", entry.config.placement])
    summary.add_row(["dispatch", entry.config.dispatch])
    summary.add_row(["modeled wall (us)", entry.modeled_wall_s * 1e6])
    summary.add_row(["single device (us)", entry.single_device_time_s * 1e6])
    summary.add_row(["speedup", entry.speedup])
    summary.add_row(["candidates tried", entry.candidates_tried])
    summary.add_row(["bitwise validated",
                     "yes" if entry.bitwise_validated else "NO"])
    print(summary.render())
    if result.outcomes and args.verbose:
        detail = Table(
            ["tpb", "shards", "policy", "dispatch", "wall_us", "bitwise"],
            title="Candidates",
        )
        for o in sorted(result.outcomes, key=lambda o: o.modeled_wall_s):
            detail.add_row([
                o.config.threads_per_block, o.config.n_shards,
                o.config.shard_policy, o.config.dispatch,
                o.modeled_wall_s * 1e6,
                "yes" if o.bitwise_identical else "NO",
            ])
        print()
        print(detail.render())
    return 0 if entry.bitwise_validated else 1


def _cmd_tune_show(args: argparse.Namespace) -> int:
    """``repro-rtdose tune show``: list the tuning cache's entries."""
    from repro.tune import TUNE_CACHE_ENV, TuningCache, get_tune_cache

    if args.cache:
        cache = TuningCache(args.cache)
    else:
        cache = get_tune_cache()
        if cache.path is None and os.environ.get(TUNE_CACHE_ENV) is None:
            print("no cache path: pass --cache PATH or set "
                  f"{TUNE_CACHE_ENV} (showing in-memory cache)")
    entries = cache.entries()
    if not entries:
        print("tuning cache is empty")
        return 0
    table = Table(
        ["key", "tpb", "shards", "policy", "dispatch", "wall_us",
         "speedup", "tried"],
        title=f"Tuning cache ({cache.path or 'memory'})",
    )
    for entry in entries:
        table.add_row([
            entry.key.key_string(),
            entry.config.threads_per_block,
            entry.config.n_shards,
            entry.config.shard_policy,
            entry.config.dispatch,
            entry.modeled_wall_s * 1e6,
            entry.speedup,
            entry.candidates_tried,
        ])
    print(table.render())
    return 0


def _cmd_workloads_list(_: argparse.Namespace) -> int:
    """``repro-rtdose workloads list``: the registered workload families."""
    from repro.workloads import get_workload, workload_names

    table = Table(
        ["workload", "dtype", "B/nnz", "B/row", "ensemble", "description"],
        title="Workload registry",
    )
    for name in workload_names():
        spec = get_workload(name)
        table.add_row([
            spec.name,
            spec.value_dtype,
            spec.cost_model.nnz_cost,
            spec.cost_model.row_cost,
            "yes" if spec.ensemble else "",
            spec.description,
        ])
    print(table.render())
    return 0


def _record_workload_generate(name: str, preset: str, scenarios) -> None:
    """Record one ``workload_generate`` artifact entry per scenario."""
    from repro.workloads import structure_stats

    if not artifact_mod.enabled():
        return
    for index, (scenario_name, matrix) in enumerate(scenarios):
        stats = structure_stats(matrix)
        artifact_mod.record(
            "workload_generate",
            workload=name, scenario=index, scenario_name=scenario_name,
            preset=preset, **stats,
        )


def _cmd_workloads_run(args: argparse.Namespace) -> int:
    """``repro-rtdose workloads run``: generate one family + bitwise audit."""
    from repro.workloads import (
        audit_workload,
        generate,
        get_workload,
        scenario_matrices,
        structure_stats,
    )

    spec = get_workload(args.workload)
    product = generate(args.workload, seed=args.seed, preset=args.preset)
    scenarios = scenario_matrices(product)
    _record_workload_generate(args.workload, args.preset, scenarios)

    structure = Table(
        ["scenario", "rows", "cols", "nnz", "density", "empty rows",
         "mean row", "p95 row", "bandwidth"],
        title=f"Workload {spec.name!r} ({args.preset}, seed {args.seed})",
    )
    for scenario_name, matrix in scenarios:
        stats = structure_stats(matrix)
        structure.add_row([
            scenario_name, stats["n_rows"], stats["n_cols"], stats["nnz"],
            f"{100 * stats['density']:.2f}%",
            f"{100 * stats['empty_row_fraction']:.1f}%",
            f"{stats['mean_row_length']:.1f}", stats["p95_row_length"],
            stats["bandwidth"],
        ])
    print(structure.render())
    fingerprint = structure_stats(scenarios[0][1])["fingerprint"]
    print(f"structure fingerprint (nominal): {fingerprint}")
    print()

    report = audit_workload(
        args.workload,
        seed=args.seed,
        preset=args.preset,
        precision=args.precision,
        shard_counts=tuple(args.shards),
        device_name=args.device,
        product=product,
    )
    audit = Table(
        ["execution path", "bitwise identical"],
        title=f"Ensemble bitwise audit — stack sha256 "
              f"{report.stack_sha256[:16]}…",
    )
    for n_shards, bitwise in sorted(report.shards_bitwise.items()):
        audit.add_row([f"sharded x{n_shards}", "yes" if bitwise else "NO"])
    for pass_name, bitwise in report.serve_bitwise.items():
        audit.add_row([f"serve {pass_name}", "yes" if bitwise else "NO"])
    print(audit.render())
    if not report.all_bitwise:
        print("WORKLOAD DOSE STACK NOT BITWISE IDENTICAL", file=sys.stderr)
        return 1
    return 0


def _cmd_workloads_bench(args: argparse.Namespace) -> int:
    """``repro-rtdose workloads bench``: structure + scaling per family."""
    from repro.bench.harness import convert_for_kernel
    from repro.bench.recording import (
        workloads_bench_from_artifact,
        workloads_bench_record,
        write_workloads_bench,
    )
    from repro.dist import strong_scaling_sweep
    from repro.kernels.dispatch import make_kernel
    from repro.tune import TuningCache, autotune, set_tune_cache
    from repro.workloads import (
        audit_workload,
        generate,
        scenario_matrices,
        structure_stats,
        workload_names,
    )

    if args.cache:
        set_tune_cache(TuningCache(args.cache))
    names = args.workload or list(workload_names())
    kernel = make_kernel(args.kernel)
    shard_counts = tuple(args.shards)
    workload_entries = []
    for name in names:
        product = generate(name, seed=args.seed, preset=args.preset)
        scenarios = scenario_matrices(product)
        _record_workload_generate(name, args.preset, scenarios)
        nominal = scenarios[0][1]
        stats = structure_stats(nominal)
        converted = convert_for_kernel(nominal, args.kernel)
        tuned = autotune(
            converted, kernel,
            device=args.device, n_devices=max(shard_counts),
            seed=args.seed,
        )
        sweep = strong_scaling_sweep(
            case=f"workload:{name}",
            kernel_name=args.kernel,
            shard_counts=shard_counts,
            device_name=args.device,
            seed=args.seed,
            matrix=converted,
        )
        audit = audit_workload(
            name,
            seed=args.seed,
            preset=args.preset,
            precision=args.kernel,
            shard_counts=shard_counts,
            device_name=args.device,
            product=product,
        )
        all_bitwise = sweep.all_bitwise_identical and audit.all_bitwise
        workload_entries.append({
            "workload": name,
            "preset": args.preset,
            "n_scenarios": len(scenarios),
            "structure": stats,
            "tuned": {
                "cache_hit": tuned.cache_hit,
                "key": tuned.entry.key.key_string(),
                "threads_per_block": tuned.entry.config.threads_per_block,
                "n_shards": tuned.entry.config.n_shards,
                "shard_policy": tuned.entry.config.shard_policy,
                "dispatch": tuned.entry.config.dispatch,
            },
            "scaling": sweep.record(),
            "audit": {
                "stack_sha256": audit.stack_sha256,
                "shards_bitwise": {
                    str(k): v for k, v in audit.shards_bitwise.items()
                },
                "serve_bitwise": dict(audit.serve_bitwise),
            },
            "all_bitwise_identical": all_bitwise,
        })
        print(sweep.render())
        print(
            f"workload {name}: fingerprint {stats['fingerprint'][:16]}… "
            f"tuned tpb={tuned.entry.config.threads_per_block} "
            f"shards={tuned.entry.config.n_shards} "
            f"bitwise={'yes' if all_bitwise else 'NO'}"
        )
        print()
    record = workloads_bench_record(
        seed=args.seed,
        preset=args.preset,
        kernel=args.kernel,
        device=args.device,
        shard_counts=list(shard_counts),
        workloads=workload_entries,
    )
    if artifact_mod.enabled():
        artifact_mod.record("workloads_bench", record=record)
    print(
        f"workloads: {len(workload_entries)}, distinct tuning "
        f"fingerprints: {record['distinct_fingerprints']}, all bitwise: "
        f"{'yes' if record['all_bitwise_identical'] else 'NO'}"
    )
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        sink = artifact_mod.get_sink()
        if sink.enabled:
            # BENCH_workloads.json is a view of the artifact's
            # workloads_bench phase.
            write_workloads_bench(
                workloads_bench_from_artifact(sink.artifact()), args.json
            )
        else:
            write_workloads_bench(record, args.json)
        print(f"bench record written to {args.json}")
    return 0 if record["all_bitwise_identical"] else 1


def _cmd_dist_partition_report(args: argparse.Namespace) -> int:
    """``repro-rtdose dist partition-report``: equal-rows vs equal-nnz."""
    from repro.dist.bench import partition_report

    table = partition_report(
        cases=args.case or None,
        preset=args.preset,
        shard_counts=args.shards,
    )
    print(table.render())
    return 0


def _opt_run_params(args: argparse.Namespace, specs) -> dict:
    """Everything ``opt resume`` needs to reconstruct the optimization."""
    from repro.opt.dist import specs_to_dicts

    return {
        "opt_id": args.opt_id,
        "case": args.case,
        "preset": args.preset,
        "precision": args.precision,
        "objective_preset": args.objective,
        "objective": specs_to_dicts(specs),
        "seed": args.seed,
        "shards": args.shards,
        "dist_devices": args.dist_devices,
        "dist_placement": args.dist_placement,
        "tolerance": args.tolerance,
        "max_iterations": args.max_iterations,
        "initial_step": args.initial_step,
        "checkpoint_every": args.checkpoint_every,
    }


def _render_opt_outcome(outcome, title: str) -> None:
    table = Table(["quantity", "value"], title=title)
    table.add_row(["terminal state", outcome.terminal.value])
    table.add_row(["iterations", outcome.state.iteration])
    table.add_row(["objective", f"{outcome.state.value:.8e}"])
    table.add_row(["projected-gradient norm",
                   f"{outcome.state.pg_norm:.6e}"])
    table.add_row(["objective/gradient evaluations", outcome.state.n_evals])
    if outcome.detail:
        table.add_row(["detail", outcome.detail])
    print(table.render())


def _render_opt_audit(audit) -> None:
    table = Table(["leg", "points", "status"],
                  title="Trajectory audit (bitwise vs reference)")
    for label, n_points, status in audit.legs:
        table.add_row([label, n_points, status])
    print(table.render())
    for problem in audit.problems:
        print(f"  {problem}", file=sys.stderr)


def _cmd_opt_run(args: argparse.Namespace) -> int:
    """``repro-rtdose opt run``: one sharded optimization + trajectory
    audit (shard counts, batching orders, kill/resume)."""
    from repro.bench.harness import convert_for_kernel
    from repro.opt.dist import (
        OBJECTIVE_PRESETS,
        TerminalState,
        audit_optimization,
        run_sharded,
        warm_start,
    )
    from repro.plans.cases import build_case_matrix

    master = build_case_matrix(args.case, args.preset).matrix
    matrix = convert_for_kernel(master, args.precision)
    specs = OBJECTIVE_PRESETS[args.objective]
    w0 = warm_start(args.seed, matrix.n_cols, args.opt_id)
    if artifact_mod.enabled():
        artifact_mod.set_param("optimization", _opt_run_params(args, specs))
    outcome = run_sharded(
        matrix, args.precision, specs, w0, args.shards,
        tolerance=args.tolerance, max_iterations=args.max_iterations,
        initial_step=args.initial_step,
        devices=args.dist_devices or 0, placement=args.dist_placement,
        halt_after=args.halt_after, opt_id=args.opt_id,
        checkpoint_every=args.checkpoint_every, seed=args.seed,
    )
    if artifact_mod.enabled():
        artifact_mod.record(
            "opt_run", opt_id=args.opt_id, tenant="cli",
            plan_id=args.case, precision=args.precision,
            terminal=outcome.terminal.value,
            iterations=outcome.state.iteration,
            n_evals=outcome.state.n_evals,
            objective=outcome.state.value,
            objective_hex=float(outcome.state.value).hex(),
            shards=args.shards, detail=outcome.detail,
        )
    _render_opt_outcome(
        outcome,
        f"Optimization — {args.case} / {args.precision} / "
        f"{args.objective} (shards={args.shards})",
    )
    if outcome.terminal is TerminalState.FAILED:
        print(f"OPTIMIZATION FAILED: {outcome.detail}", file=sys.stderr)
        return 1
    if outcome.terminal is TerminalState.PREEMPTED:
        print(
            f"\nhalted after iteration {args.halt_after}; checkpoint "
            "recorded — resume with: repro-rtdose opt resume <run-dir>"
        )
        return 0
    if args.no_audit:
        return 0
    print()
    audit = audit_optimization(
        matrix, args.precision, specs, seed=args.seed, w0=w0,
        tolerance=args.tolerance, max_iterations=args.max_iterations,
        initial_step=args.initial_step, shard_counts=args.audit_shards,
        devices=args.dist_devices or 0, placement=args.dist_placement,
        include_service=not args.no_service_audit,
    )
    _render_opt_audit(audit)
    if not audit.ok:
        print("TRAJECTORY NOT BITWISE IDENTICAL ACROSS LEGS",
              file=sys.stderr)
        return 1
    return 0


def _cmd_opt_resume(args: argparse.Namespace) -> int:
    """``repro-rtdose opt resume``: continue a killed optimization from
    its recorded checkpoint and prove the stitched trajectory matches an
    uninterrupted run bit for bit."""
    from repro.bench.harness import convert_for_kernel
    from repro.dist import DevicePool
    from repro.kernels.dispatch import make_kernel
    from repro.opt.dist import (
        CheckpointError,
        DistributedObjectiveEvaluator,
        build_objective,
        compare_trajectories,
        points_from_artifact_entries,
        restore_state,
        run_reference,
        run_to_completion,
        specs_from_dicts,
        warm_start,
    )
    from repro.plans.cases import build_case_matrix

    data = artifact_mod.read_artifact(_artifact_file(args.path))
    params = data.get("params", {}).get("optimization")
    if not params:
        print("opt resume: artifact has no 'optimization' params "
              "(was it written by 'opt run'?)", file=sys.stderr)
        return 2
    opt_id = params["opt_id"]
    checkpoints = [
        c for c in data.get("phases", {}).get("opt_checkpoint", [])
        if c.get("opt_id") == opt_id
    ]
    if not checkpoints:
        print(f"opt resume: no opt_checkpoint entries for {opt_id!r}",
              file=sys.stderr)
        return 2
    checkpoint = max(checkpoints, key=lambda c: int(c["iteration"]))
    try:
        state = restore_state(checkpoint["state"])
    except CheckpointError as exc:
        print(f"opt resume: {exc}", file=sys.stderr)
        return 2
    print(
        f"resuming {opt_id!r} from iteration {state.iteration} "
        f"(checkpoint reason: {checkpoint.get('reason')})"
    )

    master = build_case_matrix(params["case"], params["preset"]).matrix
    matrix = convert_for_kernel(master, params["precision"])
    specs = specs_from_dicts(params["objective"])
    shards = int(params["shards"])
    kernel = make_kernel(params["precision"])
    evaluator = DistributedObjectiveEvaluator(
        matrix, kernel, shards,
        pool=DevicePool.homogeneous(
            params.get("dist_devices") or min(shards, 4)
        ),
        placement=params.get("dist_placement", "memory"),
    )
    if artifact_mod.enabled():
        artifact_mod.set_param("optimization", dict(params))
    outcome = run_to_completion(
        evaluator, build_objective(specs, matrix), state,
        opt_id=opt_id, tolerance=float(params["tolerance"]),
        max_iterations=int(params["max_iterations"]),
        initial_step=float(params["initial_step"]),
        checkpoint_every=int(params.get("checkpoint_every") or 0),
        seed=params.get("seed"),
    )
    _render_opt_outcome(outcome, f"Resumed optimization — {opt_id}")
    if args.no_audit:
        return 0

    # The resume proof: recorded prefix + resumed suffix must equal an
    # uninterrupted reference run bit for bit.
    prefix = [
        p for p in points_from_artifact_entries(
            data.get("phases", {}).get("opt_iteration", []), opt_id
        )
        if p.iteration <= state.iteration
    ]
    stitched = prefix + list(outcome.points)
    w0 = warm_start(int(params["seed"]), matrix.n_cols, opt_id)
    reference = run_reference(
        matrix, params["precision"], specs, w0,
        tolerance=float(params["tolerance"]),
        max_iterations=int(params["max_iterations"]),
        initial_step=float(params["initial_step"]),
        opt_id=f"{opt_id}-reference",
    )
    problems = compare_trajectories(
        reference.points, stitched, "kill/resume"
    )
    print(
        f"\nresume audit: {len(prefix)} recorded + {len(outcome.points)} "
        f"resumed points vs {len(reference.points)} uninterrupted — "
        + ("bitwise identical" if not problems else "DIVERGED")
    )
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    if problems:
        print("RESUMED TRAJECTORY NOT BITWISE IDENTICAL", file=sys.stderr)
        return 1
    return 0


def _cmd_opt_sweep(args: argparse.Namespace) -> int:
    """``repro-rtdose opt sweep``: the full multi-leg trajectory audit
    (shard counts, batching orders, kill/resume) as a command."""
    from repro.bench.harness import convert_for_kernel
    from repro.opt.dist import OBJECTIVE_PRESETS, audit_optimization
    from repro.plans.cases import build_case_matrix

    witness = None
    if getattr(args, "lock_witness", False):
        from repro.obs.lockwitness import install_witness, uninstall_witness

        witness = install_witness()
    try:
        master = build_case_matrix(args.case, args.preset).matrix
        matrix = convert_for_kernel(master, args.precision)
        audit = audit_optimization(
            matrix, args.precision, OBJECTIVE_PRESETS[args.objective],
            seed=args.seed, tolerance=args.tolerance,
            max_iterations=args.max_iterations,
            initial_step=args.initial_step, shard_counts=args.shards,
            include_service=not args.no_service,
        )
    finally:
        if witness is not None:
            uninstall_witness()
    _render_opt_audit(audit)
    if artifact_mod.enabled():
        artifact_mod.record(
            "opt_sweep", case=args.case, preset=args.preset,
            precision=args.precision, objective=args.objective,
            seed=args.seed, shard_counts=list(args.shards),
            reference_iterations=audit.reference_iterations,
            ok=audit.ok,
            legs=[
                {"leg": label, "points": n, "status": status}
                for label, n, status in audit.legs
            ],
            problems=list(audit.problems),
        )
    witness_rc = _witness_report(witness) if witness is not None else 0
    if witness_rc:
        print("LOCK-ORDER VIOLATIONS WITNESSED", file=sys.stderr)
    if not audit.ok:
        print("TRAJECTORY NOT BITWISE IDENTICAL ACROSS LEGS",
              file=sys.stderr)
        return 1
    return witness_rc


def _cmd_opt_loadtest(args: argparse.Namespace) -> int:
    """``repro-rtdose opt loadtest``: concurrent optimizations through
    the service, audited bitwise against standalone re-runs."""
    from repro.opt.dist import OptLoadConfig, run_opt_loadtest

    witness = None
    if getattr(args, "lock_witness", False):
        from repro.obs.lockwitness import install_witness, uninstall_witness

        witness = install_witness()
    try:
        report = run_opt_loadtest(OptLoadConfig(
            n_optimizations=args.optimizations,
            n_tenants=args.tenants,
            n_plans=args.plans,
            precision=args.precision,
            objective_preset=args.objective,
            max_iterations=args.max_iterations,
            tolerance=args.tolerance,
            n_workers=args.workers,
            serve_workers=args.serve_workers,
            shards=args.shards,
            quantum=args.quantum,
            checkpoint_every=args.checkpoint_every,
            tenant_budget=args.tenant_budget,
            seed=args.seed,
            audit=not args.no_audit,
        ))
    finally:
        if witness is not None:
            uninstall_witness()
    print(report.render())
    witness_rc = _witness_report(witness) if witness is not None else 0
    if witness_rc:
        print("LOCK-ORDER VIOLATIONS WITNESSED", file=sys.stderr)
    failed = report.terminal_counts.get("failed", 0)
    if failed:
        print(f"{failed} OPTIMIZATION(S) FAILED", file=sys.stderr)
        return 1
    if report.bitwise_checked and report.bitwise_ok < report.bitwise_checked:
        print("TRAJECTORIES NOT BITWISE IDENTICAL TO STANDALONE RE-RUNS",
              file=sys.stderr)
        return 1
    return witness_rc


def _artifact_file(path: str) -> Path:
    """Resolve a run directory or artifact file to the artifact path."""
    p = Path(path)
    return p / "artifact.json" if p.is_dir() else p


def _cmd_artifact_show(args: argparse.Namespace) -> int:
    """``repro-rtdose artifact show``: summarize one run record."""
    data = artifact_mod.read_artifact(_artifact_file(args.path))
    run = data.get("run", {})
    table = Table(["field", "value"], title="Artifact record")
    table.add_row(["schema", data.get("schema")])
    table.add_row(["run id", run.get("run_id")])
    table.add_row(["status", run.get("status")])
    table.add_row(["exit code", run.get("exit_code")])
    table.add_row(["created", run.get("created_iso")])
    table.add_row(["command", " ".join(run.get("command", []))])
    env = data.get("environment", {})
    table.add_row(["package", env.get("package_version")])
    table.add_row(["python", env.get("python_version")])
    table.add_row(["events file", data.get("events") or "(none)"])
    for name in sorted(data.get("params", {})):
        table.add_row(["param", name])
    for phase, entries in sorted(data.get("phases", {}).items()):
        table.add_row([f"phase[{phase}]", f"{len(entries)} entries"])
    table.add_row(["metrics recorded", len(data.get("metrics", {}))])
    print(table.render())
    return 0


def _cmd_artifact_validate(args: argparse.Namespace) -> int:
    """``repro-rtdose artifact validate``: check the v1 invariants."""
    path = _artifact_file(args.path)
    try:
        data = artifact_mod.read_artifact(path)
    except (OSError, ValueError) as exc:
        print(f"artifact validate: {exc}", file=sys.stderr)
        return 1
    problems = artifact_mod.validate_artifact(data)
    for problem in problems:
        print(f"  {problem}")
    errors = sum(1 for p in problems if p.severity == "error")
    warnings = len(problems) - errors
    failed = errors > 0 or (args.strict and warnings > 0)
    print(
        f"{path}: {errors} error(s), {warnings} warning(s) — "
        + ("INVALID" if failed else "valid")
    )
    return 1 if failed else 0


def _cmd_artifact_replay(args: argparse.Namespace) -> int:
    """``repro-rtdose artifact replay``: re-execute recorded requests and
    assert bitwise equality against the recorded dose hashes."""
    from repro.serve.replay import replay_requests
    from repro.util.errors import ReproError

    data = artifact_mod.read_artifact(_artifact_file(args.path))
    try:
        outcomes = replay_requests(
            data, request_ids=args.request or None, limit=args.limit
        )
    except ReproError as exc:
        print(f"artifact replay: {exc}", file=sys.stderr)
        return 2
    if not outcomes:
        print("artifact replay: no replayable requests recorded",
              file=sys.stderr)
        return 2
    table = Table(
        ["request", "plan", "precision", "recorded", "replayed", "bitwise"],
        title="Replay audit",
    )
    mismatches = 0
    for o in outcomes:
        if not o.match:
            mismatches += 1
        table.add_row(
            [
                o.request_id, o.plan_id, o.precision,
                o.recorded_sha256[:12], o.replayed_sha256[:12],
                "yes" if o.match else "NO",
            ]
        )
    print(table.render())
    print(
        f"\n{len(outcomes) - mismatches}/{len(outcomes)} replayed requests "
        "bitwise identical to the recorded doses"
    )
    if mismatches:
        print("REPLAY MISMATCH: served doses are not reproducible",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro-rtdose trace <subcmd> ...``: run under tracing + report."""
    rest = [a for a in args.rest if a != "--"]
    if not rest or rest[0] == "trace":
        print("usage: repro-rtdose trace [--out PATH] <subcommand> ...",
              file=sys.stderr)
        return 2
    sub_args = build_parser().parse_args(rest)
    previous = get_tracer()
    tracer = enable_tracing()
    try:
        rc = sub_args.func(sub_args)
    finally:
        set_tracer(previous)
    print(span_summary_table(tracer).render())
    print()
    print(get_registry().render_table())
    if args.out:
        path = write_chrome_trace(tracer, args.out)
        print(f"\nChrome trace written to {path} "
              "(load in https://ui.perfetto.dev)")
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rtdose",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # Observability flags shared by every subcommand.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record spans and write Chrome-trace JSON (Perfetto-loadable)",
    )
    obs_flags.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="also write spans as newline-delimited JSON (implies tracing)",
    )
    obs_flags.add_argument(
        "--metrics", action="store_true",
        help="print the metrics registry summary after the command",
    )
    obs_flags.add_argument(
        "--no-artifact", action="store_true",
        help="do not write the per-run artifact record "
             "(artifact.json + events.ndjson)",
    )
    obs_flags.add_argument(
        "--artifact-dir", metavar="DIR", default=None,
        help="base directory for per-run artifact records "
             "(default: $REPRO_ARTIFACT_DIR or ./runs)",
    )
    obs_flags.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: INFO logging, -vv: DEBUG",
    )
    obs_flags.add_argument(
        "-q", "--quiet", action="store_true", help="errors only",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser(
        "info", parents=[obs_flags],
        help="device catalogue and case inventory",
    )
    p_info.set_defaults(func=_cmd_info)

    for name in list(ALL_EXPERIMENTS) + ["all"]:
        p = sub.add_parser(name, parents=[obs_flags], help=f"regenerate {name}")
        p.add_argument("--csv",
                       help="directory for raw-row CSVs + run manifest")
        p.add_argument("--chart", action="store_true",
                       help="render ASCII bar charts of the series")
        p.add_argument("--preset", default=None,
                       choices=["tiny", "bench", "structure"],
                       help="override the experiment's matrix-scale preset")
        p.set_defaults(func=_cmd_experiment, experiment=name)

    p_spmv = sub.add_parser(
        "spmv", parents=[obs_flags], help="run a single kernel x case point"
    )
    p_spmv.add_argument("--kernel", default="half_double", choices=kernel_names())
    p_spmv.add_argument("--case", default="Liver 1", choices=case_names())
    p_spmv.add_argument("--device", default="a100")
    p_spmv.add_argument("--preset", default="bench",
                        choices=["tiny", "bench", "structure"])
    p_spmv.add_argument("--threads-per-block", type=int, default=None)
    p_spmv.add_argument(
        "--bench-scale", action="store_true",
        help="report at bench scale instead of extrapolating to paper scale",
    )
    p_spmv.set_defaults(func=_cmd_spmv)

    p_fig1 = sub.add_parser(
        "fig1", parents=[obs_flags],
        help="beam's-eye-view spot-scanning illustration (Figure 1)",
    )
    p_fig1.add_argument("--case", default="Liver 1", choices=case_names())
    p_fig1.add_argument("--preset", default="tiny",
                        choices=["tiny", "bench", "structure"])
    p_fig1.add_argument("--layer", type=int, default=0)
    p_fig1.set_defaults(func=_cmd_fig1)

    p_prof = sub.add_parser(
        "profile", parents=[obs_flags],
        help="Nsight-Compute-style report for one kernel run",
    )
    p_prof.add_argument("--kernel", default="half_double", choices=kernel_names())
    p_prof.add_argument("--case", default="Liver 1", choices=case_names())
    p_prof.add_argument("--device", default="a100")
    p_prof.add_argument("--preset", default="bench",
                        choices=["tiny", "bench", "structure"])
    p_prof.add_argument("--threads-per-block", type=int, default=None)
    p_prof.set_defaults(func=_cmd_profile)

    p_analyze = sub.add_parser(
        "analyze", parents=[obs_flags],
        help="run the static contract checkers (reproducibility, "
             "precision, traffic model)",
    )
    p_analyze.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    p_analyze.add_argument(
        "--format", default="table", choices=["table", "json"],
        help="output format (json emits the repro.analyze-report/v1 schema)",
    )
    p_analyze.add_argument(
        "--suppress", action="append", default=[], metavar="RULE",
        help="drop findings of this rule id (repeatable); unknown ids "
             "are rejected",
    )
    p_analyze.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_analyze.add_argument(
        "--include", action="append", default=[], metavar="PATH",
        help="also lint this file or directory with the concurrency "
             "checker (repeatable; fixtures, out-of-tree modules)",
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_serve = sub.add_parser(
        "serve",
        help="dose-evaluation service: demo run and closed-loop loadtest",
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)
    serve_flags = argparse.ArgumentParser(add_help=False)
    serve_flags.add_argument("--requests", type=int, default=200,
                             help="total evaluation requests")
    serve_flags.add_argument("--clients", type=int, default=4,
                             help="concurrent closed-loop clients")
    serve_flags.add_argument("--burst", type=int, default=4,
                             help="same-plan requests per client burst")
    serve_flags.add_argument("--workers", type=int, default=2,
                             help="evaluation worker threads")
    serve_flags.add_argument("--plans", type=int, default=3,
                             help="number of synthetic plans")
    serve_flags.add_argument("--batch-size", type=int, default=8,
                             help="micro-batch size cap")
    serve_flags.add_argument("--batch-window-ms", type=float, default=2.0,
                             help="coalescing window in milliseconds")
    serve_flags.add_argument("--precision", default="half_double",
                             choices=kernel_names(),
                             help="kernel/precision to serve with")
    serve_flags.add_argument("--deadline-ms", type=float, default=None,
                             help="per-request queueing deadline")
    serve_flags.add_argument("--seed", type=int, default=20210419,
                             help="workload seed (plans + weights)")
    serve_flags.add_argument("--case", action="append", default=[],
                             choices=case_names(), metavar="CASE",
                             help="serve Table I cases instead of synthetic "
                                  "plans (repeatable)")
    serve_flags.add_argument("--preset", default="tiny",
                             choices=["tiny", "bench", "structure", "probe"],
                             help="matrix-scale preset for --case or "
                                  "--workload plans")
    serve_flags.add_argument("--shards", type=int, default=1,
                             help="row shards per evaluation (>1 serves "
                                  "through the repro.dist sharded backend)")
    serve_flags.add_argument("--dist-devices", type=int, default=None,
                             help="simulated devices in the sharded pool "
                                  "(default: min(shards, 4))")
    serve_flags.add_argument("--dist-placement", default="memory",
                             choices=["memory", "round_robin"],
                             help="shard placement policy")

    p_serve_run = serve_sub.add_parser(
        "run", parents=[obs_flags, serve_flags],
        help="start a service and serve a sequential demo stream",
    )
    p_serve_run.set_defaults(func=_cmd_serve_run)

    p_serve_lt = serve_sub.add_parser(
        "loadtest", parents=[obs_flags, serve_flags],
        help="closed-loop load test: latency percentiles, amortization, "
             "bitwise audit",
    )
    p_serve_lt.add_argument("--workload", default="synthetic",
                            choices=["synthetic"] + list(workload_names()),
                            help="drive registered workload plans instead "
                                 "of synthetic ones (ensemble families "
                                 "submit scenario-ensemble requests)")
    p_serve_lt.add_argument("--csv", default=None,
                            help="write per-request records to this CSV path")
    p_serve_lt.add_argument("--lock-witness", action="store_true",
                            help="run under the runtime lock-order witness; "
                                 "report violations and exit non-zero on any")
    p_serve_lt.set_defaults(func=_cmd_serve_loadtest)

    p_dist = sub.add_parser(
        "dist",
        help="sharded multi-device evaluation: run, strong-scaling sweep, "
             "partition report",
    )
    dist_sub = p_dist.add_subparsers(dest="dist_command", required=True)
    dist_flags = argparse.ArgumentParser(add_help=False)
    dist_flags.add_argument("--case", default="Liver 1", choices=case_names())
    dist_flags.add_argument("--preset", default="tiny",
                            choices=["tiny", "bench", "structure"])
    dist_flags.add_argument("--kernel", default="half_double",
                            choices=kernel_names())
    dist_flags.add_argument("--device", default="A100",
                            help="device type of the simulated pool")
    dist_flags.add_argument("--seed", type=int, default=20210419)

    p_dist_run = dist_sub.add_parser(
        "run", parents=[obs_flags, dist_flags],
        help="one sharded evaluation with a bitwise check against the "
             "single-device run",
    )
    p_dist_run.add_argument("--shards", type=int, default=4)
    p_dist_run.add_argument("--dist-devices", type=int, default=None,
                            help="pool size (default: min(shards, 4))")
    p_dist_run.add_argument("--dist-placement", default="memory",
                            choices=["memory", "round_robin"])
    p_dist_run.add_argument("--retry-budget", type=int, default=2,
                            help="total retries allowed per evaluation")
    p_dist_run.add_argument("--fail-shard", type=int, action="append",
                            default=[], metavar="K",
                            help="inject one device failure on shard K "
                                 "(repeatable; exercises the retry path)")
    p_dist_run.set_defaults(func=_cmd_dist_run)

    p_dist_sweep = dist_sub.add_parser(
        "sweep", parents=[obs_flags, dist_flags],
        help="strong-scaling sweep (one device per shard), optional "
             "BENCH_dist.json record",
    )
    p_dist_sweep.add_argument("--shards", type=int, nargs="+",
                              default=[1, 2, 4, 8],
                              help="shard counts to sweep")
    p_dist_sweep.add_argument("--policy", default="balanced",
                              choices=["balanced", "cost", "equal_rows"],
                              help="row partition policy")
    p_dist_sweep.add_argument("--dispatch", default="graph",
                              choices=["graph", "launch"],
                              help="dispatch pricing: one graph replay per "
                                   "device vs one launch per shard")
    p_dist_sweep.add_argument("--tpb", type=int, default=None,
                              metavar="THREADS",
                              help="threads per block for every shard "
                                   "(default: kernel's Fig-4 default)")
    p_dist_sweep.add_argument("--repeats", type=int, default=3,
                              help="steady-state evaluations per point on "
                                   "the one compiled evaluator")
    p_dist_sweep.add_argument("--tuned", action="store_true",
                              help="consult the tuning cache for this "
                                   "problem (tunes once on a cold cache); "
                                   "overrides --policy/--dispatch/--tpb")
    p_dist_sweep.add_argument("--json", default=None, metavar="PATH",
                              help="write the repro.dist-bench/v1 record "
                                   "here")
    p_dist_sweep.add_argument("--lock-witness", action="store_true",
                              help="run under the runtime lock-order "
                                   "witness; report violations and exit "
                                   "non-zero on any")
    p_dist_sweep.set_defaults(func=_cmd_dist_sweep)

    p_dist_pr = dist_sub.add_parser(
        "partition-report", parents=[obs_flags],
        help="equal-rows vs equal-nnz imbalance per test matrix",
    )
    p_dist_pr.add_argument("--case", action="append", default=[],
                           choices=case_names(), metavar="CASE",
                           help="restrict to these cases (repeatable; "
                                "default: all six)")
    p_dist_pr.add_argument("--preset", default="tiny",
                           choices=["tiny", "bench", "structure"])
    p_dist_pr.add_argument("--shards", type=int, nargs="+", default=[2, 4, 8],
                           help="shard counts to tabulate")
    p_dist_pr.set_defaults(func=_cmd_dist_partition_report)

    p_tune = sub.add_parser(
        "tune",
        help="Fig-4-style execution autotuner: sweep block size × shard "
             "count × policy, cache the bitwise-validated winner",
    )
    tune_sub = p_tune.add_subparsers(dest="tune_command", required=True)
    tune_flags = argparse.ArgumentParser(add_help=False)
    tune_flags.add_argument("--cache", default=None, metavar="PATH",
                            help="tuning-cache JSON path (default: "
                                 "$REPRO_TUNE_CACHE, else in-memory)")

    p_tune_run = tune_sub.add_parser(
        "run", parents=[obs_flags, tune_flags],
        help="tune one (case, kernel) problem; warm cache entries are "
             "returned without sweeping",
    )
    p_tune_run.add_argument("--case", default="Liver 1",
                            choices=case_names())
    p_tune_run.add_argument("--preset", default="tiny",
                            choices=["tiny", "bench", "structure"])
    p_tune_run.add_argument("--kernel", default="half_double",
                            choices=kernel_names())
    p_tune_run.add_argument("--device", default="A100",
                            help="device type of the simulated pool")
    p_tune_run.add_argument("--dist-devices", type=int, default=4,
                            help="device-pool width to tune for")
    p_tune_run.add_argument("--seed", type=int, default=20210419,
                            help="probe-vector seed for the bitwise audit")
    p_tune_run.add_argument("--verbose-candidates", dest="verbose",
                            action="store_true",
                            help="also print every candidate's outcome")
    p_tune_run.set_defaults(func=_cmd_tune_run)

    p_tune_show = tune_sub.add_parser(
        "show", parents=[obs_flags, tune_flags],
        help="list the tuning cache's entries",
    )
    p_tune_show.set_defaults(func=_cmd_tune_show)

    p_wl = sub.add_parser(
        "workloads",
        help="typed workload families: list the registry, generate + "
             "bitwise-audit one family, or benchmark structure/scaling "
             "across families",
    )
    wl_sub = p_wl.add_subparsers(dest="workloads_command", required=True)
    wl_flags = argparse.ArgumentParser(add_help=False)
    wl_flags.add_argument("--seed", type=int, default=0,
                          help="generator seed (bitwise-stable)")
    wl_flags.add_argument("--preset", default="tiny",
                          choices=list(WORKLOAD_PRESETS))
    wl_flags.add_argument("--device", default="A100",
                          help="device type of the simulated pool")
    wl_flags.add_argument("--shards", type=int, nargs="+",
                          default=[1, 2, 4, 8],
                          help="shard counts the audit/scaling sweeps")

    p_wl_list = wl_sub.add_parser(
        "list", parents=[obs_flags],
        help="show the registered workload families and their cost models",
    )
    p_wl_list.set_defaults(func=_cmd_workloads_list)

    p_wl_run = wl_sub.add_parser(
        "run", parents=[obs_flags, wl_flags],
        help="generate one family and prove its dose stack bitwise "
             "identical across shard counts, serve batching orders, and "
             "direct evaluation",
    )
    p_wl_run.add_argument("--workload", required=True,
                          choices=list(workload_names()))
    p_wl_run.add_argument("--precision", default="half_double",
                          choices=kernel_names())
    p_wl_run.set_defaults(func=_cmd_workloads_run)

    p_wl_bench = wl_sub.add_parser(
        "bench", parents=[obs_flags, wl_flags],
        help="per-workload structure report + strong scaling + "
             "fingerprint-keyed autotune (BENCH_workloads.json)",
    )
    p_wl_bench.add_argument("--workload", action="append", default=[],
                            choices=list(workload_names()), metavar="NAME",
                            help="restrict to these families (repeatable; "
                                 "default: all registered)")
    p_wl_bench.add_argument("--kernel", default="half_double",
                            choices=kernel_names())
    p_wl_bench.add_argument("--cache", default=None, metavar="PATH",
                            help="tuning-cache JSON path (default: "
                                 "$REPRO_TUNE_CACHE, else in-memory)")
    p_wl_bench.add_argument("--json", default=None, metavar="PATH",
                            help="write the repro.workloads-bench/v1 "
                                 "record here")
    p_wl_bench.set_defaults(func=_cmd_workloads_bench)

    p_opt = sub.add_parser(
        "opt",
        help="distributed plan optimization: run, resume, trajectory "
             "sweep, concurrent loadtest",
    )
    opt_sub = p_opt.add_subparsers(dest="opt_command", required=True)
    opt_flags = argparse.ArgumentParser(add_help=False)
    opt_flags.add_argument("--case", default="Liver 1", choices=case_names())
    opt_flags.add_argument("--preset", default="tiny",
                           choices=["tiny", "bench", "structure"])
    opt_flags.add_argument("--precision", default="half_double",
                           choices=kernel_names(),
                           help="kernel/precision for dose + adjoint")
    opt_flags.add_argument("--objective", default="clinical",
                           choices=["uniform", "clinical", "dvh"],
                           help="objective preset")
    opt_flags.add_argument("--seed", type=int, default=20210419,
                           help="warm-start seed")
    opt_flags.add_argument("--tolerance", type=float, default=1e-6,
                           help="relative projected-gradient tolerance")
    opt_flags.add_argument("--max-iterations", type=int, default=30)
    opt_flags.add_argument("--initial-step", type=float, default=1.0)

    p_opt_run = opt_sub.add_parser(
        "run", parents=[obs_flags, opt_flags],
        help="one sharded optimization; by default audited bitwise "
             "across shard counts, batching orders, and kill/resume",
    )
    p_opt_run.add_argument("--opt-id", default="opt",
                           help="optimization id (artifact key)")
    p_opt_run.add_argument("--shards", type=int, default=2,
                           help="row shards per dose/adjoint evaluation")
    p_opt_run.add_argument("--dist-devices", type=int, default=None,
                           help="pool size (default: min(shards, 4))")
    p_opt_run.add_argument("--dist-placement", default="memory",
                           choices=["memory", "round_robin"])
    p_opt_run.add_argument("--checkpoint-every", type=int, default=5,
                           help="record a resumable checkpoint every N "
                                "iterations (0: terminals only)")
    p_opt_run.add_argument("--halt-after", type=int, default=None,
                           metavar="N",
                           help="simulate a kill: stop after N iterations "
                                "with a checkpoint (resume with 'opt "
                                "resume <run-dir>')")
    p_opt_run.add_argument("--audit-shards", type=int, nargs="+",
                           default=[1, 2, 4, 8],
                           help="shard counts the post-run audit compares")
    p_opt_run.add_argument("--no-service-audit", action="store_true",
                           help="skip the service (batching/arrival-order) "
                                "audit legs")
    p_opt_run.add_argument("--no-audit", action="store_true",
                           help="skip the post-run trajectory audit")
    p_opt_run.set_defaults(func=_cmd_opt_run)

    p_opt_resume = opt_sub.add_parser(
        "resume", parents=[obs_flags],
        help="continue a killed optimization from its recorded "
             "checkpoint; proves the stitched trajectory bitwise",
    )
    p_opt_resume.add_argument("path",
                              help="artifact.json path or run directory "
                                   "of the killed 'opt run'")
    p_opt_resume.add_argument("--no-audit", action="store_true",
                              help="skip the stitched-trajectory audit")
    p_opt_resume.set_defaults(func=_cmd_opt_resume)

    p_opt_sweep = opt_sub.add_parser(
        "sweep", parents=[obs_flags, opt_flags],
        help="full trajectory-determinism audit: shard counts, service "
             "batching orders, kill/resume",
    )
    p_opt_sweep.add_argument("--shards", type=int, nargs="+",
                             default=[1, 2, 4, 8],
                             help="shard counts to audit")
    p_opt_sweep.add_argument("--no-service", action="store_true",
                             help="skip the service legs")
    p_opt_sweep.add_argument("--lock-witness", action="store_true",
                             help="run under the runtime lock-order "
                                  "witness; report violations and exit "
                                  "non-zero on any")
    p_opt_sweep.set_defaults(func=_cmd_opt_sweep)

    p_opt_lt = opt_sub.add_parser(
        "loadtest", parents=[obs_flags],
        help="many concurrent optimizations through the service, "
             "audited bitwise against standalone re-runs",
    )
    p_opt_lt.add_argument("--optimizations", type=int, default=6)
    p_opt_lt.add_argument("--tenants", type=int, default=2)
    p_opt_lt.add_argument("--plans", type=int, default=2,
                          help="number of synthetic plans")
    p_opt_lt.add_argument("--precision", default="half_double",
                          choices=kernel_names())
    p_opt_lt.add_argument("--objective", default="clinical",
                          choices=["uniform", "clinical", "dvh"])
    p_opt_lt.add_argument("--max-iterations", type=int, default=8)
    p_opt_lt.add_argument("--tolerance", type=float, default=1e-6)
    p_opt_lt.add_argument("--workers", type=int, default=2,
                          help="optimizer worker threads")
    p_opt_lt.add_argument("--serve-workers", type=int, default=2,
                          help="dose-evaluation worker threads")
    p_opt_lt.add_argument("--shards", type=int, default=2)
    p_opt_lt.add_argument("--quantum", type=int, default=1,
                          help="iterations per scheduling quantum")
    p_opt_lt.add_argument("--checkpoint-every", type=int, default=4)
    p_opt_lt.add_argument("--tenant-budget", type=int, default=None,
                          help="per-tenant iteration budget")
    p_opt_lt.add_argument("--seed", type=int, default=20210419)
    p_opt_lt.add_argument("--no-audit", action="store_true",
                          help="skip the standalone bitwise audit")
    p_opt_lt.add_argument("--lock-witness", action="store_true",
                          help="run under the runtime lock-order witness; "
                               "report violations and exit non-zero on any")
    p_opt_lt.set_defaults(func=_cmd_opt_loadtest)

    p_artifact = sub.add_parser(
        "artifact",
        help="inspect, validate, or replay a per-run artifact record",
    )
    artifact_sub = p_artifact.add_subparsers(
        dest="artifact_command", required=True
    )
    p_art_show = artifact_sub.add_parser(
        "show", parents=[obs_flags],
        help="summarize one artifact.json (or run directory)",
    )
    p_art_show.add_argument("path",
                            help="artifact.json path or run directory")
    p_art_show.set_defaults(func=_cmd_artifact_show)

    p_art_val = artifact_sub.add_parser(
        "validate", parents=[obs_flags],
        help="check an artifact against the repro.artifact/v1 invariants",
    )
    p_art_val.add_argument("path",
                           help="artifact.json path or run directory")
    p_art_val.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures",
    )
    p_art_val.set_defaults(func=_cmd_artifact_validate)

    p_art_rep = artifact_sub.add_parser(
        "replay", parents=[obs_flags],
        help="re-execute recorded requests and assert bitwise equality "
             "against the recorded dose hashes",
    )
    p_art_rep.add_argument("path",
                           help="artifact.json path or run directory")
    p_art_rep.add_argument(
        "--request", action="append", default=[], metavar="ID",
        help="replay only this request id (repeatable; default: all)",
    )
    p_art_rep.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="replay at most N requests",
    )
    p_art_rep.set_defaults(func=_cmd_artifact_replay)

    p_trace = sub.add_parser(
        "trace",
        help="run any subcommand under tracing and print a span report",
    )
    p_trace.add_argument("--out", metavar="PATH", default=None,
                         help="also write Chrome-trace JSON here")
    p_trace.add_argument("rest", nargs=argparse.REMAINDER,
                         help="subcommand (with its flags) to trace")
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def _write_run_artifact(
    sink: "artifact_mod.ArtifactSink",
    args: argparse.Namespace,
    tracer,
    status: str,
    exit_code: Optional[int],
) -> None:
    """Persist the run's artifact (and its events.ndjson companion)."""
    base = (
        getattr(args, "artifact_dir", None)
        or os.environ.get("REPRO_ARTIFACT_DIR")
        or "runs"
    )
    run_dir = Path(base) / sink.run_id
    if tracer is not None:
        sink.set_events_file("events.ndjson")
    sink.finish(status=status, exit_code=exit_code)
    if tracer is not None:
        write_events_ndjson(tracer, run_dir / "events.ndjson")
    path = sink.write(run_dir)
    # stderr keeps machine-readable stdout (--format json, CSV) clean.
    print(f"artifact written to {path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Every subcommand except the pure inspection verbs (``artifact``
    itself and ``tune show``) records one
    ``repro.artifact/v1`` run record (opt out with ``--no-artifact``):
    a process-wide :class:`~repro.obs.artifact.ArtifactSink` is
    installed before the command runs and the enriched record is
    written afterwards — on success *and* on failure — together with
    the ``events.ndjson`` span stream.
    """
    args = build_parser().parse_args(argv)
    verbosity = -1 if getattr(args, "quiet", False) else getattr(args, "verbose", 0)
    setup_logging(verbosity)
    trace_path = getattr(args, "trace", None)
    jsonl_path = getattr(args, "trace_jsonl", None)
    want_trace = bool(trace_path or jsonl_path)

    sink = None
    previous_sink = None
    # Pure inspection verbs record nothing: the artifact verbs read
    # other runs' records, `tune show` only lists a cache, and
    # `workloads list` only prints the registry.
    inspection_only = (
        args.command == "artifact"
        or (
            args.command == "tune"
            and getattr(args, "tune_command", None) == "show"
        )
        or (
            args.command == "workloads"
            and getattr(args, "workloads_command", None) == "list"
        )
    )
    if not getattr(args, "no_artifact", False) and not inspection_only:
        command = ["repro-rtdose"] + (
            list(argv) if argv is not None else sys.argv[1:]
        )
        sink = artifact_mod.ArtifactSink(command=command)
        previous_sink = artifact_mod.set_sink(sink)

    tracer = None
    if want_trace or sink is not None:
        # The sink needs a recording tracer too: events.ndjson is
        # derived from the same span source as the Chrome trace.
        tracer = enable_tracing()
        if want_trace:
            _log.info(kv("tracing enabled", out=trace_path,
                         jsonl=jsonl_path))

    rc: Optional[int] = None
    status = "completed"
    try:
        rc = args.func(args)
        status = "completed" if rc == 0 else "failed"
    except BaseException:
        status = "error"
        raise
    finally:
        if tracer is not None:
            disable_tracing()
        if sink is not None:
            artifact_mod.set_sink(previous_sink)
            _write_run_artifact(sink, args, tracer, status, rc)

    if want_trace:
        print(span_summary_table(tracer).render())
        if trace_path:
            path = write_chrome_trace(tracer, trace_path)
            print(f"\nChrome trace written to {path} "
                  "(load in https://ui.perfetto.dev)")
        if jsonl_path:
            print(f"span JSONL written to {write_jsonl(tracer, jsonl_path)}")
    if want_trace or getattr(args, "metrics", False):
        print()
        print(get_registry().render_table())
    return rc


if __name__ == "__main__":
    sys.exit(main())
