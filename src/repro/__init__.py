"""repro — reproduction of "Accelerating Radiation Therapy Dose Calculation
with Nvidia GPUs" (Liu, Jansson, Podobas, Fredriksson, Markidis, 2021).

The package implements the paper's full stack on a simulated-GPU substrate:

* :mod:`repro.sparse` — sparse formats from scratch (CSR, COO, ELLPACK,
  SELL-C-sigma, the RayStation-like RSCF) with conversions and statistics;
* :mod:`repro.precision` — mixed half/double precision and reduction-order
  reproducibility tooling;
* :mod:`repro.gpu` — the GPU execution simulator (A100/V100/P100 device
  models, coalescing/L2 traffic accounting, cooperative-groups emulation,
  atomics, analytical timing);
* :mod:`repro.kernels` — the contributed warp-per-row mixed-precision CSR
  kernel plus every comparator the paper evaluates;
* :mod:`repro.dose` — the radiotherapy substrate (phantoms, proton pencil
  beam scanning, Monte Carlo noise, deposition matrices, DVH);
* :mod:`repro.plans` — the six Table I cases at configurable scale;
* :mod:`repro.opt` — the spot-weight plan optimization that motivates it all;
* :mod:`repro.roofline` — roofline analysis and the paper's traffic model;
* :mod:`repro.bench` — the harness regenerating every table and figure;
* :mod:`repro.obs` — observability: span tracing, metrics, Chrome-trace
  export, run provenance, structured logging.

Quickstart::

    from repro import HalfDoubleKernel, build_case_matrix
    import numpy as np

    dep = build_case_matrix("Liver 1", preset="tiny")
    w = np.ones(dep.n_spots)
    result = HalfDoubleKernel().run(dep.as_half(), w)
    print(result.gflops, result.timing.limiter)
"""

from repro.bench import run_spmv_experiment
from repro.dose import (
    Beam,
    DoseGrid,
    build_deposition_matrix,
    build_liver_phantom,
    build_prostate_phantom,
    compute_dvh,
)
from repro.gpu import A100, CPU_I9_7940X, P100, V100, DeviceSpec, get_device
from repro.kernels import (
    CPURayStationKernel,
    CuSparseLikeKernel,
    GinkgoLikeKernel,
    GPUBaselineKernel,
    HalfDoubleKernel,
    KernelResult,
    ScalarCSRKernel,
    SingleKernel,
    SpMVKernel,
    VectorCSRKernel,
    kernel_names,
    make_kernel,
)
from repro.opt import (
    CompositeObjective,
    MaxDoseObjective,
    MinDoseObjective,
    PlanOptimizationProblem,
    UniformDoseObjective,
    solve_projected_gradient,
)
from repro.plans import build_all_cases, build_case_matrix, case_names
from repro.precision import HALF_DOUBLE, SINGLE, MixedPrecision, Precision
from repro.roofline import Roofline, spmv_traffic_model
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    ELLMatrix,
    RSCFMatrix,
    SellCSigmaMatrix,
    csr_to_rscf,
    rscf_to_csr,
)

__version__ = "1.0.0"

__all__ = [
    "run_spmv_experiment",
    "Beam",
    "DoseGrid",
    "build_deposition_matrix",
    "build_liver_phantom",
    "build_prostate_phantom",
    "compute_dvh",
    "A100",
    "CPU_I9_7940X",
    "P100",
    "V100",
    "DeviceSpec",
    "get_device",
    "CPURayStationKernel",
    "CuSparseLikeKernel",
    "GinkgoLikeKernel",
    "GPUBaselineKernel",
    "HalfDoubleKernel",
    "KernelResult",
    "ScalarCSRKernel",
    "SingleKernel",
    "SpMVKernel",
    "VectorCSRKernel",
    "kernel_names",
    "make_kernel",
    "CompositeObjective",
    "MaxDoseObjective",
    "MinDoseObjective",
    "PlanOptimizationProblem",
    "UniformDoseObjective",
    "solve_projected_gradient",
    "build_all_cases",
    "build_case_matrix",
    "case_names",
    "HALF_DOUBLE",
    "SINGLE",
    "MixedPrecision",
    "Precision",
    "Roofline",
    "spmv_traffic_model",
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "RSCFMatrix",
    "SellCSigmaMatrix",
    "csr_to_rscf",
    "rscf_to_csr",
    "__version__",
]
