"""Scenario-ensemble serving: one request, S scenario evaluations.

A robust-planning client asks one question — "what does this weight
vector do under every error scenario of this plan" — and expects one
answer: the ``(S, n_voxels)`` dose stack.  The service answers by
fanning a :class:`ScenarioEnsembleRequest` out into S ordinary
:class:`~repro.serve.request.EvaluationRequest` entries (one per
scenario plan), letting the existing micro-batch scheduler coalesce
them like any other traffic, and **merging the results strictly in
scenario-index order**.

The merge invariant: the stacked dose is
``np.stack([dose(s_0), dose(s_1), ...])`` by *explicit scenario index*
— never submission, completion, batch, or container order — so the
ensemble stack is bitwise identical across batching windows, worker
counts, shard counts, and any scenario submission order (the ensemble
audit in :mod:`repro.workloads.audit` proves exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.request import (
    EvaluationRequest,
    EvaluationResult,
    Rejected,
    RejectReason,
    ServeError,
    Ticket,
)

#: separator between an ensemble plan id and a scenario index; scenario
#: plans of ensemble ``pid`` are ``pid@s0, pid@s1, ...``.
SCENARIO_SEPARATOR = "@s"


def scenario_plan_id(plan_id: str, index: int) -> str:
    """The plan-store id of scenario ``index`` of ensemble ``plan_id``."""
    return f"{plan_id}{SCENARIO_SEPARATOR}{index}"


@dataclass(frozen=True)
class ScenarioEnsembleRequest:
    """One multi-matrix question: ``d_s = A_s @ weights`` for every s.

    ``plan_id`` names an ensemble registered with
    :func:`register_ensemble`; the request inherits the vocabulary of
    :class:`~repro.serve.request.EvaluationRequest` (precision is a
    kernel-registry name, ``deadline_s`` a relative queueing budget).
    """

    request_id: str
    plan_id: str
    weights: np.ndarray
    precision: str = "half_double"
    deadline_s: Optional[float] = None
    client_id: str = "default"

    def __post_init__(self) -> None:
        w = np.asarray(self.weights)
        if w.ndim != 1:
            raise ServeError(
                f"ensemble request {self.request_id!r}: weights must be "
                f"1-D, got shape {w.shape}"
            )
        object.__setattr__(self, "weights", w)


@dataclass(frozen=True)
class EnsembleResult:
    """A served ensemble evaluation: the index-ordered dose stack."""

    request_id: str
    plan_id: str
    precision: str
    #: ``(n_scenarios, n_voxels)`` — row s is scenario s's dose, bitwise
    #: equal to a stand-alone ``A_s @ w`` evaluation.
    doses: np.ndarray
    #: per-scenario results in scenario-index order (full provenance).
    scenario_results: Tuple[EvaluationResult, ...]
    #: max over scenarios (the client-visible latency of the stack).
    latency_s: float
    queue_wait_s: float

    @property
    def n_scenarios(self) -> int:
        return int(self.doses.shape[0])

    @property
    def batch_ids(self) -> Tuple[int, ...]:
        return tuple(r.batch_id for r in self.scenario_results)

    @property
    def shards(self) -> int:
        return self.scenario_results[0].shards if self.scenario_results else 1


EnsembleOutcome = Union[EnsembleResult, Rejected]


@dataclass
class EnsembleTicket:
    """In-flight handle: one sub-ticket per scenario, index-ordered.

    ``handles[s]`` is scenario ``s``'s :class:`Ticket` (or its immediate
    :class:`Rejected`).  The gather in :meth:`outcome` is where the merge
    invariant lives: results are stacked by position in ``handles`` —
    scenario-index order by construction — regardless of the order the
    scenarios were submitted or completed in.
    """

    request: ScenarioEnsembleRequest
    handles: Tuple[Union[Ticket, Rejected], ...]

    def done(self) -> bool:
        return all(
            isinstance(h, Rejected) or h.done() for h in self.handles
        )

    def outcome(self, timeout: Optional[float] = None) -> EnsembleOutcome:
        """Gather every scenario and merge in scenario-index order."""
        results: List[EvaluationResult] = []
        for index, handle in enumerate(self.handles):
            out = handle if isinstance(handle, Rejected) else handle.outcome(
                timeout
            )
            if isinstance(out, Rejected):
                return Rejected(
                    self.request.request_id,
                    out.reason,
                    f"scenario {index}: {out.detail}",
                )
            results.append(out)
        return EnsembleResult(
            request_id=self.request.request_id,
            plan_id=self.request.plan_id,
            precision=self.request.precision,
            doses=np.stack([r.dose for r in results]),
            scenario_results=tuple(results),
            latency_s=max(r.latency_s for r in results),
            queue_wait_s=max(r.queue_wait_s for r in results),
        )


def register_ensemble(
    service: "object",
    plan_id: str,
    ensemble: "object",
    source: str = "workload",
) -> Tuple[str, ...]:
    """Register every scenario of an ensemble as its own plan.

    Scenario ``s`` becomes plan ``plan_id@s{s}`` in the service's plan
    store; the scheduler then coalesces same-scenario requests across
    concurrent ensemble submissions exactly like ordinary plan traffic.
    Returns the scenario plan ids in scenario-index order.
    """
    plan_ids = []
    for scenario in ensemble.scenarios:
        pid = scenario_plan_id(plan_id, scenario.index)
        service.plans.register(pid, scenario.matrix, source=source)
        plan_ids.append(pid)
    return tuple(plan_ids)


def ensemble_scenario_ids(service: "object", plan_id: str) -> Tuple[str, ...]:
    """Scenario plan ids registered under ``plan_id`` (index order)."""
    plan_ids = []
    index = 0
    while service.plans.get(scenario_plan_id(plan_id, index)) is not None:
        plan_ids.append(scenario_plan_id(plan_id, index))
        index += 1
    return tuple(plan_ids)


def submit_ensemble(
    service: "object",
    request: ScenarioEnsembleRequest,
    submit_order: Optional[Sequence[int]] = None,
) -> Union[EnsembleTicket, Rejected]:
    """Fan one ensemble request out into S scenario submissions.

    ``submit_order`` permutes the *submission* order only (the ensemble
    audit uses it to prove order independence); the gather in
    :meth:`EnsembleTicket.outcome` always merges by scenario index.
    """
    scenario_ids = ensemble_scenario_ids(service, request.plan_id)
    if not scenario_ids:
        return Rejected(
            request.request_id,
            RejectReason.UNKNOWN_PLAN,
            f"no ensemble registered under plan {request.plan_id!r}",
        )
    order = list(range(len(scenario_ids)))
    if submit_order is not None:
        if sorted(submit_order) != order:
            raise ServeError(
                f"submit_order must permute 0..{len(scenario_ids) - 1}, "
                f"got {list(submit_order)}"
            )
        order = list(submit_order)
    handles: List[Optional[Union[Ticket, Rejected]]] = [None] * len(
        scenario_ids
    )
    for index in order:
        handles[index] = service.submit(
            EvaluationRequest(
                request_id=f"{request.request_id}{SCENARIO_SEPARATOR}{index}",
                plan_id=scenario_ids[index],
                weights=request.weights,
                precision=request.precision,
                deadline_s=request.deadline_s,
                client_id=request.client_id,
            )
        )
    assert all(h is not None for h in handles)
    return EnsembleTicket(
        request=request,
        handles=tuple(h for h in handles if h is not None),
    )


def evaluate_ensemble(
    service: "object",
    request: ScenarioEnsembleRequest,
    timeout: Optional[float] = 60.0,
    submit_order: Optional[Sequence[int]] = None,
) -> EnsembleOutcome:
    """Submit one ensemble request and wait for the merged stack."""
    handle = submit_ensemble(service, request, submit_order=submit_order)
    if isinstance(handle, Rejected):
        return handle
    return handle.outcome(timeout)
