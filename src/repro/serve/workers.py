"""Worker pool: execute formed batches and resolve their tickets.

Workers are deliberately thin — all evaluation logic (plan cache,
kernel dispatch, result assembly) lives in the executor callable the
service provides, so the pool owns exactly three things: thread
lifecycle, the stop sentinel protocol, and per-worker observability
(one ``serve.batch`` span per executed batch, execution counters, and
a crash barrier that converts an executor failure into per-ticket
``INTERNAL_ERROR`` rejections instead of a dead worker thread).
"""

from __future__ import annotations

import queue as stdlib_queue
import threading
from typing import Callable, List, Optional

from repro.obs import metrics
from repro.obs.lockwitness import get_witness, guarded_lock
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span as trace_span
from repro.serve.request import Outcome, Rejected, RejectReason, Ticket
from repro.serve.scheduler import Batch

_log = get_logger(__name__)

#: executes one batch, resolving every ticket in it.  The worker name is
#: passed through so results can carry execution provenance.
BatchExecutor = Callable[[Batch, str], None]

#: resolves one ticket (the service's version also releases client quota).
TicketResolver = Callable[[Ticket, Outcome], None]


def _default_resolver(ticket: Ticket, outcome: Outcome) -> None:
    ticket.resolve(outcome)


class WorkerPool:
    """N threads draining the scheduler's batch queue."""

    def __init__(
        self,
        batches: "stdlib_queue.Queue[Optional[Batch]]",
        executor: BatchExecutor,
        n_workers: int = 2,
        resolver: TicketResolver = _default_resolver,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self._batches = batches
        self._executor = executor
        self._resolver = resolver
        self.n_workers = n_workers
        self._lifecycle = guarded_lock(  # analyze: lock-guards[_threads, _sentinels_sent]
            "serve.workers.WorkerPool"
        )
        self._threads: List[threading.Thread] = []
        self._sentinels_sent = False

    def start(self) -> None:
        with self._lifecycle:
            if self._threads:
                return
            threads = [
                threading.Thread(  # analyze: allow[RL505] -- _run stores nothing on self; all worker state is per-call locals
                    target=self._run, name=f"serve-worker-{i}", daemon=True,
                    args=(f"worker-{i}",),
                )
                for i in range(self.n_workers)
            ]
            self._threads.extend(threads)
        for thread in threads:
            thread.start()

    def deliver_stop_sentinels(self) -> None:
        """Place one ``None`` per worker on the batch queue, exactly once.

        Idempotent: the scheduler's drain path and the service's
        shutdown backstop can both call it; only the first delivers.
        The (possibly blocking) puts happen after releasing the
        lifecycle lock — only the first-caller election is locked.
        """
        with self._lifecycle:
            if self._sentinels_sent:
                return
            self._sentinels_sent = True
        for _ in range(self.n_workers):
            self._batches.put(None)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every worker to see its stop sentinel and exit."""
        with self._lifecycle:
            threads = list(self._threads)
        witness = get_witness()
        if witness is not None:
            # A lock held here would starve the workers being joined.
            witness.assert_no_locks_held("WorkerPool.join")
        for thread in threads:
            thread.join(timeout)

    @property
    def alive(self) -> int:
        with self._lifecycle:
            threads = list(self._threads)
        return sum(1 for t in threads if t.is_alive())

    # ------------------------------------------------------------------ #

    def _run(self, worker_name: str) -> None:
        while True:
            batch = self._batches.get()
            if batch is None:
                break
            with trace_span("serve.batch", worker=worker_name,
                            batch=batch.batch_id, plan=batch.plan_id,
                            precision=batch.precision, size=len(batch)):
                try:
                    self._executor(batch, worker_name)
                except BaseException as exc:  # crash barrier
                    metrics.counter("serve.worker_errors").inc()
                    _log.warning(kv("batch execution failed",
                                    worker=worker_name,
                                    batch=batch.batch_id,
                                    error=type(exc).__name__))
                    detail = f"{type(exc).__name__}: {exc}"
                    for ticket in batch.tickets:
                        if not ticket.done():
                            self._resolver(ticket, Rejected(
                                ticket.request.request_id,
                                RejectReason.INTERNAL_ERROR,
                                detail,
                            ))
            metrics.counter(f"serve.batches_executed.{worker_name}").inc()
