"""Bounded, thread-safe request queue with per-client fairness.

Backpressure lives here: the queue has a hard capacity (global), a
per-client in-flight cap (fairness — one greedy optimizer cannot starve
the others), and a closed state (shutdown).  ``offer`` never blocks; it
either admits the ticket or returns a typed :class:`~repro.serve.request.
Rejected` immediately, which is the whole point — a loaded service must
answer *now*, not after an unbounded wait.

The consuming side is built for the micro-batcher: ``pop`` takes the
head (FIFO), and ``pop_matching`` waits up to a window for another entry
with the same batch key, removing the *first match* while leaving
other-key entries in arrival order.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Hashable, Optional

from repro.obs import metrics
from repro.obs.clock import Clock, get_clock
from repro.obs.lockwitness import guarded_lock
from repro.serve.request import Rejected, RejectReason, Ticket


class RequestQueue:
    """FIFO of :class:`Ticket` with capacity, quota, and close semantics.

    The in-flight count per client covers queued *and* executing
    requests; the service calls :meth:`release_client` when a ticket
    resolves, so a client's quota frees up only once its answers arrive.
    """

    def __init__(self, capacity: int, max_inflight_per_client: int,
                 clock: Optional[Clock] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        if max_inflight_per_client <= 0:
            raise ValueError(
                "max_inflight_per_client must be positive, got "
                f"{max_inflight_per_client}"
            )
        self.capacity = capacity
        self.max_inflight_per_client = max_inflight_per_client
        self._clock = clock or get_clock()
        self._lock = guarded_lock(  # analyze: lock-guards[_entries, _inflight, _closed]
            "serve.queue.RequestQueue"
        )
        self._not_empty = threading.Condition(self._lock)
        self._entries: Deque[Ticket] = deque()
        self._inflight: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #

    def offer(self, ticket: Ticket) -> Optional[Rejected]:
        """Admit ``ticket`` or return a typed rejection (never blocks)."""
        request = ticket.request
        with self._lock:
            if self._closed:
                return self._reject(
                    request.request_id, RejectReason.SHUTTING_DOWN,
                    "service is draining",
                )
            if len(self._entries) >= self.capacity:
                return self._reject(
                    request.request_id, RejectReason.QUEUE_FULL,
                    f"queue at capacity ({self.capacity})",
                )
            inflight = self._inflight.get(request.client_id, 0)
            if inflight >= self.max_inflight_per_client:
                return self._reject(
                    request.request_id, RejectReason.CLIENT_QUOTA,
                    f"client {request.client_id!r} has {inflight} requests "
                    f"in flight (cap {self.max_inflight_per_client})",
                )
            self._inflight[request.client_id] = inflight + 1
            self._entries.append(ticket)
            metrics.gauge("serve.queue_depth").set(len(self._entries))
            self._not_empty.notify()
            return None

    def _reject(self, request_id: str, reason: RejectReason,
                detail: str) -> Rejected:
        metrics.counter(f"serve.rejections.{reason.value}").inc()
        return Rejected(request_id, reason, detail)

    def release_client(self, client_id: str) -> None:
        """One of ``client_id``'s requests resolved; free quota."""
        with self._lock:
            remaining = self._inflight.get(client_id, 0) - 1
            if remaining > 0:
                self._inflight[client_id] = remaining
            else:
                self._inflight.pop(client_id, None)

    # ------------------------------------------------------------------ #
    # consumer side (the micro-batch scheduler)
    # ------------------------------------------------------------------ #

    def pop(self, timeout: float) -> Optional[Ticket]:
        """Head of the queue; None after ``timeout`` or when drained+closed."""
        deadline = self._clock.monotonic() + timeout
        with self._not_empty:
            while not self._entries:
                if self._closed:
                    return None
                remaining = deadline - self._clock.monotonic()
                if remaining <= 0 or not self._not_empty.wait(remaining):
                    return None
            ticket = self._entries.popleft()
            metrics.gauge("serve.queue_depth").set(len(self._entries))
            return ticket

    def pop_matching(
        self, key_fn: Callable[[Ticket], Hashable], key: Hashable,
        timeout: float,
    ) -> Optional[Ticket]:
        """First queued ticket whose batch key matches, waiting up to
        ``timeout`` for one to arrive; None when the window closes empty.

        Non-matching entries keep their arrival order — coalescing one
        plan's burst must not reorder other plans' requests.
        """
        deadline = self._clock.monotonic() + timeout
        with self._not_empty:
            while True:
                for i, ticket in enumerate(self._entries):
                    if key_fn(ticket) == key:
                        del self._entries[i]
                        metrics.gauge("serve.queue_depth").set(
                            len(self._entries)
                        )
                        return ticket
                if self._closed:
                    return None
                remaining = deadline - self._clock.monotonic()
                if remaining <= 0 or not self._not_empty.wait(remaining):
                    return None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop admissions; consumers drain what's queued, then get None."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def inflight(self, client_id: str) -> int:
        """Queued + executing requests for one client."""
        with self._lock:
            return self._inflight.get(client_id, 0)
