"""Request/response vocabulary of the dose-evaluation service.

One optimizer iteration asks "what dose does this weight vector give on
this plan" — that question, typed: an :class:`EvaluationRequest` goes
in, and exactly one of :class:`EvaluationResult` or :class:`Rejected`
comes out.  Backpressure is part of the contract: a service under load
answers with a typed rejection immediately instead of queueing without
bound.

The :class:`Ticket` is the caller's handle while the request is in
flight (a minimal future: ``done()``/``outcome()``).  Tickets are
resolved exactly once; the service, scheduler and workers all resolve
through it.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.util.errors import ReproError


class ServeError(ReproError):
    """An invalid interaction with the dose-evaluation service."""


class RejectReason(enum.Enum):
    """Why the service refused (or abandoned) a request."""

    #: the bounded request queue is at capacity (global backpressure).
    QUEUE_FULL = "queue_full"
    #: this client already has its fair share of in-flight requests.
    CLIENT_QUOTA = "client_quota"
    #: no plan registered under the request's ``plan_id``.
    UNKNOWN_PLAN = "unknown_plan"
    #: the precision/kernel name is not in the kernel registry.
    UNKNOWN_PRECISION = "unknown_precision"
    #: the requested kernel is not bitwise reproducible (service policy).
    NONREPRODUCIBLE = "nonreproducible"
    #: weight vector incompatible with the plan's deposition matrix.
    BAD_SHAPE = "bad_shape"
    #: the request sat in the queue past its deadline.
    DEADLINE_EXCEEDED = "deadline_exceeded"
    #: the service runs sharded and the requested kernel has no
    #: compiled-plan family to shard (libraries, format baselines).
    UNSHARDABLE = "unshardable"
    #: the service is draining/stopped.
    SHUTTING_DOWN = "shutting_down"
    #: the executing worker hit an unexpected error.
    INTERNAL_ERROR = "internal_error"


@dataclass(frozen=True)
class EvaluationRequest:
    """One dose-evaluation question: ``dose = A[plan_id] @ weights``.

    ``precision`` is a kernel registry name (``half_double``, ``single``,
    ``double``, ...) — the paper's precision configurations are what
    distinguish kernels, so the registry name doubles as the precision
    selector.  ``deadline_s`` is a *relative* queueing budget: a request
    still waiting that long after submission is rejected rather than
    served stale.
    """

    request_id: str
    plan_id: str
    weights: np.ndarray
    precision: str = "half_double"
    deadline_s: Optional[float] = None
    client_id: str = "default"

    def __post_init__(self) -> None:
        w = np.asarray(self.weights)
        if w.ndim != 1:
            raise ServeError(
                f"request {self.request_id!r}: weights must be 1-D, got "
                f"shape {w.shape}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServeError(
                f"request {self.request_id!r}: deadline_s must be positive, "
                f"got {self.deadline_s}"
            )
        object.__setattr__(self, "weights", w)


@dataclass(frozen=True)
class EvaluationResult:
    """A served dose evaluation, with its batching/caching provenance."""

    request_id: str
    plan_id: str
    precision: str
    #: the dose vector (float64; bitwise equal to a stand-alone A @ w).
    dose: np.ndarray
    #: id of the micro-batch this request was coalesced into.
    batch_id: int
    #: how many requests shared the batch (1 == no coalescing happened).
    batch_size: int
    #: modelled stand-alone kernel time for this evaluation.
    modeled_time_s: float
    #: seconds spent queued before a worker picked the batch up.
    queue_wait_s: float
    #: submit-to-resolve wall latency (scheduling time, not dose physics).
    latency_s: float
    #: name of the worker thread that executed the batch.
    worker: str
    #: True when the plan matrix came from the plan cache.
    cache_hit: bool
    #: row shards the evaluation ran across (1 == single device).
    shards: int = 1


@dataclass(frozen=True)
class Rejected:
    """A typed refusal: the service's backpressure/failure answer."""

    request_id: str
    reason: RejectReason
    detail: str = ""


Outcome = Union[EvaluationResult, Rejected]


@dataclass
class Ticket:
    """In-flight handle for one submitted request (a minimal future)."""

    request: EvaluationRequest
    #: clock reading at submission (queue-wait / latency origin).
    submitted_at: float
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    _outcome: Optional[Outcome] = field(default=None, repr=False)
    # Pure-exclusion lock (empty guard list): it serializes the
    # resolve-once transition; _outcome is *published* by _event.set()
    # (the Event's internal lock provides the happens-before for the
    # post-wait read in outcome()).
    _resolve_lock: threading.Lock = field(  # analyze: lock-guards[]
        default_factory=threading.Lock, repr=False
    )

    def done(self) -> bool:
        return self._event.is_set()

    def outcome(self, timeout: Optional[float] = None) -> Outcome:
        """Block until resolved; raises :class:`ServeError` on timeout."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"request {self.request.request_id!r} not resolved within "
                f"{timeout}s"
            )
        assert self._outcome is not None
        return self._outcome

    def resolve(self, outcome: Outcome) -> None:
        """Resolve the ticket exactly once (second resolves are errors)."""
        with self._resolve_lock:
            if self._event.is_set():
                raise ServeError(
                    f"request {self.request.request_id!r} resolved twice"
                )
            self._outcome = outcome
            self._event.set()
