"""Micro-batching scheduler: coalesce same-plan requests into SpMM batches.

``d = A w`` launched once per request pays the fixed kernel-launch
overhead once per request.  Requests that share a plan and precision
share a matrix, so the scheduler holds the head request open for a short
window (``max_wait_s``) and folds every same-key arrival into one
multi-vector batch of up to ``max_batch_size`` — the service-layer
analogue of the per-plan beam batching in :mod:`repro.kernels.batched`.

Determinism is preserved by construction: a batch never mixes plans or
precisions, and execution evaluates each member's weight vector with the
kernel's exact per-vector reduction order.  Window length, arrival
order, and batch composition therefore affect *latency only*; the
dose bits of every request are those of a stand-alone evaluation.

Deadlines are enforced here, at dispatch: a request whose queueing time
already exceeds its ``deadline_s`` is rejected (``DEADLINE_EXCEEDED``)
rather than evaluated stale.
"""

from __future__ import annotations

import queue as stdlib_queue
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.obs import metrics
from repro.obs.clock import Clock, get_clock
from repro.obs.logging import get_logger, kv
from repro.serve.queue import RequestQueue
from repro.serve.request import Rejected, RejectReason, Ticket

_log = get_logger(__name__)

#: a batch key: requests sharing both may share one SpMM launch.
BatchKey = Tuple[str, str]


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the coalescing window."""

    #: hard cap on requests per batch (bounds worker latency).
    max_batch_size: int = 8
    #: how long the head request waits for same-key company.
    max_wait_s: float = 0.002
    #: bound on formed-but-unexecuted batches (backpressure on the
    #: scheduler when workers fall behind).
    max_pending_batches: int = 16

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be non-negative, got {self.max_wait_s}"
            )
        if self.max_pending_batches <= 0:
            raise ValueError(
                "max_pending_batches must be positive, got "
                f"{self.max_pending_batches}"
            )


@dataclass
class Batch:
    """One formed micro-batch, ready for a worker."""

    batch_id: int
    key: BatchKey
    tickets: List[Ticket] = field(default_factory=list)

    @property
    def plan_id(self) -> str:
        return self.key[0]

    @property
    def precision(self) -> str:
        return self.key[1]

    def __len__(self) -> int:
        return len(self.tickets)


def batch_key(ticket: Ticket) -> BatchKey:
    return (ticket.request.plan_id, ticket.request.precision)


class MicroBatchScheduler:
    """Drains the request queue into a bounded queue of batches.

    Runs one daemon thread.  Shutdown contract: once the request queue
    is closed, the scheduler drains what remains, emits it as batches,
    then places one ``None`` sentinel per worker and exits.
    """

    def __init__(
        self,
        requests: RequestQueue,
        policy: BatchingPolicy,
        n_workers: int,
        clock: Optional[Clock] = None,
        stop_sentinels: Optional[Callable[[], None]] = None,
    ) -> None:
        self._requests = requests
        self._policy = policy
        self._n_workers = n_workers
        self._clock = clock or get_clock()
        #: overrides sentinel delivery at drain time (the service wires
        #: the worker pool's idempotent delivery here); None keeps the
        #: standalone behaviour of one None per worker.
        self._stop_sentinels = stop_sentinels
        self._batches: "stdlib_queue.Queue[Optional[Batch]]" = (
            stdlib_queue.Queue(maxsize=policy.max_pending_batches)
        )
        self._next_batch_id = 0
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #

    @property
    def batches(self) -> "stdlib_queue.Queue[Optional[Batch]]":
        """The worker-facing queue of formed batches (None = stop)."""
        return self._batches

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(  # analyze: allow[RL505] -- batch-formation state (_next_batch_id) is owned by this single scheduler thread; start() races are benign (second start() sees _thread set)
            target=self._run, name="serve-scheduler", daemon=True
        )
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------ #

    def _expired(self, ticket: Ticket) -> Optional[Rejected]:
        """Reject a ticket whose queueing time exceeded its deadline."""
        deadline = ticket.request.deadline_s
        if deadline is None:
            return None
        waited = self._clock.monotonic() - ticket.submitted_at
        if waited <= deadline:
            return None
        metrics.counter(
            f"serve.rejections.{RejectReason.DEADLINE_EXCEEDED.value}"
        ).inc()
        return Rejected(
            ticket.request.request_id,
            RejectReason.DEADLINE_EXCEEDED,
            f"queued {waited * 1e3:.2f} ms, deadline {deadline * 1e3:.2f} ms",
        )

    def _admit(self, ticket: Ticket, batch: Batch) -> None:
        rejection = self._expired(ticket)
        if rejection is not None:
            ticket.resolve(rejection)
            self._requests.release_client(ticket.request.client_id)
            return
        batch.tickets.append(ticket)

    def _form_batch(self, head: Ticket) -> Batch:
        key = batch_key(head)
        batch = Batch(batch_id=self._next_batch_id, key=key)
        self._next_batch_id += 1
        self._admit(head, batch)
        window_closes = self._clock.monotonic() + self._policy.max_wait_s
        while len(batch) < self._policy.max_batch_size:
            remaining = window_closes - self._clock.monotonic()
            if remaining <= 0:
                # Window closed; still sweep already-queued same-key
                # entries (no extra waiting) so a burst that arrived
                # together is never split by scheduling jitter alone.
                remaining = 0.0
            more = self._requests.pop_matching(batch_key, key, remaining)
            if more is None:
                break
            self._admit(more, batch)
        return batch

    def _run(self) -> None:
        while True:
            head = self._requests.pop(timeout=0.05)
            if head is None:
                if self._requests.closed and len(self._requests) == 0:
                    break
                continue
            batch = self._form_batch(head)
            if not batch.tickets:
                continue  # every member hit its deadline
            metrics.counter("serve.batches").inc()
            metrics.histogram("serve.batch_size").observe(len(batch))
            _log.debug(kv("batch formed", batch=batch.batch_id,
                          plan=batch.plan_id, precision=batch.precision,
                          size=len(batch)))
            self._batches.put(batch)
        if self._stop_sentinels is not None:
            self._stop_sentinels()
        else:
            for _ in range(self._n_workers):
                self._batches.put(None)
