"""repro.serve — concurrent dose-evaluation service over the kernel library.

The paper's conclusion projects the kernel speedup onto "optimization
times and time-to-treatment"; the follow-up work (Liu et al., 2022)
moves the same ``d = A w`` workload into a multi-client evaluation
service.  This package is that layer for the reproduction:

* :mod:`repro.serve.request` — typed requests, results, rejections,
  and the in-flight ticket;
* :mod:`repro.serve.queue` — bounded FIFO with per-client fairness and
  non-blocking backpressure;
* :mod:`repro.serve.scheduler` — micro-batching: same-plan requests
  coalesce into one multi-vector SpMM launch within a time/size window;
* :mod:`repro.serve.cache` — plan registry + bounded LRU of
  kernel-ready matrices (single-flight conversion);
* :mod:`repro.serve.workers` — worker pool with graceful shutdown and
  per-batch spans/metrics;
* :mod:`repro.serve.service` — the facade gluing the above together,
  guaranteeing bitwise-deterministic per-request doses regardless of
  arrival order, batch composition, or worker count;
* :mod:`repro.serve.loadgen` — synthetic closed-loop load generator
  with a latency/throughput/bitwise-audit report;
* :mod:`repro.serve.ensemble` — scenario-ensemble requests: one
  submission fans out into S scenario evaluations whose results merge
  strictly in scenario-index order (the robust-planning stack).
"""

from repro.serve.cache import PlanMatrixCache, PlanRecord, PlanStore
from repro.serve.ensemble import (
    EnsembleOutcome,
    EnsembleResult,
    EnsembleTicket,
    ScenarioEnsembleRequest,
    evaluate_ensemble,
    register_ensemble,
    submit_ensemble,
)
from repro.serve.loadgen import (
    LoadTestConfig,
    LoadTestReport,
    RequestRecord,
    run_loadtest,
)
from repro.serve.queue import RequestQueue
from repro.serve.request import (
    EvaluationRequest,
    EvaluationResult,
    Outcome,
    Rejected,
    RejectReason,
    ServeError,
    Ticket,
)
from repro.serve.scheduler import (
    Batch,
    BatchingPolicy,
    BatchKey,
    MicroBatchScheduler,
    batch_key,
)
from repro.serve.service import DoseEvaluationService, ServiceConfig
from repro.serve.workers import WorkerPool

__all__ = [
    "EvaluationRequest",
    "EvaluationResult",
    "Rejected",
    "RejectReason",
    "Outcome",
    "ServeError",
    "Ticket",
    "RequestQueue",
    "Batch",
    "BatchKey",
    "BatchingPolicy",
    "MicroBatchScheduler",
    "batch_key",
    "PlanStore",
    "PlanRecord",
    "PlanMatrixCache",
    "WorkerPool",
    "DoseEvaluationService",
    "ServiceConfig",
    "LoadTestConfig",
    "LoadTestReport",
    "RequestRecord",
    "run_loadtest",
    "EnsembleOutcome",
    "EnsembleResult",
    "EnsembleTicket",
    "ScenarioEnsembleRequest",
    "evaluate_ensemble",
    "register_ensemble",
    "submit_ensemble",
]
