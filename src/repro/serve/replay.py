"""Deterministic replay of served requests from a per-run artifact.

The artifact records no dose vectors — only SHA-256 digests of the
served bytes plus the workload parameters (``params.workload``) every
request was derived from.  Because all loadgen randomness flows through
:func:`repro.util.rng.stable_seed`, that is enough to re-execute any
recorded request from scratch: rebuild the plan matrices from their
seeds (or Table I cases), re-derive the request's weight vector, run the
kernel stand-alone — fresh conversion, no cache, no scheduler, batch of
one — and compare digests.  A match proves, after the fact, that the
service's batching/caching/sharding did not change a single bit of that
dose; ``repro-rtdose artifact replay`` turns this into a CLI audit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.harness import convert_for_kernel
from repro.kernels.dispatch import make_kernel
from repro.obs.artifact import dose_sha256
from repro.serve.loadgen import (
    LoadTestConfig,
    build_synthetic_plans,
    request_weights,
)
from repro.util.errors import ReproError


@dataclass(frozen=True)
class ReplayOutcome:
    """One replayed request: recorded digest vs re-executed digest."""

    request_id: str
    plan_id: str
    precision: str
    recorded_sha256: str
    replayed_sha256: str

    @property
    def match(self) -> bool:
        """Bitwise equality of the served dose and the replayed dose."""
        return self.recorded_sha256 == self.replayed_sha256


def workload_config(params: Dict[str, Any]) -> LoadTestConfig:
    """Reconstruct the :class:`LoadTestConfig` a run recorded."""
    names = {f.name for f in dataclasses.fields(LoadTestConfig)}
    kwargs = {k: v for k, v in params.items() if k in names}
    if kwargs.get("case_names") is not None:
        kwargs["case_names"] = tuple(kwargs["case_names"])
    return LoadTestConfig(**kwargs)


def rebuild_masters(config: LoadTestConfig) -> Dict[str, Any]:
    """The run's plan-id -> master-matrix mapping, rebuilt from seeds.

    Mirrors the registration loop of
    :func:`repro.serve.loadgen.run_loadtest` exactly: Table I cases when
    ``case_names`` is set, seeded synthetic dose-like matrices
    otherwise.
    """
    if config.case_names:
        from repro.plans.cases import build_case_matrix

        return {
            f"plan-{i}": build_case_matrix(case, config.preset).matrix
            for i, case in enumerate(config.case_names)
        }
    return dict(build_synthetic_plans(config))


def replay_requests(
    artifact: Dict[str, Any],
    request_ids: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> List[ReplayOutcome]:
    """Re-execute recorded requests and compare dose digests.

    Replays every completed request that carries a ``dose_sha256``
    (optionally filtered to ``request_ids``, optionally capped at
    ``limit`` entries, in the artifact's deterministic order).  Raises
    :class:`ReproError` when the artifact records requests but not the
    workload parameters needed to reconstruct them.
    """
    params = (artifact.get("params") or {}).get("workload")
    entries = [
        e
        for e in artifact.get("phases", {}).get("request", [])
        if e.get("status") == "ok" and e.get("dose_sha256")
    ]
    if request_ids is not None:
        wanted = set(request_ids)
        entries = [e for e in entries if e.get("request_id") in wanted]
        missing = wanted - {e.get("request_id") for e in entries}
        if missing:
            raise ReproError(
                f"request ids not replayable from this artifact: "
                f"{sorted(missing)}"
            )
    if not entries:
        return []
    if not params:
        raise ReproError(
            "artifact records requests but no params.workload; "
            "deterministic replay is impossible"
        )
    if limit is not None:
        entries = entries[: max(0, limit)]
    config = workload_config(params)
    masters = rebuild_masters(config)
    converted: Dict[tuple, Any] = {}
    outcomes: List[ReplayOutcome] = []
    for entry in entries:
        plan_id = entry["plan_id"]
        precision = entry["precision"]
        if plan_id not in masters:
            raise ReproError(
                f"request {entry.get('request_id')!r} references plan "
                f"{plan_id!r} which the workload does not define"
            )
        key = (plan_id, precision)
        matrix = converted.get(key)
        if matrix is None:
            matrix = convert_for_kernel(masters[plan_id], precision)
            converted[key] = matrix
        weights = request_weights(
            config, int(entry["client"]), int(entry["index"]), matrix.n_cols
        )
        result = make_kernel(precision).run(matrix, weights)
        outcomes.append(
            ReplayOutcome(
                request_id=entry["request_id"],
                plan_id=plan_id,
                precision=precision,
                recorded_sha256=entry["dose_sha256"],
                replayed_sha256=dose_sha256(result.y),
            )
        )
    return outcomes
