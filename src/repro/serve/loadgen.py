"""Synthetic load generator and closed-loop loadtest report.

Models the ROADMAP's target traffic: many optimizer clients hammering
the evaluation service concurrently, each submitting *bursts* of
same-plan weight vectors (one optimizer iteration proposes several
candidate weightings) and waiting for the doses before iterating —
a closed loop, so offered load adapts to service throughput.

Everything is deterministic given the seed: plan matrices come from
:func:`repro.sparse.synth.dose_like` (or registered Table I cases), and
every request's weight vector is derived from a stable per-request seed
— which is what makes the *bitwise audit* possible: after the run, each
served dose is compared bit-for-bit against a stand-alone kernel
evaluation reconstructed from the same seeds.

The report carries the paper-style quantities: latency percentiles,
throughput, rejection counts, and the batched-vs-sequential modelled
amortization (the service-layer analogue of Figure 5's launch-overhead
argument).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import convert_for_kernel
from repro.kernels.dispatch import make_kernel
from repro.obs import artifact
from repro.obs.clock import Clock, get_clock
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span as trace_span
from repro.serve.ensemble import (
    EnsembleOutcome,
    EnsembleResult,
    ScenarioEnsembleRequest,
)
from repro.serve.request import (
    EvaluationRequest,
    EvaluationResult,
    Outcome,
    Rejected,
)
from repro.serve.scheduler import BatchingPolicy
from repro.serve.service import DoseEvaluationService, ServiceConfig
from repro.sparse.csr import CSRMatrix
from repro.sparse.synth import dose_like
from repro.util.rng import make_rng, stable_seed
from repro.util.tables import Table

_log = get_logger(__name__)


@dataclass(frozen=True)
class LoadTestConfig:
    """Shape of one synthetic load run."""

    n_requests: int = 200
    n_clients: int = 4
    #: same-plan requests each client submits back to back (an optimizer
    #: iteration's candidate weightings) before waiting for the doses.
    burst: int = 4
    n_plans: int = 3
    #: synthetic plan dimensions (voxels x spots, dose-like structure).
    plan_rows: int = 240
    plan_cols: int = 64
    precision: str = "half_double"
    n_workers: int = 2
    max_batch_size: int = 8
    batch_window_s: float = 0.002
    queue_capacity: int = 512
    max_inflight_per_client: int = 64
    deadline_s: Optional[float] = None
    seed: int = 20210419
    #: register Table I cases (at ``preset``) instead of synthetic plans.
    case_names: Optional[Sequence[str]] = None
    preset: str = "tiny"
    #: workload family driving the traffic: ``"synthetic"`` keeps the
    #: historical dose-like plans; any registered :mod:`repro.workloads`
    #: name generates that family's matrices instead, and an *ensemble*
    #: family (``robust_ensemble``) switches every client to
    #: :class:`~repro.serve.ensemble.ScenarioEnsembleRequest` traffic.
    workload: str = "synthetic"
    #: row shards per evaluation (>1 serves through repro.dist).
    shards: int = 1
    #: simulated devices in the sharded pool (None: min(shards, 4)).
    dist_devices: Optional[int] = None
    #: shard placement policy for the sharded backend.
    dist_placement: str = "memory"

    def __post_init__(self) -> None:
        if self.n_requests <= 0 or self.n_clients <= 0 or self.burst <= 0:
            raise ValueError("n_requests, n_clients and burst must be positive")


@dataclass
class RequestRecord:
    """Per-request outcome row of the loadtest report."""

    request_id: str
    client_id: str
    plan_id: str
    precision: str
    status: str  # "ok" or the rejection reason value
    latency_ms: Optional[float] = None
    queue_wait_ms: Optional[float] = None
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    modeled_time_s: Optional[float] = None
    cache_hit: Optional[bool] = None
    #: row shards the evaluation ran across (1 == single device).
    shards: int = 1
    #: workload family the request's plan came from.
    workload: str = "synthetic"
    #: scenario index within an ensemble request (None outside ensembles).
    scenario: Optional[int] = None
    bitwise: Optional[bool] = None
    #: SHA-256 of the served dose bytes (the artifact's replay target);
    #: stamped by the bitwise audit before the dose itself is dropped.
    dose_sha256: Optional[str] = None
    dose_dtype: Optional[str] = None
    #: the served dose, held only until the bitwise audit runs.
    dose: Optional[np.ndarray] = None


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of a sample list (0 for empty input)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


@dataclass
class LoadTestReport:
    """Everything one loadtest run measured."""

    config: LoadTestConfig
    records: List[RequestRecord]
    wall_s: float
    modeled_batched_s: float
    modeled_sequential_s: float
    rejections: Dict[str, int] = field(default_factory=dict)
    #: compiled-execution-plan cache outcomes across all executed batches.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    # ------------------------------ aggregates ------------------------- #

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def rejected(self) -> int:
        return self.submitted - self.completed

    def _latencies(self) -> List[float]:
        return [r.latency_ms for r in self.records if r.latency_ms is not None]

    @property
    def p50_ms(self) -> float:
        return _percentile(self._latencies(), 50)

    @property
    def p95_ms(self) -> float:
        return _percentile(self._latencies(), 95)

    @property
    def p99_ms(self) -> float:
        return _percentile(self._latencies(), 99)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        sizes = [r.batch_size for r in self.records if r.batch_size]
        return float(np.mean(sizes)) if sizes else 0.0

    @property
    def max_batch_size(self) -> int:
        sizes = [r.batch_size for r in self.records if r.batch_size]
        return max(sizes) if sizes else 0

    @property
    def amortization(self) -> float:
        """Modelled sequential kernel time over batched time (>= 1)."""
        if self.modeled_batched_s <= 0:
            return 1.0
        return self.modeled_sequential_s / self.modeled_batched_s

    @property
    def batched_throughput_rps(self) -> float:
        """Completed evaluations per modelled batched kernel second."""
        if self.modeled_batched_s <= 0:
            return 0.0
        return self.completed / self.modeled_batched_s

    @property
    def sequential_throughput_rps(self) -> float:
        """Completed evaluations per modelled sequential kernel second."""
        if self.modeled_sequential_s <= 0:
            return 0.0
        return self.completed / self.modeled_sequential_s

    @property
    def plan_cache_lookups(self) -> int:
        return self.plan_cache_hits + self.plan_cache_misses

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of executed batches served by a cached compiled plan."""
        lookups = self.plan_cache_lookups
        return self.plan_cache_hits / lookups if lookups else 0.0

    @property
    def bitwise_checked(self) -> int:
        return sum(1 for r in self.records if r.bitwise is not None)

    @property
    def bitwise_ok(self) -> int:
        return sum(1 for r in self.records if r.bitwise)

    @property
    def bitwise_fraction(self) -> float:
        checked = self.bitwise_checked
        return self.bitwise_ok / checked if checked else 0.0

    def claims(self) -> Dict[str, float]:
        """Quantities the recording layer checks against expectations."""
        return {
            "loadtest_amortization": self.amortization,
            "loadtest_bitwise_fraction": self.bitwise_fraction,
            "loadtest_completed_fraction": (
                self.completed / self.submitted if self.submitted else 0.0
            ),
        }

    # ------------------------------ rendering -------------------------- #

    def render(self) -> str:
        summary = Table(["quantity", "value"], title="Loadtest summary")
        rows = [
            ("requests submitted", self.submitted),
            ("requests completed", self.completed),
            ("requests rejected", self.rejected),
            ("wall time (s)", round(self.wall_s, 4)),
            ("closed-loop throughput (req/s)", round(self.throughput_rps, 1)),
            ("latency p50 (ms)", round(self.p50_ms, 3)),
            ("latency p95 (ms)", round(self.p95_ms, 3)),
            ("latency p99 (ms)", round(self.p99_ms, 3)),
            ("mean batch size", round(self.mean_batch_size, 2)),
            ("max batch size", self.max_batch_size),
            ("modeled sequential kernel time (s)",
             f"{self.modeled_sequential_s:.3e}"),
            ("modeled batched kernel time (s)",
             f"{self.modeled_batched_s:.3e}"),
            ("batched throughput (eval/modeled s)",
             round(self.batched_throughput_rps, 1)),
            ("sequential throughput (eval/modeled s)",
             round(self.sequential_throughput_rps, 1)),
            ("launch-overhead amortization", round(self.amortization, 4)),
            ("plan-cache hit rate",
             f"{self.plan_cache_hits}/{self.plan_cache_lookups} "
             f"({100 * self.plan_cache_hit_rate:.1f}%)"),
            ("bitwise identical to stand-alone",
             f"{self.bitwise_ok}/{self.bitwise_checked}"),
        ]
        if self.config.shards > 1:
            rows.append(("shards per evaluation", self.config.shards))
        for reason, count in sorted(self.rejections.items()):
            rows.append((f"rejections[{reason}]", count))
        for name, value in rows:
            summary.add_row([name, value])
        return summary.render()


# --------------------------------------------------------------------- #


def build_synthetic_plans(config: LoadTestConfig) -> Dict[str, CSRMatrix]:
    """Deterministic dose-like plan matrices for the run."""
    plans: Dict[str, CSRMatrix] = {}
    for p in range(config.n_plans):
        rng = make_rng(stable_seed("serve-loadgen-plan", config.seed, p))
        plans[f"plan-{p}"] = dose_like(
            config.plan_rows, config.plan_cols, density=0.05,
            empty_fraction=0.5, rng=rng,
        )
    return plans


def request_weights(config: LoadTestConfig, client: int,
                    index: int, n_cols: int) -> np.ndarray:
    """The (reconstructible) weight vector of one synthetic request."""
    rng = make_rng(
        stable_seed("serve-loadgen-weights", config.seed, client, index)
    )
    return 0.5 + rng.random(n_cols)


def _client_plan(config: LoadTestConfig, client: int, burst_index: int,
                 plan_ids: List[str]) -> str:
    """Deterministic per-burst plan choice (round-robin with offset)."""
    return plan_ids[(client + burst_index) % len(plan_ids)]


def run_loadtest(
    config: Optional[LoadTestConfig] = None,
    clock: Optional[Clock] = None,
) -> LoadTestReport:
    """Run one closed-loop load test against a fresh service."""
    config = config or LoadTestConfig()
    clock = clock or get_clock()

    service = DoseEvaluationService(
        ServiceConfig(
            queue_capacity=config.queue_capacity,
            max_inflight_per_client=config.max_inflight_per_client,
            n_workers=config.n_workers,
            batching=BatchingPolicy(
                max_batch_size=config.max_batch_size,
                max_wait_s=config.batch_window_s,
            ),
            shards=config.shards,
            dist_devices=config.dist_devices,
            dist_placement=config.dist_placement,
        ),
        clock=clock,
    )
    masters = {}
    ensemble_plan: Optional[str] = None
    if config.case_names:
        for i, case in enumerate(config.case_names):
            record = service.plans.register_case(
                f"plan-{i}", case, preset=config.preset
            )
            masters[record.plan_id] = record.matrix
    elif config.workload != "synthetic":
        from repro.workloads import generate, get_workload, scenario_matrices

        spec = get_workload(config.workload)
        if spec.ensemble:
            product = generate(
                config.workload, seed=config.seed, preset=config.preset
            )
            ensemble_plan = "plan-0"
            scenario_ids = service.register_ensemble(ensemble_plan, product)
            for pid, (_, matrix) in zip(
                scenario_ids, scenario_matrices(product)
            ):
                masters[pid] = matrix
        else:
            for p in range(config.n_plans):
                product = generate(
                    config.workload,
                    seed=config.seed + p,
                    preset=config.preset,
                )
                plan_id = f"plan-{p}"
                service.plans.register(
                    plan_id, product.matrix,
                    source=f"workload:{config.workload}",
                )
                masters[plan_id] = product.matrix
    else:
        for plan_id, matrix in build_synthetic_plans(config).items():
            service.plans.register(plan_id, matrix, source="synthetic")
            masters[plan_id] = matrix
    plan_ids = [ensemble_plan] if ensemble_plan else sorted(masters)

    per_client = _split_requests(config.n_requests, config.n_clients)
    records: List[List[RequestRecord]] = [[] for _ in range(config.n_clients)]

    n_cols_any = next(iter(masters.values())).n_cols

    def client_loop(client: int) -> None:
        submitted = 0
        burst_index = 0
        while submitted < per_client[client]:
            plan_id = _client_plan(config, client, burst_index, plan_ids)
            n_cols = (
                n_cols_any if ensemble_plan else masters[plan_id].n_cols
            )
            burst_n = min(config.burst, per_client[client] - submitted)
            if ensemble_plan:
                ensembles = [
                    ScenarioEnsembleRequest(
                        request_id=f"c{client}-r{submitted + j}",
                        plan_id=plan_id,
                        weights=request_weights(
                            config, client, submitted + j, n_cols
                        ),
                        precision=config.precision,
                        deadline_s=config.deadline_s,
                        client_id=f"client-{client}",
                    )
                    for j in range(burst_n)
                ]
                handles = [service.submit_ensemble(r) for r in ensembles]
                for request, handle in zip(ensembles, handles):
                    outcome = (
                        handle if isinstance(handle, Rejected)
                        else handle.outcome(60.0)
                    )
                    records[client].extend(
                        _ensemble_records(request, outcome, config.workload)
                    )
            else:
                requests = [
                    EvaluationRequest(
                        request_id=f"c{client}-r{submitted + j}",
                        plan_id=plan_id,
                        weights=request_weights(
                            config, client, submitted + j, n_cols
                        ),
                        precision=config.precision,
                        deadline_s=config.deadline_s,
                        client_id=f"client-{client}",
                    )
                    for j in range(burst_n)
                ]
                outcomes = service.evaluate(requests)
                for request, outcome in zip(requests, outcomes):
                    records[client].append(
                        _record(request, outcome, config.workload)
                    )
            submitted += burst_n
            burst_index += 1

    with trace_span("serve.loadtest", requests=config.n_requests,
                    clients=config.n_clients):
        service.start()
        started = clock.monotonic()
        threads = [
            threading.Thread(target=client_loop, args=(c,),  # analyze: allow[RL505] -- each client thread appends only to its own records[c] slot; slots are disjoint and read after join()
                             name=f"loadgen-client-{c}")
            for c in range(config.n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = clock.monotonic() - started
        service.stop()

    flat = [r for client_records in records for r in client_records]
    _audit_bitwise(config, flat, masters)
    rejections: Dict[str, int] = {}
    for r in flat:
        if r.status != "ok":
            rejections[r.status] = rejections.get(r.status, 0) + 1
    report = LoadTestReport(
        config=config,
        records=flat,
        wall_s=wall_s,
        modeled_batched_s=service.modeled_batched_s,
        modeled_sequential_s=service.modeled_sequential_s,
        rejections=rejections,
        plan_cache_hits=service.plan_cache_hits,
        plan_cache_misses=service.plan_cache_misses,
    )
    _log.info(kv("loadtest finished", completed=report.completed,
                 rejected=report.rejected, p99_ms=round(report.p99_ms, 3),
                 amortization=round(report.amortization, 4),
                 plan_cache_hit_rate=round(report.plan_cache_hit_rate, 4)))
    _enrich_artifact(config, report)
    return report


def _enrich_artifact(config: LoadTestConfig, report: LoadTestReport) -> None:
    """Record the run into the per-run artifact (no-op when disabled).

    Writes the workload parameters (everything
    :mod:`repro.serve.replay` needs to reconstruct any request), one
    ``request`` entry per submitted request — with the dose digest the
    replay asserts against — the run-level summary, and a snapshot of
    every cache metric so amortization claims stay auditable.
    """
    if not artifact.enabled():
        return
    workload = asdict(config)
    workload["mode"] = "loadtest"
    artifact.set_param("workload", workload)
    for record in report.records:
        client, index = _parse_request_id(record.request_id)
        artifact.record(
            "request",
            request_id=record.request_id,
            client=client,
            index=index,
            client_id=record.client_id,
            plan_id=record.plan_id,
            precision=record.precision,
            status=record.status,
            latency_ms=record.latency_ms,
            queue_wait_ms=record.queue_wait_ms,
            batch_id=record.batch_id,
            batch_size=record.batch_size,
            modeled_time_s=record.modeled_time_s,
            cache_hit=record.cache_hit,
            shards=record.shards,
            workload=record.workload,
            scenario=record.scenario,
            bitwise=record.bitwise,
            dose_sha256=record.dose_sha256,
            dose_dtype=record.dose_dtype,
        )
    artifact.record(
        "loadtest",
        submitted=report.submitted,
        completed=report.completed,
        rejected=report.rejected,
        wall_s=report.wall_s,
        p50_ms=report.p50_ms,
        p95_ms=report.p95_ms,
        p99_ms=report.p99_ms,
        mean_batch_size=report.mean_batch_size,
        max_batch_size=report.max_batch_size,
        amortization=report.amortization,
        plan_cache_hits=report.plan_cache_hits,
        plan_cache_misses=report.plan_cache_misses,
        bitwise_checked=report.bitwise_checked,
        bitwise_ok=report.bitwise_ok,
        rejections=report.rejections,
        claims=report.claims(),
    )
    artifact.record(
        "serve_cache", metrics=artifact.cache_metrics_snapshot()
    )


def _split_requests(n_requests: int, n_clients: int) -> List[int]:
    base = n_requests // n_clients
    shares = [base] * n_clients
    for i in range(n_requests - base * n_clients):
        shares[i] += 1
    return shares


def _record(request: EvaluationRequest, outcome: Outcome,
            workload: str = "synthetic") -> RequestRecord:
    if isinstance(outcome, Rejected):
        return RequestRecord(
            request_id=request.request_id,
            client_id=request.client_id,
            plan_id=request.plan_id,
            precision=request.precision,
            status=outcome.reason.value,
            workload=workload,
        )
    assert isinstance(outcome, EvaluationResult)
    return RequestRecord(
        request_id=request.request_id,
        client_id=request.client_id,
        plan_id=request.plan_id,
        precision=request.precision,
        status="ok",
        latency_ms=outcome.latency_s * 1e3,
        queue_wait_ms=outcome.queue_wait_s * 1e3,
        batch_id=outcome.batch_id,
        batch_size=outcome.batch_size,
        modeled_time_s=outcome.modeled_time_s,
        cache_hit=outcome.cache_hit,
        shards=outcome.shards,
        workload=workload,
        dose=outcome.dose,
    )


def _ensemble_records(
    request: ScenarioEnsembleRequest,
    outcome: EnsembleOutcome,
    workload: str,
) -> List[RequestRecord]:
    """One record per scenario (or one rejection row for the ensemble).

    Scenario rows carry the *scenario plan id* (``plan-0@s{i}``) and the
    scenario index, so the bitwise audit reconstructs each stand-alone
    ``A_s @ w`` exactly like any other request, and the CSV/artifact
    views expose the fan-out explicitly.
    """
    if isinstance(outcome, Rejected):
        return [
            RequestRecord(
                request_id=request.request_id,
                client_id=request.client_id,
                plan_id=request.plan_id,
                precision=request.precision,
                status=outcome.reason.value,
                workload=workload,
            )
        ]
    assert isinstance(outcome, EnsembleResult)
    rows = []
    for index, result in enumerate(outcome.scenario_results):
        rows.append(
            RequestRecord(
                request_id=request.request_id,
                client_id=request.client_id,
                plan_id=result.plan_id,
                precision=result.precision,
                status="ok",
                latency_ms=result.latency_s * 1e3,
                queue_wait_ms=result.queue_wait_s * 1e3,
                batch_id=result.batch_id,
                batch_size=result.batch_size,
                modeled_time_s=result.modeled_time_s,
                cache_hit=result.cache_hit,
                shards=result.shards,
                workload=workload,
                scenario=index,
                dose=result.dose,
            )
        )
    return rows


def _audit_bitwise(
    config: LoadTestConfig,
    records: List[RequestRecord],
    masters: Dict[str, "object"],
) -> None:
    """Bitwise-compare every served dose with a stand-alone evaluation.

    Each completed request is reconstructed from its seeds and evaluated
    *outside* the service — fresh format conversion, fresh kernel
    instance, batch of one, no cache, no scheduler — and compared
    bit-for-bit with what the service returned.  This is the paper's
    reproducibility requirement lifted to the service layer: batching,
    caching, arrival order and worker scheduling must not change a
    single bit of any dose.

    Doses are dropped from the records afterwards so a big run's report
    does not pin every result vector in memory.
    """
    reference_matrices: Dict[tuple, object] = {}
    with trace_span("serve.loadtest_audit"):
        for record in records:
            if record.status != "ok" or record.dose is None:
                continue
            key = (record.plan_id, record.precision)
            ref = reference_matrices.get(key)
            if ref is None:
                ref = convert_for_kernel(
                    masters[record.plan_id], record.precision
                )
                reference_matrices[key] = ref
            client, index = _parse_request_id(record.request_id)
            weights = request_weights(config, client, index, ref.n_cols)
            standalone = make_kernel(record.precision).run(ref, weights)
            record.bitwise = bool(np.array_equal(record.dose, standalone.y))
            record.dose_sha256 = artifact.dose_sha256(record.dose)
            record.dose_dtype = str(record.dose.dtype)
            record.dose = None


def _parse_request_id(request_id: str) -> tuple:
    """Invert the ``c{client}-r{index}`` naming of synthetic requests."""
    client_part, index_part = request_id.split("-r")
    return int(client_part[1:]), int(index_part)
