"""The dose-evaluation service: submit ``A[plan] @ w``, get a dose back.

Pipeline::

    submit() -> RequestQueue -> MicroBatchScheduler -> WorkerPool
                  (bounded,        (same-plan            (plan cache +
                   per-client       coalescing            kernel run,
                   fairness)        window)               SpMM batch)

Guarantees:

* **Determinism** — a served dose is bitwise identical to a stand-alone
  kernel evaluation of the same (plan, precision, weights), regardless
  of arrival order, batch composition, window length, or worker count.
  Only reproducible kernels are admitted (RayStation's requirement,
  Section II-D, lifted to the service layer); the non-reproducible
  atomics baseline is rejected unless explicitly allowed.
* **Backpressure** — ``submit`` never blocks and never queues without
  bound: it answers with a typed :class:`Rejected` when the queue is
  full, the client is over quota, or the service is draining.
* **Graceful shutdown** — ``stop()`` drains admitted requests, then
  joins the scheduler and every worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.gpu.device import A100, DeviceSpec
from repro.kernels.batched import run_multi_spmv
from repro.kernels.dispatch import kernel_names, make_kernel
from repro.obs import artifact, metrics
from repro.obs.clock import Clock, get_clock
from repro.obs.lockwitness import guarded_lock
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span as trace_span
from repro.serve.cache import PlanMatrixCache, PlanStore
from repro.serve.queue import RequestQueue
from repro.serve.request import (
    EvaluationRequest,
    EvaluationResult,
    Outcome,
    Rejected,
    RejectReason,
    ServeError,
    Ticket,
)
from repro.serve.scheduler import Batch, BatchingPolicy, MicroBatchScheduler
from repro.serve.workers import WorkerPool

_log = get_logger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """All serving knobs in one place."""

    queue_capacity: int = 256
    max_inflight_per_client: int = 64
    n_workers: int = 2
    batching: BatchingPolicy = field(default_factory=BatchingPolicy)
    plan_cache_capacity: int = 8
    device: DeviceSpec = A100
    #: admit kernels whose results are not bitwise reproducible (the
    #: atomics baseline); off by default — serving is a clinical path.
    allow_nonreproducible: bool = False
    #: row shards per evaluation (1 == classic single-device serving;
    #: >1 routes batches through a :class:`repro.dist.ShardedServeBackend`
    #: with the bitwise contract intact).
    shards: int = 1
    #: simulated devices in the sharded pool (None: min(shards, 4)).
    dist_devices: Optional[int] = None
    #: shard placement policy ("memory" or "round_robin").
    dist_placement: str = "memory"
    #: total per-evaluation retry budget for transient device failures.
    dist_retry_budget: int = 2


class DoseEvaluationService:
    """Concurrent front end over the kernel library."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 clock: Optional[Clock] = None) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock or get_clock()
        self.plans = PlanStore()
        self._cache = PlanMatrixCache(
            self.plans, capacity=self.config.plan_cache_capacity
        )
        self._queue = RequestQueue(
            self.config.queue_capacity,
            self.config.max_inflight_per_client,
            clock=self._clock,
        )
        self._scheduler = MicroBatchScheduler(
            self._queue, self.config.batching, self.config.n_workers,
            clock=self._clock,
            # idempotent sentinel delivery (the pool is constructed two
            # lines down; the lambda resolves it at shutdown time).
            stop_sentinels=lambda: self._workers.deliver_stop_sentinels(),
        )
        self._workers = WorkerPool(
            self._scheduler.batches, self._execute_batch,
            n_workers=self.config.n_workers, resolver=self._resolve,
        )
        self._reproducible_kernels = self._probe_reproducible()
        self._shardable_kernels = self._probe_shardable()
        self._dist_backend = None
        if self.config.shards > 1:
            from repro.dist.backend import ShardedServeBackend

            self._dist_backend = ShardedServeBackend(
                shards=self.config.shards,
                n_devices=self.config.dist_devices,
                placement=self.config.dist_placement,
                retry_budget=self.config.dist_retry_budget,
                capacity=self.config.plan_cache_capacity,
                device_name=self.config.device.name,
            )
        self._started = False
        self._stopped = False
        self._accounting = guarded_lock(  # analyze: lock-guards[modeled_batched_s, modeled_sequential_s, plan_cache_hits, plan_cache_misses]
            "serve.service.accounting"
        )
        #: modelled kernel seconds, batched vs sequential (loadtest report).
        self.modeled_batched_s = 0.0
        self.modeled_sequential_s = 0.0
        #: compiled-execution-plan cache outcomes (loadtest report).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    @staticmethod
    def _probe_reproducible() -> Dict[str, bool]:
        return {
            name: make_kernel(name).reproducible for name in kernel_names()
        }

    @staticmethod
    def _probe_shardable() -> Dict[str, bool]:
        """Which kernels can run sharded (compiled-plan families only)."""
        return {
            name: hasattr(make_kernel(name), "plan_family")
            for name in kernel_names()
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "DoseEvaluationService":
        if self._started:
            raise ServeError("service already started")
        self._started = True
        self._scheduler.start()
        self._workers.start()
        _log.info(kv("service started", workers=self.config.n_workers,
                     queue_capacity=self.config.queue_capacity))
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain admitted requests, then stop scheduler and workers."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        self._queue.close()
        self._scheduler.join(timeout)
        # Backstop: if the scheduler thread died before emitting stop
        # sentinels, deliver them here; delivery is idempotent, so the
        # normal path (scheduler already delivered) is a no-op.
        self._workers.deliver_stop_sentinels()
        self._workers.join(timeout)
        _log.info(kv("service stopped"))

    def __enter__(self) -> "DoseEvaluationService":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, request: EvaluationRequest) -> Union[Ticket, Rejected]:
        """Admit a request (returns a :class:`Ticket`) or reject it now."""
        metrics.counter("serve.submitted").inc()
        rejection = self._validate(request)
        if rejection is not None:
            return rejection
        ticket = Ticket(request=request,
                        submitted_at=self._clock.monotonic())
        rejection = self._queue.offer(ticket)
        if rejection is not None:
            return rejection
        return ticket

    def _validate(self, request: EvaluationRequest) -> Optional[Rejected]:
        def reject(reason: RejectReason, detail: str) -> Rejected:
            metrics.counter(f"serve.rejections.{reason.value}").inc()
            return Rejected(request.request_id, reason, detail)

        if not self._started or self._stopped:
            return reject(RejectReason.SHUTTING_DOWN,
                          "service is not accepting requests")
        reproducible = self._reproducible_kernels.get(request.precision)
        if reproducible is None:
            return reject(
                RejectReason.UNKNOWN_PRECISION,
                f"no kernel named {request.precision!r}; available: "
                f"{sorted(self._reproducible_kernels)}",
            )
        if not reproducible and not self.config.allow_nonreproducible:
            return reject(
                RejectReason.NONREPRODUCIBLE,
                f"kernel {request.precision!r} is not bitwise reproducible "
                "and the service requires reproducible results",
            )
        if (
            self.config.shards > 1
            and not self._shardable_kernels.get(request.precision, False)
        ):
            return reject(
                RejectReason.UNSHARDABLE,
                f"kernel {request.precision!r} has no compiled-plan family "
                f"and this service shards evaluations "
                f"{self.config.shards} ways",
            )
        record = self.plans.get(request.plan_id)
        if record is None:
            return reject(
                RejectReason.UNKNOWN_PLAN,
                f"plan {request.plan_id!r} is not registered",
            )
        if request.weights.shape[0] != record.n_spots:
            return reject(
                RejectReason.BAD_SHAPE,
                f"plan {request.plan_id!r} has {record.n_spots} spots but "
                f"weights have shape {request.weights.shape}",
            )
        return None

    def evaluate(
        self, requests: Sequence[EvaluationRequest],
        timeout: Optional[float] = 60.0,
    ) -> List[Outcome]:
        """Submit many requests and wait for every outcome (convenience)."""
        handles = [self.submit(r) for r in requests]
        return [
            h if isinstance(h, Rejected) else h.outcome(timeout)
            for h in handles
        ]

    # ------------------------------------------------------------------ #
    # scenario ensembles (delegates to repro.serve.ensemble)
    # ------------------------------------------------------------------ #

    def register_ensemble(self, plan_id: str, ensemble: object,
                          source: str = "workload"):
        """Register every scenario of an ensemble as plan ``plan_id@s{i}``."""
        from repro.serve.ensemble import register_ensemble

        return register_ensemble(self, plan_id, ensemble, source=source)

    def submit_ensemble(self, request, submit_order=None):
        """Fan one ensemble request out into per-scenario submissions."""
        from repro.serve.ensemble import submit_ensemble

        return submit_ensemble(self, request, submit_order=submit_order)

    def evaluate_ensemble(self, request, timeout: Optional[float] = 60.0,
                          submit_order=None):
        """Submit an ensemble request and wait for the merged dose stack."""
        from repro.serve.ensemble import evaluate_ensemble

        return evaluate_ensemble(
            self, request, timeout=timeout, submit_order=submit_order
        )

    # ------------------------------------------------------------------ #
    # execution (called from worker threads)
    # ------------------------------------------------------------------ #

    def _resolve(self, ticket: Ticket, outcome: Outcome) -> None:
        ticket.resolve(outcome)
        self._queue.release_client(ticket.request.client_id)
        if isinstance(outcome, EvaluationResult):
            metrics.counter("serve.completed").inc()
            metrics.histogram("serve.latency_ms").observe(
                outcome.latency_s * 1e3
            )

    def _execute_batch(self, batch: Batch, worker_name: str) -> None:
        started = self._clock.monotonic()
        try:
            if self._dist_backend is not None:
                # Sharded path: the dist backend owns per-shard plan
                # compilation, so only the converted matrix is needed.
                matrix, cache_hit = self._cache.materialize(
                    batch.plan_id, batch.precision
                )
                plan_hit = None
                with trace_span("serve.dist_spmm", plan=batch.plan_id,
                                precision=batch.precision, size=len(batch),
                                shards=self.config.shards):
                    result = self._dist_backend.run_batch(
                        batch.plan_id, batch.precision, matrix,
                        [t.request.weights for t in batch.tickets],
                    )
            else:
                if hasattr(self._cache, "materialize_with_plan"):
                    matrix, exec_plan, cache_hit, plan_hit = (
                        self._cache.materialize_with_plan(
                            batch.plan_id, batch.precision
                        )
                    )
                else:  # matrix-only cache (tests stub these)
                    matrix, cache_hit = self._cache.materialize(
                        batch.plan_id, batch.precision
                    )
                    exec_plan, plan_hit = None, None
                kernel = make_kernel(batch.precision)
                with trace_span("serve.spmm", plan=batch.plan_id,
                                precision=batch.precision, size=len(batch),
                                plan_cached=plan_hit):
                    result = run_multi_spmv(
                        kernel, matrix,
                        [t.request.weights for t in batch.tickets],
                        device=self.config.device,
                        plan=exec_plan,
                    )
        except BaseException as exc:
            detail = f"{type(exc).__name__}: {exc}"
            metrics.counter("serve.batch_errors").inc()
            for ticket in batch.tickets:
                self._resolve(ticket, Rejected(
                    ticket.request.request_id,
                    RejectReason.INTERNAL_ERROR, detail,
                ))
            return
        with self._accounting:
            self.modeled_batched_s += result.batched_time_s
            self.modeled_sequential_s += result.unbatched_time_s
            if plan_hit is not None:
                if plan_hit:
                    self.plan_cache_hits += 1
                else:
                    self.plan_cache_misses += 1
        if artifact.enabled():
            artifact.record(
                "serve_batch",
                batch_id=batch.batch_id,
                plan_id=batch.plan_id,
                precision=batch.precision,
                size=len(batch),
                request_ids=sorted(
                    t.request.request_id for t in batch.tickets
                ),
                worker=worker_name,
                cache_hit=cache_hit,
                plan_cache_hit=plan_hit,
                shards=getattr(result, "shards", 1),
                batched_time_s=result.batched_time_s,
                unbatched_time_s=result.unbatched_time_s,
            )
        resolved_at = self._clock.monotonic()
        for ticket, kernel_result in zip(batch.tickets, result.per_vector):
            request = ticket.request
            self._resolve(ticket, EvaluationResult(
                request_id=request.request_id,
                plan_id=request.plan_id,
                precision=request.precision,
                dose=kernel_result.y,
                batch_id=batch.batch_id,
                batch_size=len(batch),
                modeled_time_s=kernel_result.timing.time_s,
                queue_wait_s=started - ticket.submitted_at,
                latency_s=resolved_at - ticket.submitted_at,
                worker=worker_name,
                cache_hit=cache_hit,
                shards=getattr(result, "shards", 1),
            ))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, float]:
        """Snapshot of the service's own counters (serve.* metrics)."""
        registry = metrics.get_registry()
        # Container sizes are read before taking the accounting lock:
        # each len() acquires a lower-level lock (queue=20, cache=30 vs
        # accounting=35), and the hierarchy forbids descending holds.
        queue_depth = float(len(self._queue))
        plan_cache_entries = float(len(self._cache))
        registered_plans = float(len(self.plans))
        with self._accounting:
            out: Dict[str, float] = {
                "queue_depth": queue_depth,
                "plan_cache_entries": plan_cache_entries,
                "registered_plans": registered_plans,
                "modeled_batched_s": self.modeled_batched_s,
                "modeled_sequential_s": self.modeled_sequential_s,
                "plan_cache_hits": float(self.plan_cache_hits),
                "plan_cache_misses": float(self.plan_cache_misses),
            }
        for name, state in registry.snapshot().items():
            if not name.startswith("serve."):
                continue
            if state["type"] == "histogram":
                out[f"{name}.count"] = state["count"]
                out[f"{name}.mean"] = state["mean"]
            else:
                out[name] = state["value"]
        return out
