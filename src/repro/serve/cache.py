"""Plan registry and bounded plan-matrix cache.

A *plan* is a registered deposition matrix (float32 CSR master copy).
Kernels consume derived representations — half-precision CSR, ELLPACK,
SELL-C-sigma, RSCF — and deriving them is exactly the conversion cost
the paper's Section VI measures, so the service keeps a bounded LRU of
``(plan_id, precision) -> prepared matrix`` in front of the kernel pool.

Admission control happens at registration (only registered plans are
servable) and at the cache boundary (the LRU cap bounds resident
converted matrices; eviction is reconversion cost, not correctness).
The cache reuses the bench harness's :class:`~repro.bench.harness.
LRUCache` — same single-flight semantics, same hit/miss/eviction
metrics, reported under ``serve.plan_cache.*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import LRUCache, convert_for_kernel
from repro.kernels.dispatch import make_kernel
from repro.kernels.plan import SpMVPlan
from repro.obs.lockwitness import guarded_lock
from repro.obs.trace import span as trace_span
from repro.serve.request import ServeError
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class PlanRecord:
    """One registered plan: the master matrix plus lookup metadata."""

    plan_id: str
    matrix: CSRMatrix
    #: where the plan came from (a Table I case name or "custom").
    source: str

    @property
    def n_spots(self) -> int:
        return self.matrix.n_cols

    @property
    def n_voxels(self) -> int:
        return self.matrix.n_rows


class PlanStore:
    """Thread-safe registry of servable plans."""

    def __init__(self) -> None:
        self._lock = guarded_lock(  # analyze: lock-guards[_plans]
            "serve.cache.PlanStore"
        )
        self._plans: Dict[str, PlanRecord] = {}

    def register(self, plan_id: str, matrix: CSRMatrix,
                 source: str = "custom", replace: bool = False) -> PlanRecord:
        """Register a float32 CSR master copy under ``plan_id``."""
        record = PlanRecord(plan_id=plan_id, matrix=matrix, source=source)
        with self._lock:
            if plan_id in self._plans and not replace:
                raise ServeError(
                    f"plan {plan_id!r} is already registered; pass "
                    "replace=True to overwrite it deliberately"
                )
            self._plans[plan_id] = record
        return record

    def register_case(self, plan_id: str, case_name: str,
                      preset: str = "tiny") -> PlanRecord:
        """Register one of the paper's Table I cases as a servable plan."""
        from repro.plans.cases import build_case_matrix

        dep = build_case_matrix(case_name, preset)
        return self.register(plan_id, dep.matrix,
                             source=f"{case_name}/{preset}")

    def get(self, plan_id: str) -> Optional[PlanRecord]:
        with self._lock:
            return self._plans.get(plan_id)

    def plan_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._plans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


class PlanMatrixCache:
    """Bounded LRU of kernel-ready matrices, keyed (plan_id, precision).

    A second LRU with the same single-flight semantics holds *compiled
    execution plans* (:class:`repro.kernels.plan.SpMVPlan`) next to the
    converted matrices, so a hot plan pays format conversion **and**
    plan compilation exactly once across all workers; its metrics are
    reported under ``serve.exec_plan_cache.*``.
    """

    def __init__(self, store: PlanStore, capacity: int = 8,
                 plan_capacity: Optional[int] = None) -> None:
        self._store = store
        self._lru: LRUCache[Tuple[str, str], object] = LRUCache(
            "plan_cache", capacity, metric_prefix="serve"
        )
        self._exec_plans: LRUCache[Tuple[str, str], SpMVPlan] = LRUCache(
            "exec_plan_cache", plan_capacity or capacity,
            metric_prefix="serve",
        )

    def materialize(
        self, plan_id: str, precision: str
    ) -> Tuple[object, bool]:
        """The kernel-ready matrix for one (plan, precision) pair.

        Returns ``(matrix, cache_hit)``.  Conversion is single-flighted:
        concurrent workers asking for the same pair trigger one
        conversion.  Raises :class:`ServeError` for unknown plans (the
        service normally rejects those at submit time; this guards the
        execution path).
        """
        record = self._store.get(plan_id)
        if record is None:
            raise ServeError(f"plan {plan_id!r} is not registered")
        built_here: List[bool] = []

        def build() -> object:
            built_here.append(True)
            with trace_span("serve.plan_convert", plan=plan_id,
                            precision=precision):
                return convert_for_kernel(record.matrix, precision)

        matrix = self._lru.get_or_create((plan_id, precision), build)
        return matrix, not built_here

    def materialize_with_plan(
        self, plan_id: str, precision: str
    ) -> Tuple[object, Optional[SpMVPlan], bool, Optional[bool]]:
        """Matrix plus compiled execution plan for one (plan, precision).

        Returns ``(matrix, exec_plan, matrix_hit, plan_hit)``.  For
        kernels without a plan family (libraries, baselines, RSCF
        formats) ``exec_plan`` and ``plan_hit`` are ``None`` and the
        caller falls back to the per-call path.  Plan compilation is
        single-flighted like matrix conversion.
        """
        matrix, matrix_hit = self.materialize(plan_id, precision)
        kernel = make_kernel(precision)
        if not hasattr(kernel, "prepare_plan"):
            return matrix, None, matrix_hit, None
        built_here: List[bool] = []

        def build() -> SpMVPlan:
            built_here.append(True)
            with trace_span("serve.plan_compile", plan=plan_id,
                            precision=precision):
                return kernel.prepare_plan(matrix)

        key = (plan_id, precision)
        exec_plan = self._exec_plans.get_or_create(key, build)
        if not exec_plan.matches(matrix):
            # The matrix LRU evicted and rebuilt the converted matrix
            # since this plan was compiled; recompile against the live
            # object and refresh the entry (counted as a miss).
            built_here.append(True)
            with trace_span("serve.plan_compile", plan=plan_id,
                            precision=precision, recompiled=True):
                exec_plan = kernel.prepare_plan(matrix)
            self._exec_plans.put(key, exec_plan)
        return matrix, exec_plan, matrix_hit, not built_here

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()
        self._exec_plans.clear()
