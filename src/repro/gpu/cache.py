"""A set-associative LRU cache simulator.

The traffic model in :mod:`repro.gpu.memory` uses a capacity heuristic:
gathers from a vector that *fits* in L2 cost DRAM once, and everything
else thrashes proportionally.  The paper leans on the same reasoning
("the dimensions of the input vector ... are small enough to fit entirely
in the 40MB L2 cache").  This module provides the ground truth the
heuristic is checked against: an actual set-associative LRU cache that
replays access traces and reports hit/miss counts.

It is a *validation* tool (tests replay the kernels' gather traces through
it and assert the heuristic's DRAM counts are right), not part of the hot
path — a trace-driven simulator over 10^9 accesses would defeat the point
of the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.util.errors import ReproError


@dataclass(frozen=True)
class CacheStats:
    """Outcome of replaying one access trace."""

    accesses: int
    hits: int
    misses: int
    #: bytes fetched from the next level (misses x line size).
    miss_bytes: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0

    @property
    def compulsory_fraction(self) -> float:
        """Misses per access — 1.0 means no reuse was captured at all."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache over byte addresses.

    Implemented with NumPy state (tag and age arrays per set) and a
    chunked replay loop, fast enough for the multi-million-access traces
    the bench-scale matrices produce.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 32, ways: int = 16):
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ReproError("cache geometry must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways or n_lines % ways:
            raise ReproError(
                f"capacity {capacity_bytes} B / line {line_bytes} B does not "
                f"divide into {ways}-way sets"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_lines // ways
        # tags[set, way]; -1 = invalid.  ages: larger = more recent.
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self._ages = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._clock = 0

    def reset(self) -> None:
        """Invalidate all lines."""
        self._tags.fill(-1)
        self._ages.fill(0)
        self._clock = 0

    def access(self, byte_addresses: np.ndarray) -> CacheStats:
        """Replay a trace of byte addresses (in order); returns stats.

        Sequential semantics (each access sees the effects of previous
        ones), looped per access — use modest traces (<~10^7).
        """
        addresses = np.asarray(byte_addresses, dtype=np.int64)
        lines = addresses // self.line_bytes
        sets = (lines % self.n_sets).astype(np.int64)
        tags = (lines // self.n_sets).astype(np.int64)
        hits = 0
        tags_arr = self._tags
        ages_arr = self._ages
        clock = self._clock
        for s, t in zip(sets, tags):
            row = tags_arr[s]
            clock += 1
            hit_ways = np.flatnonzero(row == t)
            if hit_ways.size:
                ages_arr[s, hit_ways[0]] = clock
                hits += 1
                continue
            victim = int(np.argmin(ages_arr[s]))
            row[victim] = t
            ages_arr[s, victim] = clock
        self._clock = clock
        misses = addresses.size - hits
        return CacheStats(
            accesses=int(addresses.size),
            hits=int(hits),
            misses=int(misses),
            miss_bytes=int(misses) * self.line_bytes,
        )

    @staticmethod
    def for_device(device: DeviceSpec, ways: int = 16) -> "SetAssociativeCache":
        """An L2-shaped cache for a device."""
        return SetAssociativeCache(
            capacity_bytes=device.l2_bytes,
            line_bytes=device.sector_bytes,
            ways=ways,
        )


def gather_trace_stats(
    indices: np.ndarray,
    elem_bytes: int,
    cache: SetAssociativeCache,
    max_accesses: int = 2_000_000,
) -> CacheStats:
    """Replay a gather's element indices through a cache.

    ``indices`` are element indices into the gathered vector; addresses
    are ``index * elem_bytes``.  Long traces are truncated to
    ``max_accesses`` (a uniform prefix keeps the reuse pattern intact).
    """
    indices = np.asarray(indices, dtype=np.int64)[:max_accesses]
    return cache.access(indices * elem_bytes)
