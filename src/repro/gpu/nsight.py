"""Nsight-Compute-style profiler reports from simulated kernel runs.

The paper's measurements come from Nvidia Nsight Compute ("We use Nvidia's
Nsight Compute to measure the total size of all memory transactions from
DRAM to the caches", Section IV).  This module renders the simulator's
counters and timing breakdown in the familiar ncu section layout —
Speed Of Light, Memory Workload Analysis, Occupancy, Launch Statistics —
so a reader used to ncu output can audit the model the same way the
authors audited the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpu.launch import occupancy
from repro.kernels.base import KernelResult
from repro.util.units import format_bandwidth, format_bytes, format_time


@dataclass(frozen=True)
class ProfileSection:
    """One ncu-style report section."""

    title: str
    metrics: List[tuple]  # (name, value, unit)

    def render(self, width: int = 70) -> str:
        bar = "-" * width
        lines = [bar, f"  {self.title}", bar]
        for name, value, unit in self.metrics:
            lines.append(f"    {name:<44s} {str(value):>16s} {unit}")
        return "\n".join(lines)


def speed_of_light(result: KernelResult) -> ProfileSection:
    """SOL section: how close to device limits the kernel runs."""
    device = result.device
    timing = result.timing
    mem_pct = 100.0 * timing.bandwidth_fraction(device)
    compute_pct = (
        100.0
        * result.counters.flops
        / max(timing.time_s, 1e-30)
        / device.peak_flops(result.accum_bytes)
    )
    return ProfileSection(
        "GPU Speed Of Light Throughput",
        [
            ("Memory Throughput", f"{mem_pct:.1f}", "% of peak"),
            ("Compute (FP) Throughput", f"{compute_pct:.1f}", "% of peak"),
            ("Duration", format_time(timing.time_s), ""),
            ("Limiting Resource", timing.limiter, ""),
        ],
    )


def memory_workload(result: KernelResult) -> ProfileSection:
    """Memory section: the dram_bytes breakdown the paper's model predicts."""
    c = result.counters
    timing = result.timing
    return ProfileSection(
        "Memory Workload Analysis",
        [
            ("DRAM <-> L2 Traffic (dram_bytes)", format_bytes(c.dram_bytes), ""),
            ("  matrix values + indices", format_bytes(c.dram_bytes_nnz), ""),
            ("  row pointers + output vector", format_bytes(c.dram_bytes_rows), ""),
            ("  input-vector footprint", format_bytes(c.dram_bytes_cols), ""),
            ("  capacity-miss refetch", format_bytes(c.dram_bytes_refetch), ""),
            ("L2 Transaction Volume", format_bytes(c.l2_bytes_total), ""),
            ("Achieved DRAM Bandwidth",
             format_bandwidth(timing.achieved_dram_bw), ""),
            ("Operational Intensity",
             f"{c.operational_intensity:.3f}", "flop/byte"),
            ("Global Atomics", f"{c.atomic_ops:.3g}", "ops"),
        ],
    )


def occupancy_section(result: KernelResult) -> ProfileSection:
    """Occupancy section (launch-bounds driven, as in the paper's sweep)."""
    if result.launch is None:
        return ProfileSection("Occupancy", [("Host execution", "n/a", "")])
    occ = occupancy(result.device, result.launch)
    return ProfileSection(
        "Occupancy",
        [
            ("Block Size", result.launch.threads_per_block, "threads"),
            ("Resident Blocks / SM", occ.resident_blocks_per_sm, ""),
            ("Resident Warps / SM", occ.resident_warps_per_sm, ""),
            ("Theoretical Occupancy", f"{100 * occ.fraction:.0f}", "%"),
        ],
    )


def launch_statistics(result: KernelResult) -> ProfileSection:
    """Launch geometry section."""
    if result.launch is None:
        return ProfileSection("Launch Statistics", [("Host execution", "n/a", "")])
    return ProfileSection(
        "Launch Statistics",
        [
            ("Grid Size", result.launch.grid_blocks, "blocks"),
            ("Total Threads", result.launch.total_threads, ""),
            ("Warps Launched", f"{result.counters.n_warps:.3g}", ""),
            ("Warp Iterations", f"{result.counters.warp_iterations:.3g}", ""),
        ],
    )


def timing_breakdown(result: KernelResult) -> ProfileSection:
    """The analytical model's component times (not an ncu section, but the
    piece a model audit needs)."""
    rows = [
        (f"t[{name}]", format_time(value), "")
        for name, value in sorted(
            result.timing.components.items(), key=lambda kv: -kv[1]
        )
    ]
    return ProfileSection("Timing Model Breakdown", rows)


def profile_report(result: KernelResult) -> str:
    """Full ncu-style report for one kernel execution."""
    header = (
        f"== PROF == {result.kernel} on {result.device.name}, "
        f"modelled duration {format_time(result.timing.time_s)}"
    )
    sections = [
        speed_of_light(result),
        memory_workload(result),
        occupancy_section(result),
        launch_statistics(result),
        timing_breakdown(result),
    ]
    return "\n".join([header] + [s.render() for s in sections])
