"""Device catalogue: the GPUs and the CPU the paper evaluates on.

Each :class:`DeviceSpec` carries the published hardware characteristics
(SM count, peak bandwidth, peak FLOP rates, L2 size) plus a small set of
microarchitectural parameters the timing model uses (memory latency,
outstanding memory sectors per warp, atomic throughput).  The
microarchitectural values are set from public microbenchmark literature;
the P100's low ``sectors_per_warp`` encodes that pre-Volta parts lack
independent thread scheduling and hardware-accelerated cooperative-group
reductions, which is what limits this kernel family to ~41 % of peak
bandwidth there (Section V of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.util.errors import DeviceError


class DeviceKind(enum.Enum):
    """Processor family a device belongs to."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware description used by the execution and timing models."""

    name: str
    kind: DeviceKind
    #: streaming multiprocessors (GPU) or physical cores (CPU).
    sm_count: int
    #: SIMT width (32 on all Nvidia parts; SIMD doubles per core for CPU).
    warp_size: int
    clock_ghz: float
    #: peak DRAM (HBM2/DDR4) bandwidth in bytes/s.
    peak_bw: float
    #: peak double-precision FLOP/s.
    peak_flops_fp64: float
    #: peak single-precision FLOP/s.
    peak_flops_fp32: float
    #: last-level (L2) cache capacity in bytes.
    l2_bytes: int
    #: aggregate L2 bandwidth in bytes/s.
    l2_bw: float
    #: device memory capacity in bytes.
    dram_bytes: int
    #: memory sector (minimum DRAM transaction) size in bytes.
    sector_bytes: int = 32
    #: average DRAM load latency in seconds.
    mem_latency_s: float = 450e-9
    #: outstanding memory sectors a single warp keeps in flight; encodes
    #: scheduler/MSHR capability differences between generations.
    sectors_per_warp: float = 6.0
    #: fraction of peak DRAM bandwidth reachable by a perfectly streaming
    #: kernel (DRAM efficiency ceiling; ~0.85-0.9 for HBM2).
    dram_efficiency_ceiling: float = 0.88
    #: FP64 atomicAdd operations per second at L2 (conflict-free).
    atomic_fp64_rate: float = 50e9
    #: max resident threads per SM.
    max_threads_per_sm: int = 2048
    #: max threads per block the launch validator accepts.
    max_threads_per_block: int = 1024
    #: max resident blocks per SM.
    max_blocks_per_sm: int = 32
    #: cycles to schedule/retire one thread block (turnover overhead).
    block_turnover_cycles: float = 250.0
    #: whether cooperative groups reductions run in hardware (Volta+).
    coop_groups_hw: bool = True

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.warp_size <= 0:
            raise DeviceError(f"{self.name}: non-positive SM/warp configuration")
        if self.peak_bw <= 0 or self.peak_flops_fp64 <= 0:
            raise DeviceError(f"{self.name}: non-positive peak rates")

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    def peak_flops(self, precision_bytes: int) -> float:
        """Peak FLOP/s for a value width (8 -> FP64, else FP32 path)."""
        return self.peak_flops_fp64 if precision_bytes >= 8 else self.peak_flops_fp32

    def max_resident_warps(self, threads_per_block: int) -> int:
        """Resident warps per SM for a block size (occupancy numerator)."""
        if threads_per_block <= 0:
            return 0
        blocks = min(
            self.max_threads_per_sm // threads_per_block, self.max_blocks_per_sm
        )
        return blocks * threads_per_block // self.warp_size


#: Nvidia A100-SXM4-40GB (Ampere GA100) — the paper's primary platform.
A100 = DeviceSpec(
    name="A100",
    kind=DeviceKind.GPU,
    sm_count=108,
    warp_size=32,
    clock_ghz=1.41,
    peak_bw=1555e9,
    peak_flops_fp64=9.7e12,
    peak_flops_fp32=19.5e12,
    l2_bytes=40 * 2**20,
    l2_bw=4500e9,
    dram_bytes=40 * 2**30,
    mem_latency_s=470e-9,
    sectors_per_warp=6.0,
    dram_efficiency_ceiling=0.88,
    atomic_fp64_rate=66e9,
    coop_groups_hw=True,
)

#: Nvidia V100-SXM2-16GB (Volta GV100) — Kebnekaise GPU nodes.
V100 = DeviceSpec(
    name="V100",
    kind=DeviceKind.GPU,
    sm_count=80,
    warp_size=32,
    clock_ghz=1.53,
    peak_bw=897e9,
    peak_flops_fp64=7.8e12,
    peak_flops_fp32=15.7e12,
    l2_bytes=6 * 2**20,
    l2_bw=2500e9,
    dram_bytes=16 * 2**30,
    mem_latency_s=425e-9,
    sectors_per_warp=4.0,
    dram_efficiency_ceiling=0.87,
    atomic_fp64_rate=30e9,
    coop_groups_hw=True,
)

#: Nvidia P100-SXM2-16GB (Pascal GP100) on the POWER8 system.
#: Pre-Volta: cooperative groups are software-emulated and the scheduler
#: keeps far fewer memory requests in flight per warp for this kernel
#: family, which is what caps it at ~41 % of peak bandwidth.
P100 = DeviceSpec(
    name="P100",
    kind=DeviceKind.GPU,
    sm_count=56,
    warp_size=32,
    clock_ghz=1.48,
    peak_bw=732e9,
    peak_flops_fp64=4.7e12,
    peak_flops_fp32=9.3e12,
    l2_bytes=4 * 2**20,
    l2_bw=1600e9,
    dram_bytes=16 * 2**30,
    mem_latency_s=560e-9,
    sectors_per_warp=1.5,
    dram_efficiency_ceiling=0.85,
    atomic_fp64_rate=12e9,
    coop_groups_hw=False,
)

#: Intel i9-7940X (Skylake-X, 14C/28T) running the RayStation CPU code.
#: ``warp_size`` models the 8-wide AVX-512 double lanes; ``sm_count`` is
#: physical cores.  The efficiency parameters reflect a scratch-array
#: reduction algorithm rather than a perfectly tuned stream kernel.
CPU_I9_7940X = DeviceSpec(
    name="i9-7940X",
    kind=DeviceKind.CPU,
    sm_count=14,
    warp_size=8,
    clock_ghz=3.1,
    peak_bw=85e9,
    peak_flops_fp64=1.39e12,
    peak_flops_fp32=2.78e12,
    l2_bytes=19 * 2**20,  # L3 (LLC) capacity
    l2_bw=400e9,
    dram_bytes=64 * 2**30,
    sector_bytes=64,
    mem_latency_s=90e-9,
    sectors_per_warp=10.0,
    dram_efficiency_ceiling=0.75,
    atomic_fp64_rate=1e9,
    max_threads_per_sm=2,
    max_threads_per_block=2,
    max_blocks_per_sm=1,
    block_turnover_cycles=0.0,
    coop_groups_hw=False,
)

_CATALOGUE: Dict[str, DeviceSpec] = {
    spec.name.lower(): spec for spec in (A100, V100, P100, CPU_I9_7940X)
}

#: Devices evaluated in Figure 7, in the paper's order.
GPU_DEVICES = (A100, V100, P100)


def get_device(name: str) -> DeviceSpec:
    """Look up a device by (case-insensitive) name.

    >>> get_device("a100").peak_bw
    1555000000000.0
    """
    try:
        return _CATALOGUE[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(_CATALOGUE)}"
        ) from None


def list_devices() -> Dict[str, DeviceSpec]:
    """All known devices keyed by lower-case name."""
    return dict(_CATALOGUE)
