"""Device-memory planning and chunked SpMV execution plans.

Table I's matrices push GPU memory: liver beam 4 is 11 GB in the paper's
half+int32 accounting, and a 4-beam liver plan totals ~36 GB — fine on the
A100-40GB the paper uses, impossible on the 16 GB V100/P100.  This module
answers the deployment questions the paper leaves to the reader:

* does a case (or a whole plan) fit a device, with working-set overheads?
* if not, how many *row chunks* must the SpMV be split into, and what does
  the chunking cost (the input vector is re-read once per chunk)?

Chunking by rows preserves bitwise reproducibility (each row is still
reduced by exactly one warp in the same order); only the launch count and
the input-vector re-reads change — both accounted for in the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.gpu.device import DeviceSpec
from repro.precision.types import HALF_DOUBLE, MixedPrecision
from repro.util.errors import ReproError

#: Fraction of device memory usable for data (the rest: CUDA context,
#: allocator slack, workspace).
USABLE_FRACTION = 0.92


@dataclass(frozen=True)
class MatrixFootprint:
    """Device-resident bytes of one deposition matrix + its vectors."""

    name: str
    n_rows: float
    n_cols: float
    nnz: float
    precision: MixedPrecision = HALF_DOUBLE

    @property
    def matrix_bytes(self) -> float:
        """Values + column indices + row pointers."""
        return (
            self.nnz * (self.precision.matrix.nbytes + self.precision.index_bytes)
            + (self.n_rows + 1) * 4
        )

    @property
    def vector_bytes(self) -> float:
        """Input + output vectors at the vector precision."""
        return (self.n_rows + self.n_cols) * self.precision.vector.nbytes

    @property
    def total_bytes(self) -> float:
        return self.matrix_bytes + self.vector_bytes


@dataclass(frozen=True)
class ChunkPlan:
    """How one matrix executes on one device."""

    footprint: MatrixFootprint
    device: str
    fits_resident: bool
    n_chunks: int
    chunk_rows: int
    #: extra input-vector traffic from re-reading x once per chunk.
    extra_x_bytes: float

    @property
    def resident_bytes(self) -> float:
        """Peak device memory during execution."""
        if self.fits_resident:
            return self.footprint.total_bytes
        return (
            self.footprint.matrix_bytes / self.n_chunks
            + self.footprint.vector_bytes
        )

    @property
    def traffic_overhead_fraction(self) -> float:
        """Extra DRAM traffic vs the resident plan (host transfers aside)."""
        base = self.footprint.matrix_bytes + self.footprint.vector_bytes
        return self.extra_x_bytes / base if base else 0.0


def usable_bytes(device: DeviceSpec) -> float:
    """Device memory available for matrix data."""
    return device.dram_bytes * USABLE_FRACTION


def plan_execution(
    footprint: MatrixFootprint, device: DeviceSpec
) -> ChunkPlan:
    """Fit a matrix on a device, chunking rows if needed.

    Chunks are sized so (chunk matrix + both vectors) fits in usable
    memory; the input vector is (re-)read once per chunk.
    """
    budget = usable_bytes(device)
    if footprint.vector_bytes >= budget:
        raise ReproError(
            f"{footprint.name}: even the dense vectors "
            f"({footprint.vector_bytes / 1e9:.2f} GB) exceed {device.name}'s "
            f"usable memory"
        )
    if footprint.total_bytes <= budget:
        return ChunkPlan(
            footprint=footprint,
            device=device.name,
            fits_resident=True,
            n_chunks=1,
            chunk_rows=int(footprint.n_rows),
            extra_x_bytes=0.0,
        )
    matrix_budget = budget - footprint.vector_bytes
    n_chunks = int(-(-footprint.matrix_bytes // matrix_budget))
    chunk_rows = int(-(-footprint.n_rows // n_chunks))
    extra_x = (
        (n_chunks - 1) * footprint.n_cols * footprint.precision.vector.nbytes
    )
    return ChunkPlan(
        footprint=footprint,
        device=device.name,
        fits_resident=False,
        n_chunks=n_chunks,
        chunk_rows=chunk_rows,
        extra_x_bytes=extra_x,
    )


def plan_beams(
    footprints: Sequence[MatrixFootprint], device: DeviceSpec
) -> List[ChunkPlan]:
    """Plan a multi-beam treatment plan: can all beams stay resident?

    If the sum fits, everything is resident (the optimizer touches every
    beam each iteration, so keeping all resident avoids PCIe churn);
    otherwise each beam is planned independently (streamed one at a time).
    """
    total = sum(f.total_bytes for f in footprints)
    if total <= usable_bytes(device):
        return [plan_execution(f, device) for f in footprints]
    return [plan_execution(f, device) for f in footprints]


def paper_case_footprint(
    name: str, precision: MixedPrecision = HALF_DOUBLE
) -> MatrixFootprint:
    """Footprint of a Table I case at full paper scale."""
    from repro.plans.cases import PAPER_TABLE1

    scale = PAPER_TABLE1[name]
    return MatrixFootprint(
        name=name,
        n_rows=scale.rows,
        n_cols=scale.cols,
        nnz=scale.nnz,
        precision=precision,
    )
