"""CUDA cooperative-groups emulation at warp granularity.

The paper's kernel partitions each thread block into 32-thread tiles
(``cg::tiled_partition<32>``) and combines per-lane partial sums with
``cg::reduce``.  What matters for bitwise reproducibility is the *exact
combination order*: ``cg::reduce`` on a warp performs a 5-round butterfly
(shuffle) tree.  This module implements that order, both for a single warp
and vectorized across many warps at once (how the simulator executes all
rows of the matrix efficiently).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import LaunchConfigError


@dataclass(frozen=True)
class WarpTile:
    """A ``tiled_partition<width>`` handle.

    Only the collective used by the paper's kernel (``reduce`` with plus)
    is provided; ``shfl_down`` is exposed for completeness and tests.
    """

    width: int = 32

    def __post_init__(self) -> None:
        if self.width <= 0 or (self.width & (self.width - 1)) != 0:
            raise LaunchConfigError(
                f"tile width must be a power of two, got {self.width}"
            )

    def shfl_down(self, lanes: np.ndarray, delta: int) -> np.ndarray:
        """``tile.shfl_down(v, delta)``: lane ``i`` receives lane ``i+delta``.

        Lanes shifted in from beyond the tile keep their own value,
        matching CUDA's behaviour for out-of-range source lanes.
        """
        lanes = np.asarray(lanes)
        if lanes.shape[-1] != self.width:
            raise LaunchConfigError(
                f"lane axis has {lanes.shape[-1]} entries, tile width is "
                f"{self.width}"
            )
        out = lanes.copy()
        if delta <= 0:
            return out
        out[..., : self.width - delta] = lanes[..., delta:]
        return out

    def reduce_add(self, lanes: np.ndarray) -> np.ndarray:
        """``cg::reduce(tile, v, plus)`` — butterfly tree sum.

        ``lanes`` has the lane index as its last axis (shape ``(..., width)``);
        the reduction is vectorized over all leading axes, so one call
        reduces every warp of a launch simultaneously *in the identical
        per-warp order* hardware would use.

        Returns the reduced values with the lane axis removed.
        """
        lanes = np.asarray(lanes)
        if lanes.shape[-1] != self.width:
            raise LaunchConfigError(
                f"lane axis has {lanes.shape[-1]} entries, tile width is "
                f"{self.width}"
            )
        acc = lanes.copy()
        stride = self.width // 2
        while stride >= 1:
            # shuffle-down round: lane i += lane i+stride
            acc[..., :stride] = acc[..., :stride] + acc[..., stride : 2 * stride]
            stride //= 2
        return acc[..., 0]

    @property
    def reduce_rounds(self) -> int:
        """Number of shuffle rounds one reduce costs (log2(width))."""
        return int(self.width).bit_length() - 1


def thread_rank_linear(block_dim: int, warp_size: int = 32) -> np.ndarray:
    """Lane ids 0..warp_size-1 for each warp of a block (test helper)."""
    if block_dim % warp_size:
        raise LaunchConfigError(
            f"block of {block_dim} threads is not a whole number of warps"
        )
    return np.tile(np.arange(warp_size), block_dim // warp_size)
