"""Kernel launch configuration and occupancy calculation.

Mirrors the CUDA execution-configuration rules the paper sweeps in
Figure 4: the vector-CSR kernel launches ``32 * n_rows`` total threads, the
block size varies between 32 and 1024, and the grid is sized so the product
matches the total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.util.errors import LaunchConfigError


@dataclass(frozen=True)
class LaunchConfig:
    """A CUDA-style ``<<<grid, block>>>`` configuration."""

    grid_blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise LaunchConfigError(f"grid must be positive, got {self.grid_blocks}")
        if self.threads_per_block <= 0:
            raise LaunchConfigError(
                f"block size must be positive, got {self.threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        """Threads launched across the whole grid."""
        return self.grid_blocks * self.threads_per_block

    def validate(self, device: DeviceSpec) -> "LaunchConfig":
        """Raise :class:`LaunchConfigError` if illegal on ``device``."""
        if self.threads_per_block > device.max_threads_per_block:
            raise LaunchConfigError(
                f"block size {self.threads_per_block} exceeds device limit "
                f"{device.max_threads_per_block}"
            )
        if device.is_gpu and self.threads_per_block % device.warp_size != 0:
            raise LaunchConfigError(
                f"block size {self.threads_per_block} is not a multiple of the "
                f"warp size {device.warp_size}"
            )
        return self


def warp_per_row_launch(
    n_rows: int, threads_per_block: int = 512, warp_size: int = 32
) -> LaunchConfig:
    """The paper's execution configuration for the vector-CSR kernel.

    Total threads are fixed at ``warp_size * n_rows`` (one warp per matrix
    row); the grid is the smallest one covering that with the requested
    block size.
    """
    if n_rows <= 0:
        raise LaunchConfigError(f"n_rows must be positive, got {n_rows}")
    total = warp_size * n_rows
    grid = (total + threads_per_block - 1) // threads_per_block
    return LaunchConfig(grid, threads_per_block)


def thread_per_item_launch(n_items: int, threads_per_block: int = 128) -> LaunchConfig:
    """One thread per work item (scalar-CSR and the atomics baseline)."""
    if n_items <= 0:
        raise LaunchConfigError(f"n_items must be positive, got {n_items}")
    grid = (n_items + threads_per_block - 1) // threads_per_block
    return LaunchConfig(grid, threads_per_block)


@dataclass(frozen=True)
class Occupancy:
    """Achieved occupancy of a launch on a device."""

    resident_warps_per_sm: int
    max_warps_per_sm: int
    resident_blocks_per_sm: int

    @property
    def fraction(self) -> float:
        """Resident / maximum warps — the classic occupancy metric."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return self.resident_warps_per_sm / self.max_warps_per_sm


def occupancy(device: DeviceSpec, config: LaunchConfig) -> Occupancy:
    """Compute resident warps per SM for a launch (register/smem ignored;
    the paper's kernels are limited by thread count, not registers)."""
    config.validate(device)
    warp = device.warp_size
    blocks = min(
        device.max_threads_per_sm // config.threads_per_block,
        device.max_blocks_per_sm,
    )
    blocks = max(blocks, 0)
    # Cannot keep more blocks resident than the grid provides.
    grid_limit = (config.grid_blocks + device.sm_count - 1) // device.sm_count
    blocks = min(blocks, max(grid_limit, 1)) if config.grid_blocks else blocks
    resident_warps = blocks * (config.threads_per_block // warp)
    return Occupancy(
        resident_warps_per_sm=resident_warps,
        max_warps_per_sm=device.max_threads_per_sm // warp,
        resident_blocks_per_sm=blocks,
    )
