"""Shared launch-execution helpers for simulated kernels.

Kernels in :mod:`repro.kernels` implement two halves: a *functional* half
(the exact arithmetic, vectorized over warps with NumPy) and an
*accounting* half (PerfCounters from the access pattern).  This module
holds the pieces both halves share: workload profiling, warp iteration /
lane-waste accounting, and a tiny launch record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.launch import LaunchConfig
from repro.gpu.timing import WorkloadProfile
from repro.sparse.csr import CSRMatrix


def workload_profile(matrix: CSRMatrix) -> WorkloadProfile:
    """Row-length statistics the timing model consumes."""
    lengths = matrix.row_lengths().astype(np.float64)
    nonempty = lengths[lengths > 0]
    if nonempty.size == 0:
        return WorkloadProfile(avg_row_len=0.0, rowlen_cv=0.0)
    mean = float(nonempty.mean())
    std = float(nonempty.std())
    return WorkloadProfile(
        avg_row_len=mean, rowlen_cv=std / mean if mean else 0.0
    )


@dataclass(frozen=True)
class WarpWork:
    """Warp-level work decomposition of a warp-per-row kernel."""

    #: sum over rows of ceil(len / 32): total inner-loop iterations.
    iterations: int
    #: idle lane-slots in final iterations (sum of (32 - len % 32) % 32).
    idle_lane_slots: int
    #: warps launched (== rows).
    n_warps: int


def warp_work(matrix: CSRMatrix, warp_size: int = 32) -> WarpWork:
    """Decompose a matrix into warp iterations for the vector-CSR kernel."""
    lengths = matrix.row_lengths().astype(np.int64)
    iterations = int(np.sum((lengths + warp_size - 1) // warp_size))
    remainder = lengths % warp_size
    idle = int(np.sum(np.where(lengths > 0, (warp_size - remainder) % warp_size, 0)))
    return WarpWork(
        iterations=iterations, idle_lane_slots=idle, n_warps=matrix.n_rows
    )


def attach_launch_counts(
    counters: PerfCounters, launch: LaunchConfig, warp_size: int = 32
) -> PerfCounters:
    """Record grid geometry into the counters (blocks, warps launched)."""
    counters.n_blocks = float(launch.grid_blocks)
    if counters.n_warps == 0:
        counters.n_warps = launch.total_threads / warp_size
    return counters
