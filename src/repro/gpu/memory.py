"""Memory-transaction accounting: coalescing, sectors and the L2 model.

The quantity the whole paper revolves around is DRAM<->L2 traffic.  This
module converts the *access patterns* of the simulated kernels into sector
counts the way Nsight Compute's ``dram_bytes`` metric would:

* streaming arrays (matrix values, column indices, ``indptr``) are read
  exactly once — compulsory traffic equals their footprint, rounded up to
  32-byte sectors per row segment (a row may start mid-sector);
* gathers from the input vector are filtered by the L2 cache: if the
  vector's touched footprint fits in L2 (it does for every paper case —
  the paper makes this argument explicitly for the A100's 40 MB L2), DRAM
  sees only the compulsory footprint, and all reuse is L2 traffic;
* if the footprint exceeds L2, a streaming-random miss model charges
  refetches proportional to the capacity shortfall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.device import DeviceSpec


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    return -(-a // b)


def contiguous_stream_bytes(n_elements: int, elem_bytes: int, sector: int = 32) -> int:
    """Sector-rounded bytes for streaming one contiguous array once."""
    if n_elements <= 0:
        return 0
    return ceil_div(n_elements * elem_bytes, sector) * sector


def segmented_stream_bytes(
    segment_lengths: np.ndarray, elem_bytes: int, sector: int = 32
) -> int:
    """Sector-rounded bytes for streaming many contiguous segments.

    Each non-empty segment may start mid-sector, costing up to one extra
    sector; we charge the expected one-half extra sector per segment,
    rounded into whole sectors at the end.
    """
    lengths = np.asarray(segment_lengths, dtype=np.int64)
    lengths = lengths[lengths > 0]
    if lengths.size == 0:
        return 0
    payload = int(lengths.sum()) * elem_bytes
    # Expected alignment slack: half a sector per segment boundary.
    slack = (lengths.size * sector) // 2
    return ceil_div(payload + slack, sector) * sector


@dataclass(frozen=True)
class GatherTraffic:
    """Traffic produced by gathering from a cached vector."""

    #: unique bytes touched (sector-rounded) — compulsory DRAM traffic.
    compulsory_dram_bytes: int
    #: additional DRAM bytes due to capacity misses (0 if vector fits L2).
    refetch_dram_bytes: int
    #: total L2 transaction bytes the gathers generate.
    l2_bytes: int

    @property
    def dram_bytes(self) -> int:
        return self.compulsory_dram_bytes + self.refetch_dram_bytes


def gather_traffic(
    indices: np.ndarray,
    elem_bytes: int,
    vector_length: int,
    device: DeviceSpec,
    accesses: Optional[int] = None,
) -> GatherTraffic:
    """Model gathers ``vector[indices]`` through the device's L2.

    Parameters
    ----------
    indices:
        element indices accessed (with repetitions, or a representative
        sample; ``accesses`` overrides the total count).
    elem_bytes:
        width of one vector element (8 for the double input vector).
    vector_length:
        length of the gathered vector (its full footprint bound).
    device:
        provides sector size and L2 capacity.
    accesses:
        true number of accesses if ``indices`` is a sample.
    """
    sector = device.sector_bytes
    idx = np.asarray(indices)
    n_accesses = int(accesses if accesses is not None else idx.size)
    if idx.size == 0 or vector_length == 0:
        return GatherTraffic(0, 0, 0)
    touched_sectors = np.unique(idx.astype(np.int64) * elem_bytes // sector)
    footprint = int(touched_sectors.size) * sector
    # Every access is an L2 transaction of one sector worth of data;
    # consecutive lanes hitting the same sector coalesce, which we model by
    # charging element bytes (the dose matrices gather mostly consecutive
    # columns, so intra-warp coalescing is near-perfect).
    l2_bytes = n_accesses * elem_bytes
    capacity = device.l2_bytes
    if footprint <= capacity:
        return GatherTraffic(footprint, 0, l2_bytes)
    # Streaming-random capacity model: the resident fraction of the
    # footprint hits, the rest misses and refetches a sector.
    miss_rate = 1.0 - capacity / footprint
    refetch = int(miss_rate * n_accesses) * sector
    return GatherTraffic(footprint, refetch, l2_bytes)


@dataclass(frozen=True)
class ScatterTraffic:
    """Traffic produced by scattered writes / atomics into a vector."""

    #: DRAM write-back bytes (dirty footprint, sector-rounded).
    dram_bytes: int
    #: L2 transaction bytes (every write or atomic visits L2).
    l2_bytes: int


def scatter_traffic(
    indices: np.ndarray,
    elem_bytes: int,
    vector_length: int,
    device: DeviceSpec,
    accesses: Optional[int] = None,
    read_modify_write: bool = False,
) -> ScatterTraffic:
    """Model scattered writes (or atomic RMWs) through L2.

    The dirty footprint is written back to DRAM once; all intermediate
    traffic stays in L2 if the target fits (the paper explains the GPU
    Baseline's DRAM-bandwidth dip exactly this way: the atomic traffic to
    the output vector lives in the 40 MB L2).
    """
    sector = device.sector_bytes
    idx = np.asarray(indices)
    n_accesses = int(accesses if accesses is not None else idx.size)
    if idx.size == 0:
        return ScatterTraffic(0, 0)
    touched_sectors = np.unique(idx.astype(np.int64) * elem_bytes // sector)
    footprint = int(touched_sectors.size) * sector
    per_access = elem_bytes * (2 if read_modify_write else 1)
    l2_bytes = n_accesses * per_access
    dram = footprint
    if footprint > device.l2_bytes:
        # Thrashing: lines are evicted and refetched between RMWs.
        miss_rate = 1.0 - device.l2_bytes / footprint
        dram += int(miss_rate * n_accesses) * sector
    return ScatterTraffic(dram, l2_bytes)


def output_write_bytes(n_rows: int, elem_bytes: int, sector: int = 32) -> int:
    """DRAM bytes for writing the dense output vector once (8 per row in
    the paper's analytic model)."""
    return contiguous_stream_bytes(n_rows, elem_bytes, sector)
