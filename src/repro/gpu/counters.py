"""Performance counters collected by the simulated kernels.

The counters mirror what the paper measures with Nvidia Nsight Compute
(``dram_bytes`` between L2 and DRAM, L2 transaction volume) plus the
structural quantities the timing model needs (warp iterations, per-row
overhead, atomic operations).

DRAM traffic is kept split by *origin* — per-non-zero, per-row and
per-column — because the benchmark harness measures counters on scaled
matrices and extrapolates them to the paper's full-size matrices; each
component scales with a different structural dimension (this is exactly the
paper's analytic model ``6*nnz + 12*nr + 8*nc`` with the three terms kept
separate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class PerfCounters:
    """Counter set for one simulated kernel launch.

    All byte quantities are DRAM<->L2 traffic unless prefixed ``l2_``.
    """

    #: floating point operations (2 per stored non-zero for SpMV).
    flops: float = 0.0
    #: DRAM bytes that scale with nnz (matrix values + column indices).
    dram_bytes_nnz: float = 0.0
    #: DRAM bytes that scale with the row count (indptr + output vector).
    dram_bytes_rows: float = 0.0
    #: DRAM bytes that scale with the column count (input-vector footprint).
    dram_bytes_cols: float = 0.0
    #: extra DRAM bytes from cache misses when the input vector exceeds L2.
    dram_bytes_refetch: float = 0.0
    #: L2 transaction bytes that scale with nnz (matrix streams, gathers,
    #: atomic bounces).
    l2_bytes: float = 0.0
    #: L2 transaction bytes that scale with the row count (row pointers,
    #: output-vector writes).
    l2_bytes_rows: float = 0.0
    #: global atomic read-modify-write operations issued.
    atomic_ops: float = 0.0
    #: total warp-level inner-loop iterations, sum over rows of ceil(len/32).
    warp_iterations: float = 0.0
    #: wasted lane-slots x bytes from partially filled final iterations.
    partial_waste_bytes: float = 0.0
    #: warps launched (one per row for the vector kernel).
    n_warps: float = 0.0
    #: rows the kernel iterated over (including empty rows).
    rows_processed: float = 0.0
    #: thread blocks launched.
    n_blocks: float = 0.0
    #: integer/bookkeeping instructions that scale with nnz (address
    #: arithmetic, loads); used by the compute-side roofline term.
    aux_instructions: float = 0.0
    #: bookkeeping instructions that scale with the row count (the 5-round
    #: warp reduction, pointer reads, result writes).
    aux_instructions_rows: float = 0.0

    @property
    def dram_bytes(self) -> float:
        """Total DRAM<->L2 traffic, the paper's ``dram_bytes`` metric."""
        return (
            self.dram_bytes_nnz
            + self.dram_bytes_rows
            + self.dram_bytes_cols
            + self.dram_bytes_refetch
        )

    @property
    def l2_bytes_total(self) -> float:
        """Total L2 transaction volume."""
        return self.l2_bytes + self.l2_bytes_rows

    @property
    def operational_intensity(self) -> float:
        """Flops per DRAM byte — the x-axis of the paper's roofline plot."""
        total = self.dram_bytes
        return self.flops / total if total else 0.0

    def merged(self, other: "PerfCounters") -> "PerfCounters":
        """Element-wise sum of two counter sets (multi-launch aggregation)."""
        return PerfCounters(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self.__dataclass_fields__
            }
        )

    def scaled(
        self,
        nnz_factor: float,
        rows_factor: float,
        cols_factor: float,
        grid_factor: float = None,
    ) -> "PerfCounters":
        """Extrapolate counters to a matrix scaled by the given factors.

        ``nnz_factor`` multiplies everything that scales with non-zeros,
        ``rows_factor`` the per-row quantities and ``cols_factor`` the
        input-vector footprint.  ``grid_factor`` scales the launch geometry
        (warps/blocks) — it follows the axis the kernel parallelizes over
        (rows for warp-per-row kernels, nnz for the entry-parallel
        baseline); defaults to ``rows_factor``.  Used to report paper-scale
        performance from bench-scale measurements.
        """
        if grid_factor is None:
            grid_factor = rows_factor
        return PerfCounters(
            flops=self.flops * nnz_factor,
            dram_bytes_nnz=self.dram_bytes_nnz * nnz_factor,
            dram_bytes_rows=self.dram_bytes_rows * rows_factor,
            dram_bytes_cols=self.dram_bytes_cols * cols_factor,
            dram_bytes_refetch=self.dram_bytes_refetch * nnz_factor,
            l2_bytes=self.l2_bytes * nnz_factor,
            l2_bytes_rows=self.l2_bytes_rows * rows_factor,
            atomic_ops=self.atomic_ops * nnz_factor,
            warp_iterations=self.warp_iterations * nnz_factor,
            partial_waste_bytes=self.partial_waste_bytes * rows_factor,
            n_warps=self.n_warps * grid_factor,
            rows_processed=self.rows_processed * rows_factor,
            n_blocks=self.n_blocks * grid_factor,
            aux_instructions=self.aux_instructions * nnz_factor,
            aux_instructions_rows=self.aux_instructions_rows * rows_factor,
        )

    def copy(self) -> "PerfCounters":
        """Shallow copy (all fields are scalars)."""
        return replace(self)
