"""Global-memory atomicAdd model with randomized commit order.

CUDA guarantees each ``atomicAdd`` is applied exactly once, but the *order*
in which concurrent atomics to the same address commit depends on warp
scheduling and is not fixed between runs.  Because floating-point addition
is not associative, a kernel that reduces through atomics (the paper's GPU
Baseline) produces results whose low-order bits vary run to run — the
property that disqualifies it from clinical use in RayStation.

:func:`atomic_scatter_add` reproduces exactly that: contributions to each
output element are applied in a per-run random order.  Two calls with
different RNGs give results differing in the last bits; the same RNG seed
gives identical results (useful for regression tests of the model itself).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import RngLike, make_rng


def atomic_scatter_add(
    out: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    rng: RngLike = None,
) -> np.ndarray:
    """Apply ``out[indices[k]] += values[k]`` in a randomized commit order.

    Parameters
    ----------
    out:
        accumulation target, modified in place and returned.
    indices:
        target index of each contribution.
    values:
        contribution values (same length as ``indices``); they are added in
        ``out.dtype`` precision, like a hardware atomicAdd of that width.
    rng:
        randomness source for the commit order.  ``None`` models a real
        run (non-deterministic across calls); a fixed seed pins the order.
    """
    indices = np.asarray(indices)
    values = np.asarray(values)
    if indices.shape != values.shape:
        raise ValueError(
            f"indices {indices.shape} and values {values.shape} length mismatch"
        )
    if indices.size == 0:
        return out
    rng = make_rng(rng)
    order = rng.permutation(indices.size)
    perm_idx = indices[order].astype(np.int64)
    perm_val = values[order].astype(out.dtype)
    # np.add.at applies contributions sequentially in argument order, which
    # after the permutation is exactly "random commit order".
    np.add.at(out, perm_idx, perm_val)
    return out


def atomic_conflict_degree(indices: np.ndarray) -> float:
    """Average number of atomics landing on the same address.

    1.0 means conflict-free; large values mean heavy serialization.  The
    timing model multiplies the base atomic cost by a function of this.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return 1.0
    _, counts = np.unique(indices, return_counts=True)
    # Expected queue length seen by a random atomic = E[count of its bucket]
    # weighted by bucket size.
    return float((counts.astype(np.float64) ** 2).sum() / indices.size)


def expected_ulp_nondeterminism(
    values: np.ndarray, dtype: np.dtype = np.float64
) -> float:
    """Crude upper estimate of the result spread different orders can cause.

    Summing ``n`` values of magnitude ``m`` in different orders perturbs the
    result by at most ``O(n * eps * sum|values|)``; returned in absolute
    terms so tests can assert the observed atomics spread stays below it.
    """
    values = np.asarray(values, dtype=np.float64)
    eps = float(np.finfo(dtype).eps)
    return values.size * eps * float(np.abs(values).sum())
