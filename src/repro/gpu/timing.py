"""Analytical timing model: counters + device + launch -> execution time.

The model is a roofline with three refinements that the paper's results
demonstrate matter for dose-deposition SpMV:

1. **Effective DRAM bandwidth from memory-level parallelism** (Little's
   law): sustained bandwidth is capped both by the DRAM efficiency ceiling
   (~88 % of peak for HBM2 streaming) and by the concurrency the kernel
   keeps in flight — resident warps x outstanding sectors per warp /
   latency.  On the A100/V100 the ceiling binds (the paper measures
   80–88 % of peak); on the P100 the pre-Volta scheduler's low
   per-warp memory parallelism binds instead, reproducing the paper's
   ~41 %-of-peak observation.

2. **Equivalent traffic from irregularity**: short and empty rows cost a
   fixed per-row overhead (reading ``row_ptr``, the 5-round warp reduction,
   writing ``y``), and a row whose length is not a multiple of 32 wastes
   lane-slots in its final iteration.  Both are converted into equivalent
   bytes and added to the measured DRAM traffic.  This is what makes the
   prostate cases (~300 nnz per non-empty row, 70 % empty rows) reach only
   ~68 % of peak bandwidth while the liver cases (~1700 nnz/row) reach
   ~85 % — with no per-case tuning.

3. **Serialization terms**: global atomics (the GPU Baseline) execute at
   the device's L2 atomic throughput, scaled by a contention factor;
   block scheduling turnover and a fixed launch overhead are added on top;
   large blocks suffer a straggler penalty proportional to the row-length
   coefficient of variation (a block's slots stay allocated until its
   slowest warp finishes — the Figure 4 effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.gpu.counters import PerfCounters
from repro.gpu.device import DeviceKind, DeviceSpec
from repro.gpu.launch import LaunchConfig, Occupancy, occupancy

#: Fraction of block-turnover work that does NOT overlap with execution.
BLOCK_TURNOVER_EXPOSED = 0.25

#: Fixed kernel launch latency (driver + grid setup), seconds.
KERNEL_LAUNCH_OVERHEAD_S = 4e-6

#: Cost of replaying one pre-instantiated execution graph (CUDA-graph
#: style dispatch): the driver submits the whole captured work list with
#: a single API call, so the per-evaluation fixed cost drops from one
#: :data:`KERNEL_LAUNCH_OVERHEAD_S` *per kernel* to one replay *per
#: device*.  Measured graph-launch latencies sit around 1.5–2.5 us for
#: multi-node graphs versus ~4 us per individually launched kernel;
#: we charge the conservative middle of that range.
GRAPH_REPLAY_OVERHEAD_S = 1.2e-6

#: Residual per-kernel-node scheduling cost inside a captured graph
#: (node dependencies are resolved on-device, but each node still pays
#: a dispatch slot — an order of magnitude below a bare launch).
GRAPH_NODE_OVERHEAD_S = 2.0e-7

#: Straggler-penalty coefficient (see module docstring, refinement 3).
STRAGGLER_COEFF = 0.05

#: Per-warp instruction issue throughput used for aux instructions,
#: expressed as thread-instructions per SM per cycle.
THREAD_INSTR_PER_SM_CYCLE = 64.0


@dataclass(frozen=True)
class KernelTraits:
    """Static modelling properties of a kernel implementation."""

    #: equivalent bytes charged per processed row (pointer reads, warp
    #: reduction, result write); the Figure-2 irregularity channel.
    row_overhead_bytes: float = 128.0
    #: multiplier on row overhead when cooperative groups are software
    #: emulated (pre-Volta devices).
    sw_coop_penalty: float = 2.5
    #: kernel uses one warp (or sub-warp) per row and therefore suffers
    #: block-level stragglers on irregular matrices.
    warp_per_row: bool = True
    #: kernel reduces through global atomics (enables the atomic term).
    uses_atomics: bool = False
    #: extra contention multiplier per fully-occupied SM worth of warps.
    atomic_contention: float = 0.15
    #: multiplier on effective bandwidth (library efficiency profiles of
    #: the cuSPARSE/Ginkgo comparator models; 1.0 for our kernels).
    bandwidth_scale: float = 1.0
    #: CPU only: average scalar cycles spent per stored value (branchy
    #: segment decoding, dequantization, scratch accumulation).
    cpu_cycles_per_value: float = 13.0
    #: which matrix dimension the launch grid scales with when
    #: extrapolating counters ("rows", "nnz" or "cols").
    grid_scales_with: str = "rows"


@dataclass(frozen=True)
class WorkloadProfile:
    """Matrix-structure statistics the timing model needs.

    ``rowlen_cv`` is the coefficient of variation (std/mean) of non-empty
    row lengths; ``avg_row_len`` their mean.  Both are computed from the
    actual matrix by the kernels.
    """

    avg_row_len: float = 0.0
    rowlen_cv: float = 0.0


@dataclass(frozen=True)
class TimingEstimate:
    """Modelled execution time with its component breakdown."""

    time_s: float
    limiter: str
    components: Dict[str, float]
    effective_bw: float
    counters: PerfCounters

    @property
    def achieved_dram_bw(self) -> float:
        """DRAM bytes / time — what Nsight's bandwidth counter reports."""
        return self.counters.dram_bytes / self.time_s if self.time_s else 0.0

    @property
    def gflops(self) -> float:
        """Modelled GFLOP/s (flops / time / 1e9)."""
        return self.counters.flops / self.time_s / 1e9 if self.time_s else 0.0

    def bandwidth_fraction(self, device: DeviceSpec) -> float:
        """Achieved DRAM bandwidth as a fraction of the device peak."""
        return self.achieved_dram_bw / device.peak_bw


def effective_bandwidth(
    device: DeviceSpec, occ: Occupancy, total_warps: float
) -> float:
    """Sustainable DRAM bandwidth under Little's law.

    ``total_warps`` bounds concurrency for grids too small to fill the
    device (not the case for paper-size matrices, but the model should
    degrade gracefully on tiny test inputs).
    """
    resident = occ.resident_warps_per_sm * device.sm_count
    if total_warps > 0:
        resident = min(resident, total_warps)
    concurrency_bw = (
        resident * device.sectors_per_warp * device.sector_bytes / device.mem_latency_s
    )
    ceiling = device.peak_bw * device.dram_efficiency_ceiling
    return min(ceiling, concurrency_bw)


def estimate_gpu_time(
    device: DeviceSpec,
    launch: LaunchConfig,
    counters: PerfCounters,
    traits: KernelTraits,
    profile: WorkloadProfile,
    accum_bytes: int = 8,
) -> TimingEstimate:
    """Model one kernel execution on a GPU device."""
    occ = occupancy(device, launch)
    eff_bw = (
        effective_bandwidth(device, occ, counters.n_warps) * traits.bandwidth_scale
    )

    row_overhead = traits.row_overhead_bytes
    if not device.coop_groups_hw and traits.warp_per_row:
        row_overhead *= traits.sw_coop_penalty
    equivalent_bytes = (
        counters.dram_bytes
        + counters.partial_waste_bytes
        + counters.rows_processed * row_overhead
    )
    t_mem = equivalent_bytes / eff_bw if eff_bw else float("inf")
    t_l2 = counters.l2_bytes_total / device.l2_bw
    instr_rate = device.sm_count * device.clock_ghz * 1e9 * THREAD_INSTR_PER_SM_CYCLE
    t_compute = counters.flops / device.peak_flops(accum_bytes) + (
        (counters.aux_instructions + counters.aux_instructions_rows) / instr_rate
    )
    t_atomic = 0.0
    if traits.uses_atomics and counters.atomic_ops:
        contention = 1.0 + traits.atomic_contention * (
            occ.resident_warps_per_sm / max(occ.max_warps_per_sm, 1)
        )
        t_atomic = counters.atomic_ops * contention / device.atomic_fp64_rate

    components = {
        "dram": t_mem,
        "l2": t_l2,
        "compute": t_compute,
        "atomics": t_atomic,
    }
    limiter = max(components, key=components.get)
    t_core = components[limiter]

    straggler = 0.0
    warps_per_block = max(launch.threads_per_block // device.warp_size, 1)
    if traits.warp_per_row and warps_per_block > 1:
        straggler = (
            STRAGGLER_COEFF
            * profile.rowlen_cv
            * (1.0 - 1.0 / warps_per_block)
            / max(occ.resident_blocks_per_sm, 1)
        )
    t_blocks = (
        counters.n_blocks
        * device.block_turnover_cycles
        / (device.sm_count * device.clock_ghz * 1e9)
        * BLOCK_TURNOVER_EXPOSED
    )
    components["stragglers"] = t_core * straggler
    components["block_turnover"] = t_blocks
    components["launch"] = KERNEL_LAUNCH_OVERHEAD_S

    time_s = t_core * (1.0 + straggler) + t_blocks + KERNEL_LAUNCH_OVERHEAD_S
    return TimingEstimate(
        time_s=time_s,
        limiter=limiter,
        components=components,
        effective_bw=eff_bw,
        counters=counters,
    )


def estimate_cpu_time(
    device: DeviceSpec,
    counters: PerfCounters,
    traits: KernelTraits,
    n_threads: Optional[int] = None,
) -> TimingEstimate:
    """Model the RayStation CPU implementation.

    The CPU algorithm (per-thread scratch arrays over the 16-bit compressed
    format) is *compute* bound: decoding segments, dequantizing uint16
    values and accumulating into scratch vectors costs
    ``cpu_cycles_per_value`` scalar cycles per stored value, which on a
    14-core part dominates the memory time.
    """
    if device.kind is not DeviceKind.CPU:
        raise ValueError(f"estimate_cpu_time called with GPU device {device.name}")
    cores = device.sm_count if n_threads is None else min(n_threads, device.sm_count)
    cores = max(cores, 1)
    eff_bw = device.peak_bw * device.dram_efficiency_ceiling
    t_mem = counters.dram_bytes / eff_bw
    values = counters.flops / 2.0  # one stored value per multiply-add pair
    t_compute = values * traits.cpu_cycles_per_value / (
        cores * device.clock_ghz * 1e9
    )
    components = {"dram": t_mem, "compute": t_compute}
    limiter = max(components, key=components.get)
    # Thread fork/join and the final scratch-array reduction barrier.
    t_parallel_overhead = 20e-6
    components["threading"] = t_parallel_overhead
    time_s = components[limiter] + t_parallel_overhead
    return TimingEstimate(
        time_s=time_s,
        limiter=limiter,
        components=components,
        effective_bw=eff_bw,
        counters=counters,
    )
