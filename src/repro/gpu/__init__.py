"""GPU execution-simulator substrate.

A warp-level simulator standing in for the CUDA hardware the paper runs on:
device catalogue (A100/V100/P100 + the evaluation CPU), launch/occupancy
rules, a memory-transaction and L2 model, cooperative-groups emulation with
hardware-exact reduction ordering, an atomics model with randomized commit
order, and an analytical timing model (see DESIGN.md for the substitution
argument).
"""

from repro.gpu.atomics import (
    atomic_conflict_degree,
    atomic_scatter_add,
    expected_ulp_nondeterminism,
)
from repro.gpu.cache import CacheStats, SetAssociativeCache, gather_trace_stats
from repro.gpu.coop import WarpTile, thread_rank_linear
from repro.gpu.counters import PerfCounters
from repro.gpu.device import (
    A100,
    CPU_I9_7940X,
    GPU_DEVICES,
    P100,
    V100,
    DeviceKind,
    DeviceSpec,
    get_device,
    list_devices,
)
from repro.gpu.executor import WarpWork, attach_launch_counts, warp_work, workload_profile
from repro.gpu.launch import (
    LaunchConfig,
    Occupancy,
    occupancy,
    thread_per_item_launch,
    warp_per_row_launch,
)
from repro.gpu.memory import (
    GatherTraffic,
    ScatterTraffic,
    contiguous_stream_bytes,
    gather_traffic,
    output_write_bytes,
    scatter_traffic,
    segmented_stream_bytes,
)
from repro.gpu.memory_planner import (
    ChunkPlan,
    MatrixFootprint,
    paper_case_footprint,
    plan_beams,
    plan_execution,
    usable_bytes,
)
from repro.gpu.nsight import profile_report
from repro.gpu.timing import (
    KernelTraits,
    TimingEstimate,
    WorkloadProfile,
    effective_bandwidth,
    estimate_cpu_time,
    estimate_gpu_time,
)

__all__ = [
    "atomic_conflict_degree",
    "atomic_scatter_add",
    "expected_ulp_nondeterminism",
    "WarpTile",
    "thread_rank_linear",
    "PerfCounters",
    "A100",
    "CPU_I9_7940X",
    "GPU_DEVICES",
    "P100",
    "V100",
    "DeviceKind",
    "DeviceSpec",
    "get_device",
    "list_devices",
    "WarpWork",
    "attach_launch_counts",
    "warp_work",
    "workload_profile",
    "LaunchConfig",
    "Occupancy",
    "occupancy",
    "thread_per_item_launch",
    "warp_per_row_launch",
    "GatherTraffic",
    "ScatterTraffic",
    "contiguous_stream_bytes",
    "gather_traffic",
    "output_write_bytes",
    "scatter_traffic",
    "segmented_stream_bytes",
    "KernelTraits",
    "TimingEstimate",
    "WorkloadProfile",
    "effective_bandwidth",
    "estimate_cpu_time",
    "estimate_gpu_time",
    "ChunkPlan",
    "MatrixFootprint",
    "paper_case_footprint",
    "plan_beams",
    "plan_execution",
    "usable_bytes",
    "profile_report",
    "CacheStats",
    "SetAssociativeCache",
    "gather_trace_stats",
]
