"""Plain-text table rendering for benches, the CLI and EXPERIMENTS.md.

The benchmark harness regenerates the paper's tables and figure series as
text; this module provides one small, dependency-free renderer used by all
of them (GitHub-flavoured markdown or aligned ASCII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence


def _fmt(value: Any) -> str:
    """Format one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        mag = abs(value)
        if mag >= 1e5 or mag < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A small column-typed table with append-row semantics.

    >>> t = Table(["beam", "rows"])
    >>> t.add_row(["Liver 1", 2.97e6])
    >>> print(t.render())  # doctest: +SKIP
    """

    columns: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    title: Optional[str] = None

    def add_row(self, row: Sequence[Any]) -> None:
        """Append a row; must match the column count."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(row)

    def column(self, name: str) -> List[Any]:
        """Return one column's cells by column name."""
        try:
            idx = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; have {list(self.columns)}")
        return [row[idx] for row in self.rows]

    def render(self, markdown: bool = False) -> str:
        """Render as aligned ASCII (default) or GitHub markdown."""
        return render_table(self.columns, self.rows, title=self.title, markdown=markdown)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        return self.render(markdown=True)

    def __str__(self) -> str:
        return self.render()


def render_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    markdown: bool = False,
) -> str:
    """Render ``rows`` under ``columns`` as a text table."""
    header = [str(c) for c in columns]
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str], pad: str = " ") -> str:
        joined = " | ".join(c.ljust(w, pad) for c, w in zip(cells, widths))
        return f"| {joined} |" if markdown else joined

    out: List[str] = []
    if title:
        out.append(title)
        out.append("")
    out.append(line(header))
    if markdown:
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        out.append("-+-".join("-" * w for w in widths))
    for row in body:
        out.append(line(row))
    return "\n".join(out)
