"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or matrix had an incompatible shape."""


class DTypeError(ReproError, TypeError):
    """An array had an unsupported or mismatched dtype."""


class FormatError(ReproError, ValueError):
    """A sparse-matrix format invariant was violated.

    Examples: non-monotone CSR ``indptr``, column index out of range,
    overlapping RSCF segments.
    """


class LaunchConfigError(ReproError, ValueError):
    """A simulated-GPU kernel launch configuration was invalid.

    Raised for non-multiple-of-warp block sizes, zero grids, or block sizes
    exceeding the device limit, mirroring a CUDA launch failure.
    """


class DeviceError(ReproError, ValueError):
    """Unknown device name or inconsistent device specification."""


class PlanMismatchError(ReproError, ValueError):
    """A precompiled execution plan does not fit the requested call.

    Raised when a plan's kernel family, accumulation precision, or source
    matrix identity differs from what the kernel was invoked with.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class GeometryError(ReproError, ValueError):
    """Invalid geometry in the dose-calculation substrate.

    Examples: a beam axis of zero length, a spot grid outside the dose grid,
    a phantom with non-positive voxel spacing.
    """
