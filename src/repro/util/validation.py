"""Lightweight argument validators shared across the library.

Each validator raises one of the exceptions from :mod:`repro.util.errors`
with a message naming the offending argument, so failures in deep call
stacks stay diagnosable.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.errors import DTypeError, ShapeError


def check_1d(arr: np.ndarray, name: str) -> np.ndarray:
    """Require ``arr`` to be a 1-D ndarray; return it unchanged."""
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_dtype(arr: np.ndarray, dtypes: Sequence[type], name: str) -> np.ndarray:
    """Require ``arr.dtype`` to be one of ``dtypes``; return ``arr``."""
    allowed = tuple(np.dtype(d) for d in dtypes)
    if np.asarray(arr).dtype not in allowed:
        raise DTypeError(
            f"{name} has dtype {np.asarray(arr).dtype}, expected one of "
            f"{[str(d) for d in allowed]}"
        )
    return arr


def check_shape_match(
    shape: Tuple[int, ...], expected: Tuple[int, ...], name: str
) -> None:
    """Require ``shape == expected``."""
    if tuple(shape) != tuple(expected):
        raise ShapeError(f"{name} has shape {tuple(shape)}, expected {tuple(expected)}")


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it as float."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``; return it as float."""
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_index_range(
    indices: np.ndarray, upper: int, name: str
) -> np.ndarray:
    """Require every index in ``indices`` to lie in ``[0, upper)``."""
    indices = np.asarray(indices)
    if indices.size:
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0 or hi >= upper:
            raise ShapeError(
                f"{name} contains indices outside [0, {upper}): "
                f"min={lo}, max={hi}"
            )
    return indices
