"""Seeded random-number-generator plumbing.

Everything stochastic in the library (Monte Carlo transport noise, atomic
commit-order permutations, synthetic workloads) flows through these helpers
so that experiments are reproducible end to end from a single seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    ``seed`` may be ``None`` (non-deterministic), an integer seed, or an
    existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stable_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable parts.

    Unlike Python's built-in ``hash``, this is stable across processes
    (no ``PYTHONHASHSEED`` dependence), so a case named ``("liver", 1)``
    always generates the same matrix.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def spawn_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent child generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so children are
    statistically independent streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own bit stream.
        base = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        base = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in base.spawn(n)]


def permutation_stream(
    rng: np.random.Generator, n: int, chunk: int = 1 << 20
) -> Iterable[np.ndarray]:
    """Yield a random permutation of ``range(n)`` in chunks.

    Used by the atomics model to randomize commit order without
    materializing gigantic permutations for large matrices.
    """
    perm = rng.permutation(n)
    for start in range(0, n, chunk):
        yield perm[start : start + chunk]
