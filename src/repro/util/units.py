"""Unit constants and human-readable formatting helpers.

The paper reports matrix sizes in (decimal) GB, bandwidth in GB/s and
performance in GFLOP/s; we keep both decimal (GB) and binary (GiB) constants
and are explicit about which is used where.
"""

from __future__ import annotations

import math

# Decimal units -- used for bandwidth and the paper's "size (GB)" column.
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary units -- used when talking about cache and RAM capacities.
KIB = 2**10
MIB = 2**20
GIB = 2**30


def bytes_to_gb(n_bytes: float) -> float:
    """Convert a byte count to decimal gigabytes (1 GB = 1e9 bytes)."""
    return float(n_bytes) / GB


def bytes_to_gib(n_bytes: float) -> float:
    """Convert a byte count to binary gibibytes (1 GiB = 2**30 bytes)."""
    return float(n_bytes) / GIB


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix: ``format_si(1.48e9) == '1.48G'``.

    Negative values keep their sign; zero formats as ``'0<unit>'``.
    """
    if value == 0:
        return f"0{unit}"
    sign = "-" if value < 0 else ""
    value = abs(value)
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
    ]
    for factor, prefix in prefixes:
        if value >= factor:
            scaled = value / factor
            return f"{sign}{scaled:.{digits}g}{prefix}{unit}"
    return f"{sign}{value:.{digits}g}{unit}"


def format_bytes(n_bytes: float, digits: int = 4) -> str:
    """Format a byte count in decimal units, matching the paper's GB column."""
    if n_bytes >= GB:
        return f"{n_bytes / GB:.{digits}g} GB"
    if n_bytes >= MB:
        return f"{n_bytes / MB:.{digits}g} MB"
    if n_bytes >= KB:
        return f"{n_bytes / KB:.{digits}g} kB"
    return f"{n_bytes:.0f} B"


def format_flops(flops_per_s: float) -> str:
    """Format a FLOP/s rate (e.g. ``'420 GFLOP/s'``)."""
    return _format_rate(flops_per_s, "FLOP/s")


def format_bandwidth(bytes_per_s: float) -> str:
    """Format a bandwidth (e.g. ``'1350 GB/s'``)."""
    return _format_rate(bytes_per_s, "B/s")


def _format_rate(value: float, unit: str) -> str:
    if value >= 1e12:
        return f"{value / 1e12:.4g} T{unit}"
    if value >= 1e9:
        return f"{value / 1e9:.4g} G{unit}"
    if value >= 1e6:
        return f"{value / 1e6:.4g} M{unit}"
    if value >= 1e3:
        return f"{value / 1e3:.4g} k{unit}"
    return f"{value:.4g} {unit}"


def format_time(seconds: float) -> str:
    """Format a duration with an appropriate sub-second unit."""
    if seconds != seconds or math.isinf(seconds):  # NaN / inf guard
        return str(seconds)
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"
