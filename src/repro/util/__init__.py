"""Shared utilities: units, RNG plumbing, validation, table rendering.

These helpers are deliberately dependency-free (NumPy only) so that every
other subpackage can import them without cycles.
"""

from repro.util.errors import (
    ReproError,
    ShapeError,
    DTypeError,
    FormatError,
    LaunchConfigError,
    ConvergenceError,
)
from repro.util.rng import make_rng, spawn_rngs, stable_seed
from repro.util.tables import Table, render_table
from repro.util.units import (
    GIB,
    GB,
    MIB,
    MB,
    KIB,
    KB,
    bytes_to_gb,
    bytes_to_gib,
    format_bytes,
    format_flops,
    format_bandwidth,
    format_si,
    format_time,
)
from repro.util.validation import (
    check_1d,
    check_dtype,
    check_nonnegative,
    check_positive,
    check_shape_match,
)

__all__ = [
    "ReproError",
    "ShapeError",
    "DTypeError",
    "FormatError",
    "LaunchConfigError",
    "ConvergenceError",
    "GIB",
    "GB",
    "MIB",
    "MB",
    "KIB",
    "KB",
    "bytes_to_gb",
    "bytes_to_gib",
    "format_bytes",
    "format_flops",
    "format_bandwidth",
    "format_si",
    "format_time",
    "make_rng",
    "spawn_rngs",
    "stable_seed",
    "Table",
    "render_table",
    "check_1d",
    "check_dtype",
    "check_nonnegative",
    "check_positive",
    "check_shape_match",
]
