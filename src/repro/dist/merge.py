"""Deterministic merge of per-shard dose outputs.

Shards are disjoint contiguous row blocks, so merging is pure
concatenation — no floating-point arithmetic happens here, which is what
makes the cross-device reproducibility argument airtight: each shard's
bits are produced by the same fixed-order warp reduction as the
single-device run, and the merge merely places those bits at their row
offsets.  The only way to break bitwise equality in this layer is to
concatenate in the wrong *order* — e.g. in completion order, or by
iterating a ``dict`` of results.  Rule RA106 statically forbids that;
this module enforces it dynamically: :func:`merge_shard_outputs` takes
``(shard_index, array)`` pairs in *any* order, validates the indices
form an exact permutation of ``range(n_shards)``, sorts by the explicit
index, and combines with a fixed-topology pairwise tree.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.obs import metrics
from repro.obs.trace import span as trace_span
from repro.util.errors import ShapeError


def tree_merge(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate row blocks with a fixed pairwise merge tree.

    The tree combines neighbours ``(0,1), (2,3), ...`` level by level —
    the same topology a multi-device reduction would use — and is
    order-preserving: ``tree_merge(parts)`` equals a flat
    ``np.concatenate(parts)`` bit for bit, for every input count.
    Callers must already have sorted ``arrays`` by shard index.
    """
    if not arrays:
        raise ShapeError("tree_merge needs at least one array")
    level: List[np.ndarray] = list(arrays)
    while len(level) > 1:
        merged: List[np.ndarray] = []
        for i in range(0, len(level) - 1, 2):
            merged.append(np.concatenate((level[i], level[i + 1]), axis=0))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def merge_shard_outputs(
    parts: Sequence[Tuple[int, np.ndarray]]
) -> np.ndarray:
    """Merge ``(shard_index, output)`` pairs into the full dose array.

    Pairs may arrive in any order (devices finish when they finish); the
    merge sorts by the **explicit shard index** carried with each part,
    validates the indices are exactly ``0..n-1`` with no duplicates or
    gaps, and tree-concatenates.  Output shape is the row-concatenation
    of the parts: ``(n_rows,)`` for single-vector evaluation or
    ``(n_rows, B)`` for batched.
    """
    if not parts:
        raise ShapeError("cannot merge zero shard outputs")
    n = len(parts)
    indices = [index for index, _ in parts]
    if sorted(indices) != list(range(n)):
        raise ShapeError(
            f"shard indices {sorted(indices)} are not a permutation of "
            f"0..{n - 1}; refusing a nondeterministic merge"
        )
    with trace_span("dist.merge", shards=n):
        ordered = sorted(parts, key=lambda item: item[0])
        result = tree_merge([array for _, array in ordered])
    metrics.counter("dist.merges").inc()
    return result
